#!/usr/bin/env python3
"""Quickstart: count and list triangles with OPT, on disk and in memory.

Runs the paper's running example (Figure 1) and a LiveJournal-like graph
through the three layers of the library:

1. the in-memory EdgeIterator≻ reference (Algorithm 2),
2. the OPT disk framework on the simulated multi-core/FlashSSD machine,
3. the real-thread engine against an actual page file on disk.
"""

import tempfile

from repro.core import ideal_elapsed, make_store, triangulate_disk, triangulate_threaded
from repro.graph import datasets
from repro.graph.generators import figure1_graph
from repro.graph.ordering import apply_ordering
from repro.memory import CollectSink, edge_iterator
from repro.sim import CostModel


def main() -> None:
    # --- the paper's Figure 1 graph -------------------------------------
    graph = figure1_graph()
    sink = CollectSink()
    edge_iterator(graph, sink)
    names = "abcdefgh"
    print("Figure 1 example graph: triangles found:")
    for u, v, w in sorted(sink.triangles):
        print(f"  ({names[u]}, {names[v]}, {names[w]})")

    # --- a realistic power-law graph, out of core ------------------------
    print("\nLiveJournal stand-in, degree-ordered, via the OPT framework:")
    lj, _ = apply_ordering(datasets.load("LJ"), "degree")
    store = make_store(lj, page_size=1024)
    cost = CostModel()

    memory = edge_iterator(lj)
    print(f"  in-memory EdgeIterator:   {memory.triangles:,} triangles, "
          f"{memory.cpu_ops:,} ops")

    result = triangulate_disk(store, buffer_ratio=0.15, cost=cost, cores=1)
    ideal = ideal_elapsed(store, memory.cpu_ops, cost)
    print(f"  OPT_serial (15% buffer):  {result.triangles:,} triangles, "
          f"{result.pages_read:,} pages read, "
          f"{result.pages_buffered:,} buffered (Δin), "
          f"{result.iterations} iterations")
    print(f"  simulated elapsed:        {result.elapsed * 1e3:.1f} ms "
          f"(ideal {ideal * 1e3:.1f} ms, "
          f"overhead {(result.elapsed / ideal - 1) * 100:+.1f}%)")

    from repro.core import replay
    six_cores = replay(result.extra["trace"], cost, cores=6, morphing=True)
    print(f"  OPT with 6 cores:         {six_cores.elapsed * 1e3:.1f} ms "
          f"(speed-up {result.elapsed / six_cores.elapsed:.2f}x)")

    # --- the same run with real threads and a real page file -------------
    with tempfile.TemporaryDirectory() as directory:
        threaded = triangulate_threaded(store, directory, buffer_pages=16)
    print(f"  real-thread engine:       {threaded.triangles:,} triangles in "
          f"{threaded.elapsed:.2f} s wall clock "
          f"({threaded.pages_read:,} real page reads)")

    assert memory.triangles == result.triangles == threaded.triangles
    print("\nAll three engines agree.")


if __name__ == "__main__":
    main()
