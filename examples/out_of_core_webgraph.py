#!/usr/bin/env python3
"""Out-of-core triangulation of a web-scale graph under a tiny buffer.

Demonstrates the scenario the paper targets: the graph does not fit in
memory (here: a buffer of only 5% of the graph's pages), so internal and
external triangles must be separated, external candidate pages streamed
through the external area, and the nested triangle output written to a
second device.  Compares OPT against MGT and CC-Seq under the same
budget and shows where OPT's advantage comes from (read volume and
overlap).
"""

import tempfile
from pathlib import Path

from repro.baselines import cc_seq, mgt
from repro.core import (
    NestedOutputWriter,
    buffer_pages_for_ratio,
    make_store,
    triangulate_disk,
)
from repro.graph import datasets
from repro.graph.ordering import apply_ordering
from repro.sim import CostModel

PAGE_SIZE = 1024
BUFFER_RATIO = 0.05


def main() -> None:
    graph, _ = apply_ordering(datasets.load("UK"), "degree")
    store = make_store(graph, PAGE_SIZE)
    cost = CostModel()
    budget = buffer_pages_for_ratio(store, BUFFER_RATIO)
    print(f"UK web-graph stand-in: {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges, {store.num_pages} pages on disk")
    print(f"memory budget: {budget} pages ({BUFFER_RATIO:.0%} of the graph)\n")

    with tempfile.TemporaryDirectory() as directory:
        output_path = Path(directory) / "triangles.nested"
        writer = NestedOutputWriter(output_path, page_size=PAGE_SIZE)
        opt = triangulate_disk(store, buffer_pages=budget, cost=cost,
                               cores=1, sink=writer)
        writer.close()
        print(f"OPT_serial: {opt.triangles:,} triangles in "
              f"{opt.iterations} iterations")
        print(f"  device reads:   {opt.pages_read:,} pages")
        print(f"  buffered (Δin): {opt.pages_buffered:,} pages saved")
        print(f"  output:         {writer.groups:,} nested groups, "
              f"{writer.bytes_written / 1024:.1f} KiB "
              f"-> {output_path.name}")
        print(f"  simulated time: {opt.elapsed * 1e3:.1f} ms")

    mgt_result = mgt(store, buffer_pages=budget, page_size=PAGE_SIZE, cost=cost)
    print(f"\nMGT (same budget): {mgt_result.pages_read:,} pages read "
          f"({mgt_result.pages_read / max(opt.pages_read, 1):.1f}x OPT), "
          f"{mgt_result.elapsed * 1e3:.1f} ms "
          f"({mgt_result.elapsed / opt.elapsed:.2f}x OPT)")

    cc = cc_seq(graph, buffer_pages=budget, page_size=PAGE_SIZE, cost=cost)
    print(f"CC-Seq (same budget): {cc.pages_read:,} read + "
          f"{cc.pages_written:,} written pages, "
          f"{cc.elapsed * 1e3:.1f} ms ({cc.elapsed / opt.elapsed:.2f}x OPT)")

    assert opt.triangles == mgt_result.triangles == cc.triangles
    print("\nAll methods agree on the triangle count; "
          "OPT wins on read volume and overlap.")


if __name__ == "__main__":
    main()
