#!/usr/bin/env python3
"""Disk-based vertex-centric processing with Parallel Sliding Windows.

The paper's main parallel competitor, GraphChi, executes arbitrary
vertex-centric programs over sharded on-disk graphs.  This example runs
the library's own PSW engine — shards sorted by source, one sliding
window per interval, in-order asynchronous updates — on two classic
programs, and shows the I/O profile that makes the model expensive for
triangle-type workloads compared with OPT's single-purpose pipeline.
"""

from repro.core import make_store, triangulate_disk
from repro.graph import datasets
from repro.graph.ordering import apply_ordering
from repro.sim import CostModel
from repro.vcengine import ConnectedComponentsApp, DiskVCEngine, PageRankApp, ShardedGraph


def main() -> None:
    graph, _ = apply_ordering(datasets.load("LJ"), "degree")
    cost = CostModel()
    sharded = ShardedGraph.build(graph, num_intervals=6)
    print(f"LiveJournal stand-in sharded into {sharded.num_intervals} "
          f"execution intervals, {sharded.total_edges():,} directed edges")

    engine = DiskVCEngine(sharded, page_size=1024, cost=cost)

    # --- connected components -------------------------------------------
    cc = engine.run(ConnectedComponentsApp())
    labels = {int(v) for v in cc.values}
    print(f"\nconnected components: {len(labels)} "
          f"(in {cc.supersteps} supersteps)")

    # --- PageRank ---------------------------------------------------------
    pr = engine.run(PageRankApp(graph.degrees()), max_supersteps=100)
    top = sorted(range(graph.num_vertices), key=lambda v: -pr.values[v])[:5]
    print(f"PageRank converged in {pr.supersteps} supersteps; top vertices:")
    for v in top:
        print(f"  vertex {v:5d}: rank {pr.values[v]:.5f}, "
              f"degree {graph.degree(v)}")

    # --- the I/O story vs OPT ----------------------------------------------
    psw_pages = sum(step.pages_read + step.shard_pages_written
                    for step in pr.history)
    store = make_store(graph, 1024)
    opt = triangulate_disk(store, buffer_ratio=0.15, cost=cost)
    print(f"\nI/O profile: PSW moved {psw_pages:,} pages over "
          f"{pr.supersteps} PageRank supersteps "
          f"(~{psw_pages // max(pr.supersteps, 1):,}/superstep, reads "
          f"AND writes every pass);")
    print(f"OPT's triangulation read {opt.pages_read:,} pages once, "
          f"wrote none — the read-only 'fast group' property behind "
          f"Figure 5.")


if __name__ == "__main__":
    main()
