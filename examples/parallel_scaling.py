#!/usr/bin/env python3
"""Multi-core scaling of OPT: one run, the whole speed-up curve.

The OPT engine separates *what work happened* (the run trace) from *when
it executes* (the discrete-event schedule), so a single algorithm
execution yields the entire Figure 6 curve: replaying the same trace with
1..6 cores, with and without thread morphing, against the Amdahl bound
computed from the measured parallel fraction.
"""

from repro.analysis import amdahl_bound
from repro.core import make_store, triangulate_disk
from repro.graph import datasets
from repro.graph.ordering import apply_ordering
from repro.sim import CostModel, simulate


def main() -> None:
    graph, _ = apply_ordering(datasets.load("TWITTER"), "degree")
    store = make_store(graph, page_size=1024)
    cost = CostModel()

    base = triangulate_disk(store, buffer_ratio=0.15, cost=cost, cores=1)
    trace = base.extra["trace"]
    p = simulate(trace, cost, cores=1, serial=True).parallel_fraction
    print(f"Twitter stand-in: {base.triangles:,} triangles")
    print(f"measured parallel fraction p = {p:.3f} "
          f"(paper's Table 5: 0.961-0.989 for OPT)\n")

    print(f"{'cores':>5}  {'morphing':>9}  {'no morphing':>11}  "
          f"{'Amdahl ub':>9}")
    for cores in range(1, 7):
        with_morph = simulate(trace, cost, cores=cores, morphing=True,
                              serial=(cores == 1))
        without = simulate(trace, cost, cores=cores, morphing=False,
                           serial=(cores == 1))
        print(f"{cores:>5}  {base.elapsed / with_morph.elapsed:>8.2f}x  "
              f"{base.elapsed / without.elapsed:>10.2f}x  "
              f"{amdahl_bound(p, cores):>8.2f}x")

    print("\nThread morphing keeps both thread classes busy; without it the "
          "callback worker idles whenever the external stream runs dry "
          "(the paper's Figure 4).")


if __name__ == "__main__":
    main()
