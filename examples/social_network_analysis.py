#!/usr/bin/env python3
"""Triangle-based network analysis on a social graph.

The paper motivates triangulation with network-analysis metrics
(clustering coefficient, transitivity, trigonal connectivity) and with
applications like spam / anomaly detection via local triangle counts
(Becchetti et al.).  This example computes all of them on an
Orkut-like social graph through the public API.
"""

import numpy as np

from repro.graph import datasets
from repro.graph.metrics import (
    clustering_coefficients,
    global_clustering_coefficient,
    per_vertex_triangles,
    transitivity,
    trigonal_connectivity,
)


def main() -> None:
    graph = datasets.load("ORKUT")
    print(f"Orkut stand-in: {graph.num_vertices:,} vertices, "
          f"{graph.num_edges:,} edges")

    triangles = per_vertex_triangles(graph)
    print(f"total triangles: {int(triangles.sum()) // 3:,}")
    print(f"global clustering coefficient: "
          f"{global_clustering_coefficient(graph):.4f}")
    print(f"transitivity: {transitivity(graph):.4f}")

    # --- densest neighborhoods ------------------------------------------
    coefficients = clustering_coefficients(graph)
    degrees = graph.degrees()
    eligible = degrees >= 10
    top = np.argsort(-coefficients * eligible)[:5]
    print("\nmost clustered vertices (degree >= 10):")
    for v in top:
        print(f"  vertex {int(v):5d}: degree {int(degrees[v]):4d}, "
              f"clustering {coefficients[v]:.3f}, "
              f"{int(triangles[v]):,} triangles")

    # --- anomaly detection: high degree, few triangles -------------------
    # Spam-like accounts touch many users but their neighborhoods do not
    # interconnect: flag the highest-degree vertices with near-zero
    # clustering (the Becchetti et al. signal).
    suspicious = np.argsort(
        np.where(degrees >= 30, coefficients, np.inf)
    )[:5]
    print("\nleast clustered high-degree vertices (spam-like signal):")
    for v in suspicious:
        print(f"  vertex {int(v):5d}: degree {int(degrees[v]):4d}, "
              f"clustering {coefficients[v]:.4f}")

    # --- tie strength between two connected communities -------------------
    u, v = map(int, graph.edge_array()[0])
    print(f"\ntrigonal connectivity of edge ({u}, {v}): "
          f"{trigonal_connectivity(graph, u, v)} shared triangles")


if __name__ == "__main__":
    main()
