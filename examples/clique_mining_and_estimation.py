#!/usr/bin/env python3
"""Beyond exact triangles: subgraph listing and approximate counting.

Two directions the paper positions around its contribution:

* **subgraph listing** (its stated future work) — 4-cliques are listed
  out of core by joining OPT's nested triangle stream back against the
  page store; and
* **approximate counting** (the earlier literature it supersedes) —
  DOULION edge sampling and wedge sampling estimate the count in a
  fraction of the work, but cannot name a single triangle.
"""

from repro.approx import doulion, wedge_sampling
from repro.core import make_store, triangulate_disk
from repro.graph import datasets
from repro.graph.ordering import apply_ordering
from repro.memory import count_cliques, edge_iterator
from repro.subgraph import four_cliques_disk


class GroupSink:
    def __init__(self):
        self.groups = []
        self.count = 0

    def emit(self, u, v, ws):
        self.groups.append((int(u), int(v), [int(w) for w in ws]))
        self.count += len(ws)


def main() -> None:
    graph, _ = apply_ordering(datasets.load("ORKUT"), "degree")
    store = make_store(graph, page_size=1024)
    exact = edge_iterator(graph)
    print(f"Orkut stand-in: {graph.num_edges:,} edges, "
          f"{exact.triangles:,} triangles "
          f"({exact.cpu_ops:,} intersection probes)\n")

    # --- disk-based 4-clique listing over the triangle stream ------------
    sink = GroupSink()
    triangulate_disk(store, buffer_ratio=0.15, sink=sink)
    join = four_cliques_disk(store, sink.groups, buffer_pages=16)
    reference = count_cliques(graph, 4).triangles
    print(f"4-cliques (disk join over OPT's output): {join.cliques:,}")
    print(f"  in-memory reference:                   {reference:,}")
    print(f"  adjacency fetches: {join.pages_read:,} page reads, "
          f"{join.buffer_hits:,} buffer hits\n")
    assert join.cliques == reference

    # --- approximate counting --------------------------------------------
    print("approximate counting (exact = "
          f"{exact.triangles:,}, {exact.cpu_ops:,} ops):")
    for p in (0.5, 0.25, 0.1):
        estimate = doulion(graph, p, seed=42)
        error = (estimate.estimate / exact.triangles - 1) * 100
        print(f"  DOULION p={p:<5}: {estimate.estimate:>12,.0f} "
              f"({error:+6.1f}% error, {estimate.cpu_ops:,} ops)")
    for samples in (2000, 10000):
        estimate = wedge_sampling(graph, samples, seed=42)
        error = (estimate.estimate / exact.triangles - 1) * 100
        lo, hi = estimate.confidence_interval
        print(f"  wedges n={samples:<6}: {estimate.estimate:>11,.0f} "
              f"({error:+6.1f}% error, 95% CI [{lo:,.0f}, {hi:,.0f}])")

    print("\nEstimators are cheap but count-only; exact listing is what "
          "enables per-vertex and per-edge analyses.")


if __name__ == "__main__":
    main()
