#!/usr/bin/env python3
"""Reproduce any of the paper's experiments programmatically.

The whole evaluation is exposed as a library (``repro.experiments``):
each experiment runs the real computation, renders the paper-style table,
and asserts its qualitative claims.  Pass experiment ids on the command
line (default: the two quickest).

    python examples/reproduce_experiment.py fig3a fig6
    python examples/reproduce_experiment.py --all
"""

import sys
import time

from repro.experiments import experiment_names, run_experiment


def main() -> None:
    arguments = sys.argv[1:]
    if "--all" in arguments:
        names = experiment_names()
    elif arguments:
        names = arguments
    else:
        names = ["table2", "fig4"]

    for name in names:
        start = time.perf_counter()
        result = run_experiment(name)
        wall = time.perf_counter() - start
        print(f"\n{result.text}")
        print(f"\n  -> {len(result.checks)} qualitative claims verified "
              f"in {wall:.1f}s:")
        for claim in result.checks[:6]:
            print(f"     * {claim}")
        if len(result.checks) > 6:
            print(f"     * ... and {len(result.checks) - 6} more")


if __name__ == "__main__":
    main()
