"""Torn-tail robustness of the telemetry reader and ``repro top``.

A live ``--telemetry`` stream is read while the producer is mid-write,
so the reader's contract is: a torn final line is *skipped*, never
raised, and every complete record before it is returned.  These tests
cut a real stream (produced by an actual ``triangulate --telemetry``
run) at progressively nastier points — empty file, first line only,
truncation inside the final record — and assert both the reader and the
``repro top --once`` frame stay calm on each.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import read_telemetry_jsonl


@pytest.fixture(scope="module")
def telemetry_stream(tmp_path_factory):
    """A real telemetry JSONL produced by a disk-method run."""
    root = tmp_path_factory.mktemp("telemetry")
    graph_path = root / "g.txt"
    stream_path = root / "run.jsonl"
    assert main(["generate", "--model", "rmat", "--vertices", "64",
                 "--edges", "256", "--output", str(graph_path)]) == 0
    assert main(["triangulate", "--input", str(graph_path), "--method",
                 "opt", "--telemetry", str(stream_path)]) == 0
    text = stream_path.read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    assert len(lines) >= 2, "need a multi-tick stream to truncate"
    for line in lines:
        json.loads(line)  # the fixture itself must be well-formed
    return lines


def _top_once(path) -> int:
    return main(["top", str(path), "--once"])


def test_empty_file(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("", encoding="utf-8")
    assert read_telemetry_jsonl(path) == []
    assert _top_once(path) == 0
    assert "(no telemetry samples)" in capsys.readouterr().out


def test_whitespace_only_file(tmp_path, capsys):
    path = tmp_path / "blank.jsonl"
    path.write_text("\n\n   \n", encoding="utf-8")
    assert read_telemetry_jsonl(path) == []
    assert _top_once(path) == 0
    assert "(no telemetry samples)" in capsys.readouterr().out


def test_first_line_only(tmp_path, telemetry_stream, capsys):
    path = tmp_path / "head.jsonl"
    path.write_text(telemetry_stream[0] + "\n", encoding="utf-8")
    ticks = read_telemetry_jsonl(path)
    assert len(ticks) == 1
    assert ticks[0] == json.loads(telemetry_stream[0])
    assert _top_once(path) == 0
    assert "repro top" in capsys.readouterr().out


def test_mid_record_truncation(tmp_path, telemetry_stream, capsys):
    """A stream cut inside its final record drops exactly that record."""
    lines = telemetry_stream
    torn = lines[-1][: len(lines[-1]) // 2]
    path = tmp_path / "torn.jsonl"
    path.write_text("\n".join(lines[:-1]) + "\n" + torn, encoding="utf-8")
    ticks = read_telemetry_jsonl(path)
    assert len(ticks) == len(lines) - 1
    assert ticks == [json.loads(line) for line in lines[:-1]]
    assert _top_once(path) == 0
    assert "repro top" in capsys.readouterr().out


def test_torn_tail_completes_on_reread(tmp_path, telemetry_stream):
    """Follow-mode semantics: once the producer finishes the line, the
    previously-skipped record appears on the next poll."""
    lines = telemetry_stream
    split = len(lines[-1]) // 2
    path = tmp_path / "follow.jsonl"
    path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][:split],
                    encoding="utf-8")
    assert len(read_telemetry_jsonl(path)) == len(lines) - 1
    with path.open("a", encoding="utf-8") as handle:
        handle.write(lines[-1][split:] + "\n")
    ticks = read_telemetry_jsonl(path)
    assert len(ticks) == len(lines)
    assert ticks[-1] == json.loads(lines[-1])


def test_garbage_line_amid_stream(tmp_path, capsys):
    """Non-JSON and non-dict lines are skipped wherever they appear."""
    good = {"t": 1.0, "seq": 0, "counters": {}, "gauges": {},
            "histograms": {}, "rates": {}}
    path = tmp_path / "noise.jsonl"
    path.write_text("not json at all\n" + json.dumps(good) + "\n"
                    + json.dumps([1, 2, 3]) + "\n", encoding="utf-8")
    ticks = read_telemetry_jsonl(path)
    assert ticks == [good]
    assert _top_once(path) == 0
