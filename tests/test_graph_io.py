"""Tests for graph serialization round trips."""

from __future__ import annotations

import pytest

from repro.errors import GraphFormatError
from repro.graph import generators
from repro.graph.io import read_binary, read_edge_list, write_binary, write_edge_list


class TestEdgeList:
    def test_round_trip(self, tmp_path, small_rmat):
        path = tmp_path / "graph.txt"
        write_edge_list(small_rmat, path)
        loaded = read_edge_list(path, num_vertices=small_rmat.num_vertices)
        assert loaded == small_rmat

    def test_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 0\n0 1\n")
        assert read_edge_list(path).num_edges == 1

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestBinary:
    def test_round_trip(self, tmp_path, small_rmat):
        path = tmp_path / "graph.bin"
        write_binary(small_rmat, path)
        assert read_binary(path) == small_rmat

    def test_round_trip_empty(self, tmp_path):
        from repro.graph.builder import GraphBuilder

        graph = GraphBuilder(3).build()
        path = tmp_path / "empty.bin"
        write_binary(graph, path)
        loaded = read_binary(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.bin"
        path.write_bytes(b"JUNKxxxxxxxxxxxxxxxxxxxx")
        with pytest.raises(GraphFormatError):
            read_binary(path)

    def test_truncated(self, tmp_path, figure1):
        path = tmp_path / "graph.bin"
        write_binary(figure1, path)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(GraphFormatError):
            read_binary(path)
