"""Tests for the general disk-based k-clique join."""

from __future__ import annotations

import pytest

from repro.core import make_store, triangulate_disk
from repro.errors import TriangulationError
from repro.graph import generators
from repro.graph.ordering import apply_ordering
from repro.memory import count_cliques
from repro.subgraph import four_cliques_disk, k_cliques_disk


class GroupSink:
    def __init__(self):
        self.groups = []
        self.count = 0

    def emit(self, u, v, ws):
        self.groups.append((int(u), int(v), [int(w) for w in ws]))
        self.count += len(ws)


def prepare(graph, page_size=256, buffer_pages=4):
    store = make_store(graph, page_size)
    sink = GroupSink()
    triangulate_disk(store, buffer_pages=buffer_pages, sink=sink)
    return store, sink.groups


class TestKCliquesDisk:
    @pytest.mark.parametrize("k,expected", [(3, 84), (4, 126), (5, 126), (6, 84)])
    def test_complete_graph_all_levels(self, k, expected):
        # K9: C(9, k) cliques of size k.
        store, groups = prepare(generators.complete_graph(9))
        assert k_cliques_disk(store, groups, k).cliques == expected

    @pytest.mark.parametrize("k", [3, 4, 5])
    def test_matches_in_memory(self, k):
        graph, _ = apply_ordering(generators.holme_kim(200, 6, 0.6, seed=23),
                                  "degree")
        store, groups = prepare(graph)
        result = k_cliques_disk(store, groups, k, buffer_pages=8)
        assert result.cliques == count_cliques(graph, k).triangles

    def test_k4_agrees_with_specialized_join(self):
        graph, _ = apply_ordering(generators.holme_kim(150, 5, 0.6, seed=9),
                                  "degree")
        store, groups = prepare(graph)
        general = k_cliques_disk(store, groups, 4, buffer_pages=6)
        special = four_cliques_disk(store, groups, buffer_pages=6)
        assert general.cliques == special.cliques

    def test_collected_cliques_valid(self):
        graph, _ = apply_ordering(generators.holme_kim(120, 5, 0.7, seed=3),
                                  "degree")
        store, groups = prepare(graph)
        result = k_cliques_disk(store, groups, 5, buffer_pages=6, collect=True)
        assert len(result.listed) == result.cliques
        for clique in result.listed:
            assert len(clique) == 5
            assert list(clique) == sorted(clique)
            for i in range(5):
                for j in range(i + 1, 5):
                    assert graph.has_edge(clique[i], clique[j])

    def test_no_cliques_in_sparse_graph(self):
        store, groups = prepare(generators.cycle_graph(40))
        assert k_cliques_disk(store, groups, 4).cliques == 0

    def test_io_accounted(self):
        store, groups = prepare(generators.complete_graph(12))
        result = k_cliques_disk(store, groups, 5, buffer_pages=4)
        assert result.pages_read > 0
        assert result.elapsed > 0

    def test_validation(self, figure1):
        store, groups = prepare(figure1, page_size=128, buffer_pages=2)
        with pytest.raises(TriangulationError):
            k_cliques_disk(store, groups, 2)
