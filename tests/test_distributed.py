"""Tests for the distributed-method simulation (Table 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import (
    ClusterSpec,
    akm,
    edge_cut,
    hash_partition,
    per_partition_ops,
    powergraph,
    sv_mapreduce,
    vertex_cut_replication,
)
from repro.errors import ConfigurationError
from repro.memory import edge_iterator


class TestPartitioning:
    def test_hash_partition_in_range(self):
        placement = hash_partition(1000, 7)
        assert placement.min() >= 0 and placement.max() < 7

    def test_hash_partition_roughly_balanced(self):
        placement = hash_partition(10000, 10)
        counts = np.bincount(placement, minlength=10)
        assert counts.min() > 0.5 * counts.mean()

    def test_deterministic_per_seed(self):
        assert np.array_equal(hash_partition(100, 4, seed=1),
                              hash_partition(100, 4, seed=1))
        assert not np.array_equal(hash_partition(100, 4, seed=1),
                                  hash_partition(100, 4, seed=2))

    def test_edge_cut_bounds(self, small_rmat):
        placement = hash_partition(small_rmat.num_vertices, 8)
        cut = edge_cut(small_rmat, placement)
        assert 0 <= cut <= small_rmat.num_edges

    def test_single_partition_cuts_nothing(self, small_rmat):
        placement = hash_partition(small_rmat.num_vertices, 1)
        assert edge_cut(small_rmat, placement) == 0

    def test_per_partition_ops_sum(self, small_rmat):
        placement = hash_partition(small_rmat.num_vertices, 5)
        ops = per_partition_ops(small_rmat, placement, 5)
        assert int(ops.sum()) == edge_iterator(small_rmat).cpu_ops

    def test_replication_factor_bounds(self, small_rmat):
        replication = vertex_cut_replication(small_rmat, 8)
        assert 1.0 <= replication <= 8.0


class TestMethods:
    @pytest.mark.parametrize("method", [sv_mapreduce, akm, powergraph])
    def test_exact_counts(self, small_rmat_ordered, method):
        expected = edge_iterator(small_rmat_ordered).triangles
        assert method(small_rmat_ordered).triangles == expected

    def test_sv_much_slower_than_others(self, small_rmat_ordered):
        sv = sv_mapreduce(small_rmat_ordered)
        pg = powergraph(small_rmat_ordered)
        assert sv.elapsed > 10 * pg.elapsed

    def test_akm_slower_than_powergraph(self, small_rmat_ordered):
        assert akm(small_rmat_ordered).elapsed > powergraph(small_rmat_ordered).elapsed

    def test_extras_populated(self, small_rmat_ordered):
        assert akm(small_rmat_ordered).extra["cut_edges"] > 0
        assert powergraph(small_rmat_ordered).extra["replication"] > 1.0
        assert sv_mapreduce(small_rmat_ordered).extra["shuffle_pages"] > 0

    def test_cluster_spec_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(network_page_time=0)

    def test_more_nodes_speed_up_sv_compute(self, small_rmat_ordered):
        small = sv_mapreduce(small_rmat_ordered, ClusterSpec(nodes=2))
        large = sv_mapreduce(small_rmat_ordered, ClusterSpec(nodes=31))
        assert large.elapsed <= small.elapsed
