"""Tests for trace serialization and the text chart helpers."""

from __future__ import annotations

import pytest

from repro.analysis.ascii_chart import bar_chart, series_chart
from repro.core import triangulate_disk
from repro.errors import SimulationError
from repro.sim import CostModel, simulate
from repro.sim.trace_io import load_trace, save_trace, trace_from_dict, trace_to_dict


class TestTraceIO:
    @pytest.fixture()
    def trace(self, small_rmat_ordered):
        result = triangulate_disk(small_rmat_ordered, page_size=256,
                                  buffer_pages=6)
        return result.extra["trace"]

    def test_round_trip_preserves_schedule(self, trace, tmp_path):
        path = tmp_path / "run.trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        cost = CostModel()
        for cores in (1, 4):
            original = simulate(trace, cost, cores=cores)
            replayed = simulate(loaded, cost, cores=cores)
            assert replayed.elapsed == original.elapsed

    def test_round_trip_fields(self, trace, tmp_path):
        path = tmp_path / "run.trace.json"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.num_pages == trace.num_pages
        assert loaded.triangles == trace.triangles
        assert loaded.total_ops == trace.total_ops
        assert loaded.total_fill_buffered == trace.total_fill_buffered
        assert len(loaded.iterations) == len(trace.iterations)

    def test_version_check(self, trace):
        payload = trace_to_dict(trace)
        payload["version"] = 99
        with pytest.raises(SimulationError):
            trace_from_dict(payload)

    def test_malformed_payload(self):
        with pytest.raises(SimulationError):
            trace_from_dict({"version": 1, "iterations": [{"bogus": 1}]})

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(SimulationError):
            load_trace(path)


class TestCharts:
    def test_bar_chart_shape(self):
        chart = bar_chart(["OPT", "MGT"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[1].count("#") == 10  # max value fills the width
        assert lines[0].count("#") == 5

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_bar_chart_empty(self):
        assert "(no data)" in bar_chart([], [], title="t")

    def test_series_chart_contains_markers(self):
        chart = series_chart(
            [1, 2, 3],
            {"opt": [1.0, 2.0, 3.0], "mgt": [3.0, 2.0, 1.0]},
            height=5,
        )
        assert "O" in chart and "M" in chart
        assert "legend" in chart

    def test_series_chart_validation(self):
        with pytest.raises(ValueError):
            series_chart([1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            series_chart([1], {})


class TestCoreDecomposition:
    def test_complete_graph(self):
        from repro.graph import generators
        from repro.graph.cores import core_numbers, degeneracy

        graph = generators.complete_graph(7)
        assert degeneracy(graph) == 6
        assert all(core_numbers(graph) == 6)

    def test_tree_is_one_degenerate(self):
        from repro.graph.cores import degeneracy
        from repro.graph.generators import star_graph

        assert degeneracy(star_graph(50)) == 1

    def test_matches_networkx(self, clustered_graph):
        import networkx as nx

        from repro.graph.cores import core_numbers

        nxg = nx.Graph(list(clustered_graph.edges()))
        nxg.add_nodes_from(range(clustered_graph.num_vertices))
        expected = nx.core_number(nxg)
        computed = core_numbers(clustered_graph)
        assert all(computed[v] == expected[v]
                   for v in range(clustered_graph.num_vertices))

    def test_arboricity_bounds_bracket(self, small_rmat):
        from repro.graph.cores import degeneracy_arboricity_bounds

        lower, upper = degeneracy_arboricity_bounds(small_rmat)
        assert 1 <= lower <= upper

    def test_empty_graph(self):
        from repro.graph.builder import GraphBuilder
        from repro.graph.cores import core_numbers, degeneracy

        empty = GraphBuilder(0).build()
        assert len(core_numbers(empty)) == 0
        assert degeneracy(empty) == 0
