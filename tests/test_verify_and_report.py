"""Tests for the cross-method verifier and the report assembler."""

from __future__ import annotations

from repro.analysis import EXPERIMENT_ORDER, build_report
from repro.verify import VerificationReport, verify_methods


class TestVerifier:
    def test_all_methods_agree_on_figure1(self, figure1):
        report = verify_methods(figure1, page_size=128, buffer_pages=4,
                                include_threaded=False)
        assert report.consistent
        assert report.expected == 5
        assert len(report.counts) >= 10
        assert report.disagreements() == {}

    def test_includes_threaded_engine(self, figure1):
        report = verify_methods(figure1, page_size=128, buffer_pages=4,
                                include_threaded=True)
        assert "opt:threaded" in report.counts
        assert report.consistent

    def test_disagreement_detection(self):
        report = VerificationReport(counts={"a": 5, "b": 5, "c": 7})
        assert not report.consistent
        assert report.disagreements() == {"c": 7}

    def test_empty_report(self):
        report = VerificationReport()
        assert report.consistent
        assert report.expected == 0


class TestReport:
    def test_builds_in_canonical_order(self, tmp_path):
        (tmp_path / "fig3a_buffer_sweep.txt").write_text("sweep data")
        (tmp_path / "table2_datasets.txt").write_text("dataset data")
        (tmp_path / "zz_custom_ablation.txt").write_text("ablation data")
        text = build_report(tmp_path)
        # canonical entries first, in EXPERIMENT_ORDER...
        assert text.index("table2_datasets") < text.index("fig3a_buffer_sweep")
        # ...ad-hoc results appended, never dropped.
        assert "zz_custom_ablation" in text
        assert "ablation data" in text

    def test_writes_output_file(self, tmp_path):
        (tmp_path / "table2_datasets.txt").write_text("x")
        output = tmp_path / "report.md"
        build_report(tmp_path, output)
        assert output.read_text().startswith("# OPT reproduction report")

    def test_order_constant_covers_all_experiments(self):
        # Every paper experiment id appears in the canonical order.
        for key in ("table2", "table3", "fig3a", "fig3b", "fig4", "fig5",
                    "table4", "fig6", "table5", "table6", "fig7a", "fig7b",
                    "fig7c", "table7"):
            assert any(key in name for name in EXPERIMENT_ORDER), key
