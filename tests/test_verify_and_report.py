"""Tests for the cross-method verifier and the report assembler."""

from __future__ import annotations

from repro.analysis import EXPERIMENT_ORDER, build_report
from repro.verify import VerificationReport, verify_methods


class TestVerifier:
    def test_all_methods_agree_on_figure1(self, figure1):
        report = verify_methods(figure1, page_size=128, buffer_pages=4,
                                include_threaded=False)
        assert report.consistent
        assert report.expected == 5
        assert len(report.counts) >= 10
        assert report.disagreements() == {}

    def test_includes_threaded_engine(self, figure1):
        report = verify_methods(figure1, page_size=128, buffer_pages=4,
                                include_threaded=True)
        assert "opt:threaded" in report.counts
        assert report.consistent

    def test_disagreement_detection(self):
        report = VerificationReport(counts={"a": 5, "b": 5, "c": 7})
        assert not report.consistent
        assert report.disagreements() == {"c": 7}

    def test_tie_break_is_deterministic_without_oracle(self):
        # An even 2-2 split used to be resolved by hash order (the old
        # ``max(set(values), key=values.count)``), so either side could
        # be blamed from run to run.  Now the smallest tied count wins.
        report = VerificationReport(counts={"a": 7, "b": 7, "c": 5, "d": 5})
        assert report.disagreements() == {"a": 7, "b": 7}
        # Order of insertion must not matter.
        flipped = VerificationReport(counts={"c": 5, "a": 7, "d": 5, "b": 7})
        assert flipped.disagreements() == {"a": 7, "b": 7}

    def test_tie_break_prefers_the_oracle(self):
        # When the brute-force oracle participates in a tie, its count
        # is the majority — even when it is not the smallest value.
        report = VerificationReport(
            counts={"oracle": 7, "a": 7, "c": 5, "d": 5}, oracle="oracle")
        assert report.disagreements() == {"c": 5, "d": 5}
        # An oracle outside the tie changes nothing.
        outvoted = VerificationReport(
            counts={"oracle": 9, "a": 7, "b": 7, "c": 5, "d": 5},
            oracle="oracle")
        assert outvoted.disagreements() == {"oracle": 9, "a": 7, "b": 7}

    def test_verify_methods_seeds_the_oracle(self, figure1):
        report = verify_methods(figure1, page_size=128, buffer_pages=4,
                                include_threaded=False)
        assert report.oracle == "oracle"
        assert report.counts["oracle"] == 5
        # The composed exec witnesses participate in the sweep.
        assert any(name.startswith("exec:") for name in report.counts)

    def test_empty_report(self):
        report = VerificationReport()
        assert report.consistent
        assert report.expected == 0


class TestReport:
    def test_builds_in_canonical_order(self, tmp_path):
        (tmp_path / "fig3a_buffer_sweep.txt").write_text("sweep data")
        (tmp_path / "table2_datasets.txt").write_text("dataset data")
        (tmp_path / "zz_custom_ablation.txt").write_text("ablation data")
        text = build_report(tmp_path)
        # canonical entries first, in EXPERIMENT_ORDER...
        assert text.index("table2_datasets") < text.index("fig3a_buffer_sweep")
        # ...ad-hoc results appended, never dropped.
        assert "zz_custom_ablation" in text
        assert "ablation data" in text

    def test_writes_output_file(self, tmp_path):
        (tmp_path / "table2_datasets.txt").write_text("x")
        output = tmp_path / "report.md"
        build_report(tmp_path, output)
        assert output.read_text().startswith("# OPT reproduction report")

    def test_order_constant_covers_all_experiments(self):
        # Every paper experiment id appears in the canonical order.
        for key in ("table2", "table3", "fig3a", "fig3b", "fig4", "fig5",
                    "table4", "fig6", "table5", "table6", "fig7a", "fig7b",
                    "fig7c", "table7"):
            assert any(key in name for name in EXPERIMENT_ORDER), key
