"""Tests for the causal event tracer (repro.obs.trace).

Covers the tracer's clock modes, the Chrome ``trace_event`` export and
its schema validator, the interval-based overlap analytics, the ASCII
Gantt renderer, and both engines' instrumentation: the simulated engine
emits the vocabulary on sim time, the threaded engine on wall time with
one track per real thread, and both fold overlap + cost-conformance
figures into the run report.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.analysis.costs import cost_conformance
from repro.core.engine import triangulate_disk
from repro.core.threaded import triangulate_threaded
from repro.graph.generators import rmat
from repro.obs import (
    EventTracer,
    RunReport,
    TraceEvent,
    ascii_gantt,
    fold_trace_analytics,
    from_chrome_trace,
    overlap_analytics,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.trace import ExternalRead, IterationTrace, RunTrace


@pytest.fixture(scope="module")
def graph():
    return rmat(256, 1024, seed=7)


class TestEventTracer:
    def test_wall_clock_stamps_implicit_events(self):
        tracer = EventTracer.wall()
        tracer.instant("buffer.hit", pid=3)
        (event,) = tracer.events()
        assert event.ts >= 0
        assert event.args == {"pid": 3}
        assert event.track == threading.current_thread().name

    def test_sim_clock_drops_implicit_events(self):
        tracer = EventTracer.sim()
        tracer.instant("buffer.hit", pid=3)  # no explicit ts: dropped
        assert len(tracer) == 0
        tracer.instant("read.submit", ts=1.5, track="sim/flash0", pid=3)
        tracer.complete("fill", 0.0, 2.0, track="sim/core0")
        assert len(tracer) == 2

    def test_disabled_tracer_records_nothing(self):
        tracer = EventTracer(enabled=False)
        tracer.instant("x")
        tracer.complete("y", 0.0, 1.0)
        with tracer.slice("z"):
            pass
        assert len(tracer) == 0

    def test_slice_measures_wall_duration(self):
        tracer = EventTracer.wall()
        with tracer.slice("fill", index=0):
            pass
        (event,) = tracer.events()
        assert event.name == "fill"
        assert event.dur is not None and event.dur >= 0
        assert event.args == {"index": 0}

    def test_slice_is_noop_on_sim_clock(self):
        tracer = EventTracer.sim()
        with tracer.slice("fill"):
            pass
        assert len(tracer) == 0

    def test_sequence_numbers_are_monotonic(self):
        tracer = EventTracer.sim()
        for i in range(5):
            tracer.complete("fill", float(i), 0.5, track="sim/core0")
        seqs = [e.seq for e in tracer.events()]
        assert seqs == sorted(seqs) and len(set(seqs)) == 5

    def test_rejects_unknown_clock(self):
        with pytest.raises(ValueError, match="clock"):
            EventTracer(clock="cpu")


def _sample_events() -> list[TraceEvent]:
    return [
        TraceEvent("read.submit", 0.5, "main", args={"req": "0:0", "pid": 9}),
        TraceEvent("read.service", 1.0, "flash0", dur=2.0,
                   args={"req": "0:0", "pid": 9}),
        TraceEvent("internal", 0.0, "core0", dur=2.0),
        TraceEvent("external", 2.0, "core0", dur=2.0),
        TraceEvent("iteration", 0.0, "run", dur=4.0),
        TraceEvent("fault.inject", 1.2, "flash0", args={"kind": "latency"}),
    ]


class TestChromeExport:
    def test_export_is_schema_valid(self):
        payload = to_chrome_trace(_sample_events())
        assert validate_chrome_trace(payload) == []

    def test_one_named_track_per_tid(self):
        payload = to_chrome_trace(_sample_events())
        metadata = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in metadata}
        assert names == {"main", "flash0", "core0", "run"}
        tids = {e["tid"] for e in metadata}
        assert len(tids) == len(metadata)

    def test_timestamps_are_microseconds(self):
        payload = to_chrome_trace(_sample_events())
        service = next(e for e in payload["traceEvents"]
                       if e["name"] == "read.service")
        assert service["ts"] == pytest.approx(1.0e6)
        assert service["dur"] == pytest.approx(2.0e6)

    def test_round_trip_preserves_events(self):
        original = _sample_events()
        restored = from_chrome_trace(to_chrome_trace(original))
        assert len(restored) == len(original)
        for before, after in zip(original, restored):
            assert after.name == before.name
            assert after.track == before.track
            assert after.ts == pytest.approx(before.ts)
            if before.dur is None:
                assert after.dur is None
            else:
                assert after.dur == pytest.approx(before.dur)
            assert after.args == before.args

    def test_write_is_deterministic_bytes(self, tmp_path):
        events = _sample_events()
        a = write_chrome_trace(tmp_path / "a.json", events)
        b = write_chrome_trace(tmp_path / "b.json", events)
        assert a.read_bytes() == b.read_bytes()
        assert a.read_bytes().endswith(b"\n")

    def test_validator_flags_malformed_payloads(self):
        assert validate_chrome_trace([]) == ["trace must be a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        errors = validate_chrome_trace({"traceEvents": [
            {"ph": "Q", "name": "x", "tid": 0},
            {"ph": "X", "name": "x", "tid": 0, "ts": 1.0},  # missing dur
            {"ph": "i", "name": "", "tid": 0, "ts": 1.0},
        ]})
        assert any(".ph" in e for e in errors)
        assert any(".dur" in e for e in errors)
        assert any(".name" in e for e in errors)

    def test_from_chrome_trace_rejects_invalid(self):
        with pytest.raises(ValueError, match="invalid chrome trace"):
            from_chrome_trace({"traceEvents": "nope"})


class TestOverlapAnalytics:
    def test_empty_trace_yields_zeros(self):
        stats = overlap_analytics([])
        assert stats["macro_overlap_ratio"] == 0.0
        assert stats["micro_overlap_ratio"] == 0.0
        assert stats["span"] == 0.0
        assert stats["track_utilization"] == {}

    def test_macro_overlap_hand_computed(self):
        # internal CPU on [0, 2]; read outstanding from submit 0.5 to
        # service end 3.0 -> overlap [0.5, 2] = 1.5 of 2.0 internal.
        stats = overlap_analytics(_sample_events())
        assert stats["internal_cpu_time"] == pytest.approx(2.0)
        assert stats["io_outstanding_time"] == pytest.approx(2.5)
        assert stats["macro_overlap_ratio"] == pytest.approx(1.5 / 2.0)

    def test_micro_overlap_hand_computed(self):
        # external CPU on [2, 4]; I/O outstanding [0.5, 3] -> 1.0 of 2.0.
        stats = overlap_analytics(_sample_events())
        assert stats["external_cpu_time"] == pytest.approx(2.0)
        assert stats["micro_overlap_ratio"] == pytest.approx(1.0 / 2.0)

    def test_iteration_excluded_from_utilization(self):
        stats = overlap_analytics(_sample_events())
        assert "run" not in stats["track_utilization"]
        # core0 busy on [0,2] (internal) + [2,4] (external) over span 4.
        assert stats["track_utilization"]["core0"] == pytest.approx(1.0)

    def test_service_without_submit_counts_from_service_start(self):
        events = [TraceEvent("read.service", 1.0, "flash0", dur=1.0)]
        stats = overlap_analytics(events)
        assert stats["io_outstanding_time"] == pytest.approx(1.0)

    def test_fold_lands_derived_figures(self):
        report = RunReport("fold")
        stats = fold_trace_analytics(report, _sample_events())
        assert report.derived["macro_overlap_ratio"] == \
            stats["macro_overlap_ratio"]
        assert report.derived["trace_events"] == len(_sample_events())
        assert report.derived["track_utilization"]["core0"] == \
            pytest.approx(1.0)


class TestAsciiGantt:
    def test_empty_trace(self):
        assert ascii_gantt([]) == "(empty trace)"

    def test_rows_and_busy_percentages(self):
        text = ascii_gantt(_sample_events(), width=20)
        lines = text.splitlines()
        assert "trace span" in lines[0]
        assert any(line.startswith("core0") and "100.0%" in line
                   for line in lines)
        assert any("!" in line for line in lines)  # the fault.inject marker


class TestCostConformance:
    def make_trace(self) -> RunTrace:
        trace = RunTrace(num_pages=4, m_in=2, m_ex=2)
        trace.iterations.append(IterationTrace(
            fill_reads=2, internal_page_ops=[100, 100], candidate_ops=10,
            external_reads=[ExternalRead(pid=3, cpu_ops=200)],
        ))
        return trace

    def test_conforming_measurement(self):
        from repro.analysis.costs import opt_serial_cost
        from repro.sim.costmodel import DEFAULT_COST_MODEL as COST

        trace = self.make_trace()
        predicted = opt_serial_cost(trace, COST).total * COST.op_time
        verdict = cost_conformance(trace, predicted * 1.05, COST)
        assert verdict["verdict"] == "conforms"
        assert verdict["ratio"] == pytest.approx(1.05)
        assert verdict["basis"] == "simulated"

    def test_drift_flagged_beyond_tolerance(self):
        trace = self.make_trace()
        base = cost_conformance(trace, 1.0)["predicted_elapsed"]
        verdict = cost_conformance(trace, base * 2.0)
        assert verdict["verdict"] == "drift"
        assert verdict["delta_ex_minus_in_ops"] == \
            verdict["delta_ex_ops"] - verdict["delta_in_ops"]

    def test_rejects_negative_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            cost_conformance(self.make_trace(), 1.0, tolerance=-0.1)


class TestDiskEngineTracing:
    def test_sim_trace_vocabulary_and_report(self, graph):
        tracer = EventTracer.sim()
        report = RunReport("traced")
        result = triangulate_disk(graph, buffer_ratio=0.2, page_size=1024,
                                  report=report, trace=tracer)
        assert result.triangles > 0
        payload = to_chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] != "M"}
        tracks = {e["tid"] for e in payload["traceEvents"] if e["ph"] != "M"}
        assert len(names) >= 5, names
        assert len(tracks) >= 2
        assert {"fill", "internal", "iteration", "read.service"} <= names
        for key in ("macro_overlap_ratio", "micro_overlap_ratio",
                    "track_utilization", "trace_span", "cost_conformance"):
            assert key in report.derived, key
        assert report.derived["cost_conformance"]["verdict"] in \
            ("conforms", "drift")
        assert report.derived["cost_conformance"]["basis"] == "simulated"
        assert report.derived["trace_events"] == len(tracer)

    def test_trace_kwarg_defaults_off(self, graph):
        result = triangulate_disk(graph, buffer_ratio=0.2, page_size=1024)
        assert "tracer" not in result.extra

    def test_disabled_tracer_is_ignored(self, graph):
        tracer = EventTracer(enabled=False)
        result = triangulate_disk(graph, buffer_ratio=0.2, page_size=1024,
                                  trace=tracer)
        assert len(tracer) == 0
        assert "tracer" not in result.extra

    def test_sim_events_cover_every_iteration(self, graph):
        tracer = EventTracer.sim()
        result = triangulate_disk(graph, buffer_ratio=0.2, page_size=1024,
                                  trace=tracer)
        iterations = [e for e in tracer.events() if e.name == "iteration"]
        assert len(iterations) == result.iterations
        # Iterations tile the simulated timeline back to back.
        starts = sorted(e.ts for e in iterations)
        ends = sorted(e.end for e in iterations)
        for nxt, prev_end in zip(starts[1:], ends):
            assert nxt == pytest.approx(prev_end)


class TestThreadedEngineTracing:
    def test_wall_trace_spans_threads(self, graph, tmp_path):
        tracer = EventTracer.wall()
        report = RunReport("threaded-traced")
        result = triangulate_threaded(graph, tmp_path, buffer_pages=8,
                                      page_size=1024, report=report,
                                      trace=tracer)
        assert result.triangles > 0
        payload = to_chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] != "M"}
        metadata = {e["args"]["name"] for e in payload["traceEvents"]
                    if e["ph"] == "M"}
        assert len(names) >= 5, names
        assert len(metadata) >= 2, metadata
        assert {"fill", "internal", "iteration", "read.submit",
                "read.service", "read.callback"} <= names
        assert any(track.startswith("ssd-") for track in metadata)
        assert report.derived["cost_conformance"]["basis"] == "wall"
        assert "macro_overlap_ratio" in report.derived
        assert "track_utilization" in report.derived

    def test_threaded_run_trace_accounts_all_reads(self, graph, tmp_path):
        tracer = EventTracer.wall()
        result = triangulate_threaded(graph, tmp_path, buffer_pages=8,
                                      page_size=1024, trace=tracer)
        run_trace = result.extra["trace"]
        assert isinstance(run_trace, RunTrace)
        assert run_trace.total_device_reads == result.pages_read
        assert len(run_trace.iterations) == result.iterations
        assert run_trace.triangles == result.triangles

    def test_threaded_trace_json_loads(self, graph, tmp_path):
        tracer = EventTracer.wall()
        triangulate_threaded(graph, tmp_path / "run", buffer_pages=8,
                             page_size=1024, trace=tracer)
        path = write_chrome_trace(tmp_path / "out.json", tracer)
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["schema"] == "repro.obs/trace"
