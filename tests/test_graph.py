"""Tests for the CSR Graph, builder, and orderings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.graph import Graph
from repro.graph.ordering import Ordering, apply_ordering, degree_order_mapping

edges_strategy = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=120
)


class TestBuilder:
    def test_empty(self):
        graph = GraphBuilder().build()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_single_edge(self):
        graph = from_edges([(0, 1)])
        assert graph.num_vertices == 2
        assert graph.num_edges == 1
        assert graph.neighbors(0).tolist() == [1]
        assert graph.neighbors(1).tolist() == [0]

    def test_deduplicates(self):
        graph = from_edges([(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_drops_self_loops_by_default(self):
        graph = from_edges([(0, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_strict_rejects_self_loops(self):
        with pytest.raises(GraphError):
            from_edges([(2, 2)], strict=True)

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 2)])

    def test_fixed_vertex_count_bounds(self):
        with pytest.raises(GraphError):
            from_edges([(0, 5)], num_vertices=3)

    def test_isolated_trailing_vertices(self):
        graph = from_edges([(0, 1)], num_vertices=5)
        assert graph.num_vertices == 5
        assert graph.degree(4) == 0

    @given(edges_strategy)
    def test_symmetry_and_sortedness(self, edges):
        graph = from_edges(edges)
        for v in range(graph.num_vertices):
            row = graph.neighbors(v)
            assert np.all(np.diff(row) > 0) or len(row) <= 1
            for u in row:
                assert v in graph.neighbors(int(u))

    @given(edges_strategy)
    def test_edge_count_matches_edge_iteration(self, edges):
        graph = from_edges(edges)
        assert sum(1 for _ in graph.edges()) == graph.num_edges


class TestGraphAccessors:
    def test_succ_prec_partition(self, figure1):
        for v in range(figure1.num_vertices):
            succ = figure1.n_succ(v).tolist()
            prec = figure1.n_prec(v).tolist()
            assert sorted(succ + prec) == figure1.neighbors(v).tolist()
            assert all(u > v for u in succ)
            assert all(u < v for u in prec)

    def test_has_edge(self, figure1):
        assert figure1.has_edge(0, 1)
        assert figure1.has_edge(1, 0)
        assert not figure1.has_edge(0, 7)
        assert not figure1.has_edge(0, 99)

    def test_edge_array(self, figure1):
        array = figure1.edge_array()
        assert array.shape == (figure1.num_edges, 2)
        assert np.all(array[:, 0] < array[:, 1])

    def test_degrees(self, figure1):
        assert figure1.degrees().sum() == 2 * figure1.num_edges

    def test_validation_rejects_asymmetric(self):
        indptr = np.array([0, 1, 1])
        indices = np.array([1, 0])[:1]
        with pytest.raises(GraphError):
            Graph(np.array([0, 1, 2]), np.array([1, 1]))

    def test_validation_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(np.array([0, 1, 2]), np.array([0, 1]))


class TestRelabel:
    def test_identity(self, figure1):
        relabeled = figure1.relabel(np.arange(8))
        assert relabeled == figure1

    def test_permutation_preserves_structure(self, small_rmat):
        rng = np.random.default_rng(1)
        mapping = rng.permutation(small_rmat.num_vertices)
        relabeled = small_rmat.relabel(mapping)
        assert relabeled.num_edges == small_rmat.num_edges
        # Spot check: edge (u, v) maps to (mapping[u], mapping[v]).
        for u, v in list(small_rmat.edges())[:50]:
            assert relabeled.has_edge(int(mapping[u]), int(mapping[v]))

    def test_rejects_non_permutation(self, figure1):
        with pytest.raises(GraphError):
            figure1.relabel(np.zeros(8, dtype=np.int64))


class TestOrdering:
    def test_degree_mapping_monotone(self, small_rmat):
        mapping = degree_order_mapping(small_rmat)
        degrees = small_rmat.degrees()
        new_degree = np.empty_like(degrees)
        new_degree[mapping] = degrees
        assert np.all(np.diff(new_degree) >= 0)

    def test_reverse_degree_monotone_decreasing(self, small_rmat):
        mapping = degree_order_mapping(small_rmat, reverse=True)
        degrees = small_rmat.degrees()
        new_degree = np.empty_like(degrees)
        new_degree[mapping] = degrees
        assert np.all(np.diff(new_degree) <= 0)

    def test_natural_is_identity(self, small_rmat):
        graph, mapping = apply_ordering(small_rmat, Ordering.NATURAL)
        assert graph is small_rmat
        assert np.array_equal(mapping, np.arange(small_rmat.num_vertices))

    def test_degree_ordering_reduces_cost(self, small_rmat):
        """The Schank-Wagner heuristic must cut EdgeIterator op counts."""
        from repro.memory import edge_iterator

        natural_ops = edge_iterator(small_rmat).cpu_ops
        ordered, _ = apply_ordering(small_rmat, Ordering.DEGREE)
        assert edge_iterator(ordered).cpu_ops < natural_ops

    def test_random_is_seeded(self, small_rmat):
        g1, m1 = apply_ordering(small_rmat, Ordering.RANDOM, seed=3)
        g2, m2 = apply_ordering(small_rmat, Ordering.RANDOM, seed=3)
        assert np.array_equal(m1, m2)
