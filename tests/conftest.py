"""Shared fixtures: small graphs with independently known triangle counts."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.ordering import apply_ordering


@pytest.fixture(scope="session")
def figure1():
    """The paper's Figure 1 example graph (5 triangles)."""
    return generators.figure1_graph()


@pytest.fixture(scope="session")
def small_rmat():
    """A small R-MAT graph for cross-method comparisons."""
    return generators.rmat(400, 3000, seed=5)


@pytest.fixture(scope="session")
def small_rmat_ordered(small_rmat):
    graph, _ = apply_ordering(small_rmat, "degree")
    return graph


@pytest.fixture(scope="session")
def clustered_graph():
    """A Holme-Kim graph with substantial clustering."""
    return generators.holme_kim(300, 6, 0.5, seed=6)


def nx_triangle_count(graph):
    """Ground-truth triangle count via networkx."""
    import networkx as nx

    nxg = nx.Graph(list(graph.edges()))
    nxg.add_nodes_from(range(graph.num_vertices))
    return sum(nx.triangles(nxg).values()) // 3
