"""Shared fixtures: small graphs with independently known triangle counts."""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.graph import generators
from repro.graph.ordering import apply_ordering


@lru_cache(maxsize=None)
def _seeded_graph(model: str, args: tuple, seed: int, ordering: str):
    graph = getattr(generators, model)(*args, seed=seed)
    if ordering != "natural":
        graph, _ = apply_ordering(graph, ordering)
    return graph


@pytest.fixture(scope="session")
def seeded_graph():
    """Factory for deterministic test graphs, cached across the session.

    ``seeded_graph("holme_kim", 300, 6, 0.5, seed=6)`` builds (once) a
    degree-ordered Holme-Kim graph; pass ``ordering="natural"`` to skip
    the relabeling.  Consolidates the ad-hoc per-module constructions so
    identical graphs are built exactly once per test session.
    """

    def make(model: str, *args, seed: int = 0, ordering: str = "degree"):
        return _seeded_graph(model, args, seed, ordering)

    return make


@pytest.fixture(scope="session")
def figure1():
    """The paper's Figure 1 example graph (5 triangles)."""
    return generators.figure1_graph()


@pytest.fixture(scope="session")
def small_rmat(seeded_graph):
    """A small R-MAT graph for cross-method comparisons."""
    return seeded_graph("rmat", 400, 3000, seed=5, ordering="natural")


@pytest.fixture(scope="session")
def small_rmat_ordered(seeded_graph):
    return seeded_graph("rmat", 400, 3000, seed=5)


@pytest.fixture(scope="session")
def clustered_graph(seeded_graph):
    """A Holme-Kim graph with substantial clustering."""
    return seeded_graph("holme_kim", 300, 6, 0.5, seed=6, ordering="natural")


@pytest.fixture(scope="session")
def graph_zoo():
    """Factory over the named zoo in ``tests/zoo.py``, cached per session.

    ``graph_zoo("star")`` returns the same object for every test, so
    harnesses that sweep all members pay construction cost once.
    """
    from tests import zoo

    cache: dict[tuple[str, int], object] = {}

    def make(name: str, seed: int = 0):
        key = (name, seed)
        if key not in cache:
            cache[key] = zoo.build(name, seed)
        return cache[key]

    return make


def nx_triangle_count(graph):
    """Ground-truth triangle count via networkx."""
    import networkx as nx

    nxg = nx.Graph(list(graph.edges()))
    nxg.add_nodes_from(range(graph.num_vertices))
    return sum(nx.triangles(nxg).values()) // 3
