"""Stateful property test: the buffer manager under random operation mixes.

A hypothesis rule-based machine drives get/pin/unpin/flush sequences and
checks the invariants a buffer pool must never violate: capacity is
respected, pinned pages are never evicted, pin counts never go negative,
and page contents always come from the loader exactly once per residency.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import BufferError_
from repro.storage.buffer import BufferManager

CAPACITY = 4
PAGE_IDS = st.integers(0, 9)


class BufferMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.loads: list[int] = []
        self.buffer = BufferManager(CAPACITY, loader=self._load)
        self.pins: dict[int, int] = {}

    def _load(self, pid: int) -> list:
        self.loads.append(pid)
        return [f"page-{pid}"]

    @rule(pid=PAGE_IDS)
    def get(self, pid):
        if (
            len(self.buffer.resident_pages()) >= CAPACITY
            and pid not in self.buffer
            and sum(1 for c in self.pins.values() if c > 0) >= CAPACITY
        ):
            return  # would need an eviction with everything pinned
        frame = self.buffer.get(pid)
        assert frame.records == [f"page-{pid}"]

    @rule(pid=PAGE_IDS)
    def get_pinned(self, pid):
        resident_pinned = sum(1 for c in self.pins.values() if c > 0)
        if pid not in self.buffer and resident_pinned >= CAPACITY:
            return
        self.buffer.get(pid, pin=True)
        self.pins[pid] = self.pins.get(pid, 0) + 1

    @rule(pid=PAGE_IDS)
    def unpin(self, pid):
        if self.pins.get(pid, 0) > 0:
            self.buffer.unpin(pid)
            self.pins[pid] -= 1
        else:
            try:
                self.buffer.unpin(pid)
            except BufferError_:
                pass
            else:  # pragma: no cover - would be a bug
                raise AssertionError("over-unpin must raise")

    @rule()
    def flush(self):
        self.buffer.flush()
        # Flushing drops only unpinned pages.
        for pid, count in self.pins.items():
            if count > 0:
                assert pid in self.buffer

    @invariant()
    def capacity_respected(self):
        assert self.buffer.num_resident <= CAPACITY

    @invariant()
    def pinned_pages_resident(self):
        for pid, count in self.pins.items():
            if count > 0:
                assert pid in self.buffer, f"pinned page {pid} was evicted"

    @invariant()
    def stats_consistent(self):
        assert self.buffer.hits + self.buffer.misses >= len(self.loads)
        assert self.buffer.misses == len(self.loads)


TestBufferStateful = BufferMachine.TestCase
TestBufferStateful.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
