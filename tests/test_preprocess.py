"""Tests for the out-of-core build pipeline (external sort + packing)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_store, triangulate_disk
from repro.errors import StorageError
from repro.graph import generators
from repro.graph.builder import from_edges
from repro.graph.ordering import apply_ordering
from repro.memory import edge_iterator
from repro.preprocess import build_store_external, external_sort_edges, merge_runs


class TestExternalSort:
    def test_sorts_and_dedups(self, tmp_path):
        edges = [(3, 1), (0, 2), (1, 3), (2, 0), (5, 5), (4, 0)]
        runs = external_sort_edges(edges, tmp_path, chunk_edges=2)
        merged = list(merge_runs(runs))
        assert merged == [(0, 2), (0, 4), (1, 3)]

    def test_single_run(self, tmp_path):
        runs = external_sort_edges([(1, 0), (2, 1)], tmp_path, chunk_edges=100)
        assert len(runs) == 1
        assert list(merge_runs(runs)) == [(0, 1), (1, 2)]

    def test_run_count_respects_chunk(self, tmp_path):
        edges = [(i, i + 1) for i in range(100)]
        runs = external_sort_edges(edges, tmp_path, chunk_edges=10)
        assert len(runs) == 10

    def test_empty_input(self, tmp_path):
        assert external_sort_edges([], tmp_path) == []
        assert list(merge_runs([])) == []

    def test_chunk_validation(self, tmp_path):
        with pytest.raises(StorageError):
            external_sort_edges([(0, 1)], tmp_path, chunk_edges=0)

    @given(st.lists(st.tuples(st.integers(0, 30), st.integers(0, 30)), max_size=150))
    @settings(max_examples=25, deadline=None)
    def test_merge_equals_in_memory_dedup(self, tmp_path_factory, edges):
        tmp = tmp_path_factory.mktemp("runs")
        runs = external_sort_edges(edges, tmp, chunk_edges=7)
        merged = list(merge_runs(runs))
        expected = sorted({(min(u, v), max(u, v)) for u, v in edges if u != v})
        assert merged == expected


class TestBuildPipeline:
    def test_matches_in_memory_path(self, tmp_path):
        graph = generators.rmat(300, 2000, seed=31)
        store, mapping, stats = build_store_external(
            list(graph.edges()), tmp_path, chunk_edges=256, page_size=512
        )
        ordered, expected_mapping = apply_ordering(graph, "degree")
        reference = make_store(ordered, 512)
        assert np.array_equal(mapping, expected_mapping)
        assert store.pages == reference.pages
        assert np.array_equal(store.first_page, reference.first_page)
        assert stats.num_edges == graph.num_edges

    def test_triangles_from_built_store(self, tmp_path):
        graph = generators.holme_kim(200, 5, 0.5, seed=32)
        store, _mapping, _stats = build_store_external(
            list(graph.edges()), tmp_path, chunk_edges=128, page_size=512
        )
        result = triangulate_disk(store, buffer_pages=6)
        assert result.triangles == edge_iterator(graph).triangles

    def test_from_edge_list_file(self, tmp_path, figure1):
        from repro.graph.io import write_edge_list

        path = tmp_path / "graph.txt"
        write_edge_list(figure1, path)
        store, _mapping, stats = build_store_external(
            path, tmp_path / "work", page_size=256
        )
        assert stats.num_edges == figure1.num_edges
        result = triangulate_disk(store, buffer_pages=4)
        assert result.triangles == 5

    def test_duplicates_and_self_loops_removed(self, tmp_path):
        edges = [(0, 1), (1, 0), (0, 1), (2, 2), (1, 2)]
        store, _mapping, stats = build_store_external(
            edges, tmp_path, page_size=256
        )
        assert stats.num_edges == 2

    def test_isolated_vertices_padded(self, tmp_path):
        store, _mapping, stats = build_store_external(
            [(0, 1)], tmp_path, num_vertices=5, page_size=256
        )
        assert stats.num_vertices == 5
        assert store.num_vertices == 5

    def test_natural_order_mode(self, tmp_path):
        graph = generators.rmat(100, 500, seed=33)
        store, mapping, _stats = build_store_external(
            list(graph.edges()), tmp_path, page_size=512, degree_order=False
        )
        assert np.array_equal(mapping, np.arange(graph.num_vertices))
        reference = make_store(graph, 512)
        assert store.pages == reference.pages

    def test_tiny_chunks_still_exact(self, tmp_path):
        graph = from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 0)])
        store, _mapping, stats = build_store_external(
            list(graph.edges()), tmp_path, chunk_edges=1, page_size=256
        )
        assert stats.runs_phase1 == graph.num_edges
        assert triangulate_disk(store, buffer_pages=4).triangles == edge_iterator(
            graph
        ).triangles
