"""Tests for the cost model and the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import CostModel, ExternalRead, IterationTrace, RunTrace, simulate


def model(**overrides) -> CostModel:
    defaults = dict(page_read_time=100e-6, op_time=1e-6, channels=1,
                    candidate_op_factor=1.0)
    defaults.update(overrides)
    return CostModel(**defaults)


def trace_of(iterations, m_in=2, m_ex=2, num_pages=10) -> RunTrace:
    return RunTrace(num_pages=num_pages, m_in=m_in, m_ex=m_ex,
                    iterations=iterations)


class TestCostModel:
    def test_c_constant(self):
        cm = model()
        assert cm.c == pytest.approx(100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CostModel(page_read_time=0)
        with pytest.raises(ConfigurationError):
            CostModel(channels=0)
        with pytest.raises(ConfigurationError):
            CostModel(candidate_op_factor=-1)

    def test_with_override(self):
        cm = model().with_(channels=4)
        assert cm.channels == 4
        assert cm.page_read_time == 100e-6


class TestFillPhase:
    def test_fill_only(self):
        it = IterationTrace(fill_reads=5)
        result = simulate(trace_of([it]), model(), cores=1)
        assert result.elapsed == pytest.approx(5 * 100e-6)

    def test_buffered_fill_free(self):
        it = IterationTrace(fill_reads=0, fill_buffered=5)
        result = simulate(trace_of([it]), model(), cores=1)
        assert result.elapsed == pytest.approx(0.0)

    def test_candidate_cpu_can_dominate_fill(self):
        it = IterationTrace(fill_reads=1, candidate_ops=1000)
        result = simulate(trace_of([it]), model(), cores=1)
        assert result.elapsed == pytest.approx(1000e-6)

    def test_channels_divide_fill(self):
        it = IterationTrace(fill_reads=8)
        t1 = simulate(trace_of([it]), model(channels=1)).elapsed
        t4 = simulate(trace_of([it]), model(channels=4)).elapsed
        assert t4 == pytest.approx(t1 / 4)


class TestInternalWork:
    def test_serial_internal_sum(self):
        it = IterationTrace(internal_page_ops=[100, 200, 300])
        result = simulate(trace_of([it]), model(), cores=1)
        assert result.elapsed == pytest.approx(600e-6)

    def test_parallel_internal_scales(self):
        it = IterationTrace(internal_page_ops=[100] * 12)
        t1 = simulate(trace_of([it]), model(), cores=1).elapsed
        t3 = simulate(trace_of([it]), model(), cores=4, morphing=True).elapsed
        # 3 internal workers (+ the morphing callback worker) share 12 tasks.
        assert t3 < t1 / 2.5

    def test_no_morphing_callback_idle(self):
        it = IterationTrace(internal_page_ops=[100] * 12)
        with_morph = simulate(trace_of([it]), model(), cores=2, morphing=True).elapsed
        without = simulate(trace_of([it]), model(), cores=2, morphing=False).elapsed
        # Without morphing the callback worker never helps internal work.
        assert without == pytest.approx(12 * 100e-6)
        assert with_morph < without


class TestExternalPipeline:
    def test_micro_overlap_hides_io_when_cpu_bound(self):
        """CPU-bound external work must cost ~CPU, not CPU + I/O."""
        reads = [ExternalRead(pid=i, cpu_ops=1000) for i in range(10)]
        it = IterationTrace(external_reads=reads)
        result = simulate(trace_of([it], m_ex=4), model(), cores=1)
        cpu = 10 * 1000e-6
        io = 10 * 100e-6
        assert result.elapsed < cpu + 0.5 * io
        assert result.elapsed >= cpu

    def test_io_bound_external_costs_io(self):
        reads = [ExternalRead(pid=i, cpu_ops=1) for i in range(10)]
        it = IterationTrace(external_reads=reads)
        result = simulate(trace_of([it], m_ex=4), model(), cores=1)
        assert result.elapsed >= 10 * 100e-6

    def test_buffered_reads_cost_no_io(self):
        reads = [ExternalRead(pid=i, cpu_ops=10, buffered=True) for i in range(5)]
        it = IterationTrace(external_reads=reads)
        result = simulate(trace_of([it]), model(), cores=1)
        assert result.elapsed == pytest.approx(5 * 10e-6)

    def test_window_limits_prefetch(self):
        """With m_ex=1 (sync I/O, the MGT mode) latency adds up serially."""
        reads = [ExternalRead(pid=i, cpu_ops=100) for i in range(10)]
        it = IterationTrace(external_reads=reads)
        sync = simulate(trace_of([it], m_ex=1), model(), cores=1).elapsed
        overlapped = simulate(trace_of([it], m_ex=8), model(), cores=1).elapsed
        assert sync == pytest.approx(10 * (100e-6 + 100e-6))
        assert overlapped < sync


class TestMacroOverlap:
    def test_two_cores_overlap_internal_external(self):
        reads = [ExternalRead(pid=i, cpu_ops=500, buffered=True) for i in range(4)]
        it = IterationTrace(internal_page_ops=[500] * 4, external_reads=reads)
        serial = simulate(trace_of([it]), model(), cores=1, serial=True).elapsed
        dual = simulate(trace_of([it]), model(), cores=2, morphing=True).elapsed
        assert dual == pytest.approx(serial / 2, rel=0.1)

    def test_serial_flag_forces_one_core(self):
        it = IterationTrace(internal_page_ops=[100] * 4)
        result = simulate(trace_of([it]), model(), cores=6, serial=True)
        assert result.cores == 1

    def test_iterations_are_barriers(self):
        it1 = IterationTrace(internal_page_ops=[1000])
        it2 = IterationTrace(internal_page_ops=[1000])
        both = simulate(trace_of([it1, it2]), model(), cores=2).elapsed
        one = simulate(trace_of([it1]), model(), cores=2).elapsed
        assert both == pytest.approx(2 * one)


class TestResultFields:
    def test_parallel_fraction(self):
        reads = [ExternalRead(pid=i, cpu_ops=1000, buffered=True) for i in range(3)]
        it = IterationTrace(fill_reads=2, external_reads=reads)
        result = simulate(trace_of([it]), model(), cores=1, serial=True)
        assert 0 < result.parallel_fraction <= 1

    def test_iteration_timings_recorded(self):
        it = IterationTrace(fill_reads=1, internal_page_ops=[10])
        result = simulate(trace_of([it, it]), model(), cores=1)
        assert len(result.iterations) == 2
        assert all(t.elapsed >= t.fill_time for t in result.iterations)

    def test_invalid_cores(self):
        with pytest.raises(SimulationError):
            simulate(trace_of([]), model(), cores=0)

    def test_output_writes_extend_when_slow(self):
        it = IterationTrace(internal_page_ops=[1], output_pages=100)
        result = simulate(trace_of([it]), model(), cores=1)
        assert result.elapsed >= 100 * model().page_write_time
