"""Tests for the real-thread OPT engine."""

from __future__ import annotations

import pytest

from repro.core import triangulate_threaded
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.memory import CollectSink, canonical_triangles, edge_iterator


class TestThreadedCorrectness:
    def test_figure1(self, figure1, tmp_path):
        result = triangulate_threaded(figure1, tmp_path, buffer_pages=2,
                                      page_size=128)
        assert result.triangles == 5

    @pytest.mark.parametrize("plugin", ["edge-iterator", "vertex-iterator"])
    @pytest.mark.parametrize("buffer_pages", [2, 6])
    def test_rmat(self, small_rmat_ordered, tmp_path, plugin, buffer_pages):
        expected = edge_iterator(small_rmat_ordered).triangles
        result = triangulate_threaded(
            small_rmat_ordered, tmp_path, plugin=plugin,
            buffer_pages=buffer_pages, page_size=256,
        )
        assert result.triangles == expected

    def test_exact_listing(self, small_rmat_ordered, tmp_path):
        reference = CollectSink()
        edge_iterator(small_rmat_ordered, reference)
        sink = CollectSink()
        triangulate_threaded(small_rmat_ordered, tmp_path, buffer_pages=4,
                             page_size=256, sink=sink)
        assert canonical_triangles(sink) == canonical_triangles(reference)

    def test_spanning_hub(self, tmp_path):
        graph = generators.complete_graph(40)
        result = triangulate_threaded(graph, tmp_path, buffer_pages=4,
                                      page_size=64)
        assert result.triangles == 40 * 39 * 38 // 6

    def test_deterministic_counts_across_windows(self, tmp_path, seeded_graph):
        graph = seeded_graph("holme_kim", 200, 6, 0.5, seed=3)
        expected = edge_iterator(graph).triangles
        for window in (1, 2, 8):
            result = triangulate_threaded(graph, tmp_path / str(window),
                                          buffer_pages=4, page_size=256,
                                          window=window)
            assert result.triangles == expected

    def test_reports_io_and_iterations(self, small_rmat_ordered, tmp_path):
        result = triangulate_threaded(small_rmat_ordered, tmp_path,
                                      buffer_pages=6, page_size=256)
        assert result.pages_read > 0
        assert result.iterations > 1
        assert result.elapsed > 0

    def test_validation(self, figure1, tmp_path):
        with pytest.raises(ConfigurationError):
            triangulate_threaded(figure1, tmp_path, buffer_pages=1)
