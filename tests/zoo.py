"""The seeded graph zoo: named small graphs with known shapes.

One place to enumerate the inputs every differential harness should
survive — the paper's worked example, random graphs with triangles, and
the pathological shapes that historically break triangulation engines
(empty input, a triangle-free star, disconnected dense components,
duplicate edges that must collapse to one).

``ZOO`` maps a stable name to a zero-argument builder; builders are
deterministic (fixed seeds) so every test session sees identical
graphs.  The scenario matrix parametrizes over :func:`zoo_names` and
the ``graph_zoo`` fixture in ``conftest.py`` materializes members on
demand, cached per session.
"""

from __future__ import annotations

from repro.graph import generators
from repro.graph.builder import from_edges
from repro.graph.graph import Graph


def _empty() -> Graph:
    """No vertices, no edges — every engine must return zero, not crash."""
    return from_edges([], num_vertices=0)


def _isolated() -> Graph:
    """Vertices but not a single edge (all-zero CSR rows)."""
    return from_edges([], num_vertices=7)


def _star() -> Graph:
    """A 9-leaf star: many edges, zero triangles (hub never closes)."""
    return generators.star_graph(10)


def _path() -> Graph:
    """A 12-vertex path — triangle-free with non-trivial adjacency."""
    return from_edges([(u, u + 1) for u in range(11)], num_vertices=12)


def _two_cliques() -> Graph:
    """Two disconnected K5s: dense components a vertex split straddles."""
    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
    return from_edges(edges, num_vertices=10)


def _duplicate_edges() -> Graph:
    """A triangle given with duplicate + reversed edges.

    ``from_edges`` must collapse them; an engine that double-counts an
    edge lists phantom triangles.
    """
    edges = [(0, 1), (1, 0), (0, 1), (1, 2), (2, 1), (0, 2), (2, 0),
             (2, 3), (3, 2), (2, 3)]
    return from_edges(edges, num_vertices=4)


def _figure1() -> Graph:
    """The paper's Figure 1 worked example (5 triangles)."""
    return generators.figure1_graph()


def _rmat_small() -> Graph:
    """A seeded R-MAT graph: skewed degrees, plenty of triangles."""
    return generators.rmat(128, 600, seed=11)


def _holme_kim_small() -> Graph:
    """A seeded Holme-Kim graph: high clustering coefficient."""
    return generators.holme_kim(80, 4, 0.6, seed=3)


#: name -> zero-argument deterministic builder.
ZOO = {
    "empty": _empty,
    "isolated": _isolated,
    "star": _star,
    "path": _path,
    "two-cliques": _two_cliques,
    "dup-edges": _duplicate_edges,
    "figure1": _figure1,
    "rmat-small": _rmat_small,
    "holme-kim-small": _holme_kim_small,
}

#: Members whose triangle count is known by construction, for harness
#: self-checks (the oracle must reproduce these exactly).
KNOWN_COUNTS = {
    "empty": 0,
    "isolated": 0,
    "star": 0,
    "path": 0,
    "two-cliques": 20,   # 2 * C(5, 3)
    "dup-edges": 1,
    "figure1": 5,
}


#: Members that exist as a seeded family: ``seed`` shifts the base seed
#: so the scenario matrix can sweep several instances of each random
#: shape.  Seed 0 is always identical to the plain ``ZOO`` builder.
SEEDED = {
    "rmat-small": lambda seed: generators.rmat(128, 600, seed=11 + seed),
    "holme-kim-small": lambda seed: generators.holme_kim(80, 4, 0.6,
                                                         seed=3 + seed),
}


def zoo_names() -> list[str]:
    """Stable ordering for parametrization."""
    return list(ZOO)


def build(name: str, seed: int = 0) -> Graph:
    """Build a zoo member; *seed* > 0 varies the random families."""
    if seed and name in SEEDED:
        return SEEDED[name](seed)
    return ZOO[name]()
