"""The seeded graph zoo: named small graphs with known shapes.

One place to enumerate the inputs every differential harness should
survive — the paper's worked example, random graphs with triangles, and
the pathological shapes that historically break triangulation engines
(empty input, a triangle-free star, disconnected dense components,
duplicate edges that must collapse to one).

``ZOO`` maps a stable name to a zero-argument builder; builders are
deterministic (fixed seeds) so every test session sees identical
graphs.  The scenario matrix parametrizes over :func:`zoo_names` and
the ``graph_zoo`` fixture in ``conftest.py`` materializes members on
demand, cached per session.
"""

from __future__ import annotations

from repro.graph import generators
from repro.graph.builder import from_edges
from repro.graph.graph import Graph


def _empty() -> Graph:
    """No vertices, no edges — every engine must return zero, not crash."""
    return from_edges([], num_vertices=0)


def _isolated() -> Graph:
    """Vertices but not a single edge (all-zero CSR rows)."""
    return from_edges([], num_vertices=7)


def _star() -> Graph:
    """A 9-leaf star: many edges, zero triangles (hub never closes)."""
    return generators.star_graph(10)


def _path() -> Graph:
    """A 12-vertex path — triangle-free with non-trivial adjacency."""
    return from_edges([(u, u + 1) for u in range(11)], num_vertices=12)


def _two_cliques() -> Graph:
    """Two disconnected K5s: dense components a vertex split straddles."""
    edges = []
    for base in (0, 5):
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((base + i, base + j))
    return from_edges(edges, num_vertices=10)


def _duplicate_edges() -> Graph:
    """A triangle given with duplicate + reversed edges.

    ``from_edges`` must collapse them; an engine that double-counts an
    edge lists phantom triangles.
    """
    edges = [(0, 1), (1, 0), (0, 1), (1, 2), (2, 1), (0, 2), (2, 0),
             (2, 3), (3, 2), (2, 3)]
    return from_edges(edges, num_vertices=4)


def _figure1() -> Graph:
    """The paper's Figure 1 worked example (5 triangles)."""
    return generators.figure1_graph()


def _rmat_small() -> Graph:
    """A seeded R-MAT graph: skewed degrees, plenty of triangles."""
    return generators.rmat(128, 600, seed=11)


def _holme_kim_small() -> Graph:
    """A seeded Holme-Kim graph: high clustering coefficient."""
    return generators.holme_kim(80, 4, 0.6, seed=3)


def _star_of_cliques() -> Graph:
    """A hub attached to one representative of each lopsided clique.

    The hub's successor list spans the whole id range while each
    clique's lists stay inside their contiguous block, so hub pairs
    range-prune to nothing (the adaptive kernel's ``disjoint`` branch)
    while in-clique pairs stay comparable (``merge``) — the shape where
    a fixed kernel's ``min(|a|, |b|)`` charge is provably wasteful.
    """
    sizes = (3, 4, 5, 8, 12, 24)
    edges = []
    base = 1
    for size in sizes:
        edges.append((0, base))
        for i in range(size):
            for j in range(i + 1, size):
                edges.append((base + i, base + j))
        base += size
    return from_edges(edges, num_vertices=base)


def _hub_bipartite() -> Graph:
    """Bipartite-ish hubs over leaf blocks with engineered skew bands.

    Hub 0 owns a 96-leaf block; hub 1 samples every 8th leaf plus a far
    block outside hub 0's span (so range pruning strictly beats the raw
    ``min`` charge); hub 2 samples every 24th.  The hub-hub pairs land
    one each in the adaptive kernel's ``bitmap`` (mid skew), ``gallop``
    (extreme skew), and ``merge`` (comparable) bands; leaf pairs hit
    ``empty``.
    """
    edges = [(0, 1), (0, 2), (1, 2)]
    main = list(range(3, 99))
    far = list(range(99, 105))
    for leaf in main:
        edges.append((0, leaf))
    for leaf in main[::8] + far:
        edges.append((1, leaf))
    for leaf in main[::24]:
        edges.append((2, leaf))
    return from_edges(edges, num_vertices=105)


def _rmat_heavy() -> Graph:
    """A heavy-tailed R-MAT variant: quadrant weights pushed to (0.65,
    0.15, 0.15, 0.05) concentrate edges on low ids, producing the degree
    skew that exercises every adaptive-kernel branch on one member."""
    return generators.rmat(96, 480, probabilities=(0.65, 0.15, 0.15, 0.05),
                           seed=5)


#: name -> zero-argument deterministic builder.
ZOO = {
    "empty": _empty,
    "isolated": _isolated,
    "star": _star,
    "path": _path,
    "two-cliques": _two_cliques,
    "dup-edges": _duplicate_edges,
    "figure1": _figure1,
    "rmat-small": _rmat_small,
    "holme-kim-small": _holme_kim_small,
    "star-of-cliques": _star_of_cliques,
    "hub-bipartite": _hub_bipartite,
    "rmat-heavy": _rmat_heavy,
}

#: The degree-skew stress members: every adaptive-kernel branch fires
#: across (and on ``rmat-heavy``, within) these, and the adaptive op
#: bill is strictly below every fixed kernel's on each one.
SKEW_MEMBERS = ("star-of-cliques", "hub-bipartite", "rmat-heavy")

#: Members whose triangle count is known by construction, for harness
#: self-checks (the oracle must reproduce these exactly).
KNOWN_COUNTS = {
    "empty": 0,
    "isolated": 0,
    "star": 0,
    "path": 0,
    "two-cliques": 20,   # 2 * C(5, 3)
    "dup-edges": 1,
    "figure1": 5,
    "star-of-cliques": 2315,  # sum C(c, 3) over cliques (3,4,5,8,12,24)
    "hub-bipartite": 21,      # hub triangle + per-hub leaf closures
}


#: Members that exist as a seeded family: ``seed`` shifts the base seed
#: so the scenario matrix can sweep several instances of each random
#: shape.  Seed 0 is always identical to the plain ``ZOO`` builder.
SEEDED = {
    "rmat-small": lambda seed: generators.rmat(128, 600, seed=11 + seed),
    "holme-kim-small": lambda seed: generators.holme_kim(80, 4, 0.6,
                                                         seed=3 + seed),
    "rmat-heavy": lambda seed: generators.rmat(
        96, 480, probabilities=(0.65, 0.15, 0.15, 0.05), seed=5 + seed),
}


def zoo_names() -> list[str]:
    """Stable ordering for parametrization."""
    return list(ZOO)


def build(name: str, seed: int = 0) -> Graph:
    """Build a zoo member; *seed* > 0 varies the random families."""
    if seed and name in SEEDED:
        return SEEDED[name](seed)
    return ZOO[name]()
