"""Property tests for the degree-balanced chunk planner.

:func:`repro.parallel.chunks.plan_chunks` is the root of the parallel
engine's determinism guarantee: the chunk list is planned once in the
parent, and "every triangle listed at its minimum vertex" turns any
contiguous-disjoint-covering split into a correct parallel plan.  These
properties pin the contract over *arbitrary* degree sequences —
including the skewed, the empty, and the all-isolated — rather than the
handful of graphs the unit tests use:

* chunks are half-open, non-empty, sorted, and pairwise disjoint;
* their union is exactly ``[0, num_vertices)`` (no vertex lost or
  duplicated ⇒ no triangle lost or double-listed);
* the plan never exceeds the requested chunk count;
* :func:`default_chunk_count` stays within the oversubscription bound
  ``workers * OVERSUBSCRIPTION`` and never exceeds the vertex count.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.graph.builder import from_edges
from repro.parallel.chunks import (
    OVERSUBSCRIPTION,
    default_chunk_count,
    plan_chunks,
)

#: An arbitrary simple graph as (num_vertices, edge list): degree
#: sequences from empty through star-skewed arise naturally.
graphs = st.integers(min_value=0, max_value=60).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, max(0, n - 1)),
                      st.integers(0, max(0, n - 1))),
            max_size=150,
        ) if n > 0 else st.just([]),
    )
)


def _build(spec):
    num_vertices, edges = spec
    return from_edges([(u, v) for u, v in edges if u != v],
                      num_vertices=num_vertices)


@settings(max_examples=60, deadline=None)
@given(spec=graphs, chunks=st.integers(min_value=1, max_value=24))
def test_plan_is_a_disjoint_cover(spec, chunks):
    graph = _build(spec)
    plan = plan_chunks(graph, chunks)
    assert plan, "plan is never empty (degenerate graphs get one range)"
    if graph.num_vertices == 0:
        # The degenerate contract: one explicitly empty range.
        assert plan == [(0, 0)]
        return
    # Non-empty half-open ranges in sorted order.
    for lo, hi in plan:
        assert 0 <= lo < hi <= graph.num_vertices, (lo, hi)
    # Adjacent ranges chain exactly: disjoint and gap-free, and together
    # they cover [0, num_vertices) — no vertex lost or duplicated.
    for (_, prev_hi), (lo, _) in zip(plan, plan[1:]):
        assert lo == prev_hi
    assert plan[0][0] == 0
    assert plan[-1][1] == graph.num_vertices
    assert sum(hi - lo for lo, hi in plan) == graph.num_vertices


@settings(max_examples=60, deadline=None)
@given(spec=graphs, chunks=st.integers(min_value=1, max_value=24))
def test_plan_respects_requested_chunk_count(spec, chunks):
    graph = _build(spec)
    plan = plan_chunks(graph, chunks)
    assert len(plan) <= max(chunks, 1)


@settings(max_examples=60, deadline=None)
@given(spec=graphs, workers=st.integers(min_value=1, max_value=16))
def test_default_chunk_count_oversubscription_bound(spec, workers):
    graph = _build(spec)
    count = default_chunk_count(graph, workers)
    assert 1 <= count <= workers * OVERSUBSCRIPTION
    if graph.num_vertices:
        assert count <= graph.num_vertices
    # The bound composes with the planner: the realized plan respects it.
    plan = plan_chunks(graph, count)
    assert len(plan) <= count


@settings(max_examples=40, deadline=None)
@given(spec=graphs, chunks=st.integers(min_value=1, max_value=24))
def test_plan_is_deterministic(spec, chunks):
    graph = _build(spec)
    assert plan_chunks(graph, chunks) == plan_chunks(graph, chunks)
