"""Failure-injection tests: the storage stack must fail loudly."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError, PageFormatError
from repro.storage import (
    CorruptingPageFile,
    FlakyPageFile,
    GraphStore,
    SlottedPage,
    SyncDevice,
    ThreadedSSD,
    corrupt_page_bytes,
)


@pytest.fixture()
def page_file(tmp_path, small_rmat):
    store = GraphStore.from_graph(small_rmat, 256)
    with store.open_page_file(tmp_path) as handle:
        yield handle, store


class TestCorruption:
    def test_decoder_detects_corruption(self, page_file):
        handle, _store = page_file
        corrupted = corrupt_page_bytes(handle.read_page(0))
        with pytest.raises(PageFormatError):
            SlottedPage.from_bytes(corrupted)

    def test_corrupting_wrapper_targets_only_bad_pages(self, page_file):
        handle, store = page_file
        wrapper = CorruptingPageFile(handle, {1})
        # Page 0 decodes fine...
        SlottedPage.from_bytes(wrapper.read_page(0))
        # ...page 1 must be detected as damaged.
        with pytest.raises(PageFormatError):
            SlottedPage.from_bytes(wrapper.read_page(1))

    def test_sync_device_surfaces_corruption(self, page_file):
        handle, _store = page_file
        device = SyncDevice(CorruptingPageFile(handle, {0}))
        with pytest.raises(PageFormatError):
            device.read_page(0)


class TestTransientFaults:
    def test_fail_first_attempt_then_recover(self, page_file):
        handle, store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: attempt == 0)
        with pytest.raises(DeviceError):
            flaky.read_page(0)
        assert flaky.read_page(0) == handle.read_page(0)
        assert flaky.attempts[0] == 2

    def test_permanent_fault(self, page_file):
        handle, _store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: pid == 2)
        flaky.read_page(0)
        for _ in range(3):
            with pytest.raises(DeviceError):
                flaky.read_page(2)

    def test_threaded_ssd_surfaces_injected_fault(self, page_file):
        handle, _store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: pid == 1)
        ssd = ThreadedSSD(flaky, io_workers=2)
        ssd.async_read(0, lambda records: None)
        ssd.async_read(1, lambda records: None)
        with pytest.raises(DeviceError):
            ssd.wait_idle()
        ssd.close()

    def test_threaded_ssd_usable_after_clean_pages(self, page_file):
        handle, store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: False)
        seen = []
        with ThreadedSSD(flaky, io_workers=2) as ssd:
            for pid in range(min(4, store.num_pages)):
                ssd.async_read(pid, lambda records, p=None: seen.append(1))
            ssd.wait_idle()
        assert len(seen) == min(4, store.num_pages)
