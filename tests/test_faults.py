"""Failure-injection tests: the storage stack must fail loudly."""

from __future__ import annotations

import pytest

from repro.errors import DeviceError, PageFormatError
from repro.storage import (
    CorruptingPageFile,
    FlakyPageFile,
    GraphStore,
    SlottedPage,
    SyncDevice,
    ThreadedSSD,
    corrupt_page_bytes,
)


pytestmark = pytest.mark.fast


@pytest.fixture()
def page_file(tmp_path, small_rmat):
    store = GraphStore.from_graph(small_rmat, 256)
    with store.open_page_file(tmp_path) as handle:
        yield handle, store


class TestCorruption:
    def test_decoder_detects_corruption(self, page_file):
        handle, _store = page_file
        corrupted = corrupt_page_bytes(handle.read_page(0))
        with pytest.raises(PageFormatError):
            SlottedPage.from_bytes(corrupted)

    def test_corrupting_wrapper_targets_only_bad_pages(self, page_file):
        handle, store = page_file
        wrapper = CorruptingPageFile(handle, {1})
        # Page 0 decodes fine...
        SlottedPage.from_bytes(wrapper.read_page(0))
        # ...page 1 must be detected as damaged.
        with pytest.raises(PageFormatError):
            SlottedPage.from_bytes(wrapper.read_page(1))

    def test_sync_device_surfaces_corruption(self, page_file):
        handle, _store = page_file
        device = SyncDevice(CorruptingPageFile(handle, {0}))
        with pytest.raises(PageFormatError):
            device.read_page(0)


class TestTransientFaults:
    def test_fail_first_attempt_then_recover(self, page_file):
        handle, store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: attempt == 0)
        with pytest.raises(DeviceError):
            flaky.read_page(0)
        assert flaky.read_page(0) == handle.read_page(0)
        assert flaky.attempts[0] == 2

    def test_permanent_fault(self, page_file):
        handle, _store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: pid == 2)
        flaky.read_page(0)
        for _ in range(3):
            with pytest.raises(DeviceError):
                flaky.read_page(2)

    def test_threaded_ssd_surfaces_injected_fault(self, page_file):
        handle, _store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: pid == 1)
        ssd = ThreadedSSD(flaky, io_workers=2)
        ssd.async_read(0, lambda records: None)
        ssd.async_read(1, lambda records: None)
        with pytest.raises(DeviceError):
            ssd.wait_idle()
        ssd.close()

    def test_threaded_ssd_usable_after_clean_pages(self, page_file):
        handle, store = page_file
        flaky = FlakyPageFile(handle, lambda pid, attempt: False)
        seen = []
        with ThreadedSSD(flaky, io_workers=2) as ssd:
            for pid in range(min(4, store.num_pages)):
                ssd.async_read(pid, lambda records, p=None: seen.append(1))
            ssd.wait_idle()
        assert len(seen) == min(4, store.num_pages)


# ---------------------------------------------------------------------------
# The declarative fault subsystem (FaultPlan / FaultyPageFile /
# RecoveringLoader / RetryPolicy) — unit level; the engine-level matrix
# lives in test_fault_matrix.py.
# ---------------------------------------------------------------------------

from repro.errors import ConfigurationError, FaultExhaustedError
from repro.storage import (
    FaultPlan,
    FaultSpec,
    FaultyPageFile,
    RecoveringLoader,
    RetryPolicy,
)


class TestFaultSpecValidation:
    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("cosmic-ray")

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("transient", rate=1.5)

    def test_latency_needs_delay(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("latency", rate=0.5)
        FaultSpec("latency", rate=0.5, delay=0.001)  # fine

    def test_times_positive(self):
        with pytest.raises(ConfigurationError):
            FaultSpec("transient", rate=0.5, times=0)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_backoff_grows_and_is_jitter_bounded(self):
        policy = RetryPolicy(backoff_base=0.001, backoff_factor=2.0,
                             jitter=0.5)
        values = [policy.backoff(0, attempt) for attempt in range(4)]
        for attempt, value in enumerate(values):
            base = 0.001 * 2.0 ** attempt
            assert base <= value <= base * 1.5

    def test_no_jitter_is_exact(self):
        policy = RetryPolicy(backoff_base=0.001, jitter=0.0)
        assert policy.backoff(5, 2) == 0.001 * 4


class TestFaultPlan:
    def test_explicit_pages_override_rate(self):
        plan = FaultPlan([FaultSpec("transient", pages=frozenset({3}))])
        assert plan.actions(3, 0)
        assert not plan.actions(4, 0)

    def test_times_bounds_attempts(self):
        plan = FaultPlan([FaultSpec("transient", pages=frozenset({0}),
                                    times=2)])
        assert plan.actions(0, 0) and plan.actions(0, 1)
        assert not plan.actions(0, 2)

    def test_actions_ordered_by_kind(self):
        plan = FaultPlan([
            FaultSpec("torn", pages=frozenset({0})),
            FaultSpec("latency", pages=frozenset({0}), delay=0.001),
        ])
        kinds = [action.kind for action in plan.actions(0, 0)]
        assert kinds == ["latency", "torn"]

    def test_needs_timeout(self):
        assert FaultPlan([FaultSpec("stall", rate=0.1,
                                    delay=0.5)]).needs_timeout
        assert not FaultPlan([FaultSpec("transient", rate=0.1)]).needs_timeout


class TestFaultyPageFile:
    def test_transient_heals_after_times(self, page_file):
        handle, _store = page_file
        plan = FaultPlan([FaultSpec("transient", pages=frozenset({0}),
                                    times=1)])
        faulty = FaultyPageFile(handle, plan)
        with pytest.raises(DeviceError):
            faulty.read_page(0)
        assert faulty.read_page(0) == handle.read_page(0)
        assert faulty.attempts_of(0) == 2

    def test_torn_page_is_detected_by_decoder(self, page_file):
        handle, _store = page_file
        plan = FaultPlan([FaultSpec("torn", pages=frozenset({1}), times=1)])
        faulty = FaultyPageFile(handle, plan)
        with pytest.raises(PageFormatError):
            SlottedPage.from_bytes(faulty.read_page(1))
        SlottedPage.from_bytes(faulty.read_page(1))  # healed

    def test_latency_sleeps_injected_delay(self, page_file):
        handle, _store = page_file
        slept = []
        plan = FaultPlan([FaultSpec("latency", pages=frozenset({0}),
                                    delay=0.25)])
        faulty = FaultyPageFile(handle, plan, sleep=slept.append)
        faulty.read_page(0)
        assert slept == [0.25]


class TestSyncDeviceRecovery:
    def test_retries_through_fault_plan(self, page_file):
        handle, _store = page_file
        plan = FaultPlan([FaultSpec("transient", pages=frozenset({0}),
                                    times=2)])
        device = SyncDevice(FaultyPageFile(handle, plan),
                            retry_policy=RetryPolicy(max_retries=3,
                                                     backoff_base=0.0))
        records = device.read_page(0)
        assert records
        assert device.registry.value("recovery.retries") == 2

    def test_exhaustion_is_typed(self, page_file):
        handle, _store = page_file
        plan = FaultPlan([FaultSpec("transient", pages=frozenset({0}),
                                    times=100)])
        device = SyncDevice(FaultyPageFile(handle, plan),
                            retry_policy=RetryPolicy(max_retries=2,
                                                     backoff_base=0.0))
        with pytest.raises(FaultExhaustedError) as excinfo:
            device.read_page(0)
        assert excinfo.value.pid == 0
        assert isinstance(excinfo.value, DeviceError)

    def test_no_policy_fails_fast(self, page_file):
        handle, _store = page_file
        plan = FaultPlan([FaultSpec("transient", pages=frozenset({0}),
                                    times=1)])
        device = SyncDevice(FaultyPageFile(handle, plan))
        with pytest.raises(DeviceError):
            device.read_page(0)
        assert device.registry.value("recovery.retries") == 0


class TestRecoveringLoader:
    def _store(self, small_rmat):
        return GraphStore.from_graph(small_rmat, 256)

    def test_accumulates_virtual_delay(self, small_rmat):
        store = self._store(small_rmat)
        plan = FaultPlan([FaultSpec("latency", pages=frozenset({0}),
                                    delay=0.5)])
        loader = RecoveringLoader(store.decode_page, plan)
        loaded = loader(0)
        assert [r.vertex for r in loaded] \
            == [r.vertex for r in store.decode_page(0)]
        assert loader.take_delay() == 0.5
        assert loader.take_delay() == 0.0  # drained

    def test_retry_charges_backoff_not_sleep(self, small_rmat):
        store = self._store(small_rmat)
        plan = FaultPlan([FaultSpec("transient", pages=frozenset({0}),
                                    times=2)])
        policy = RetryPolicy(max_retries=3, backoff_base=0.001, jitter=0.0)
        loader = RecoveringLoader(store.decode_page, plan, policy)
        assert [r.vertex for r in loader(0)] \
            == [r.vertex for r in store.decode_page(0)]
        # Two retries: backoff(0) + backoff(1) = 0.001 + 0.002.
        assert abs(loader.take_delay() - 0.003) < 1e-12
        assert loader.registry.value("recovery.retries") == 2

    def test_terminal_after_budget(self, small_rmat):
        store = self._store(small_rmat)
        plan = FaultPlan([FaultSpec("torn", pages=frozenset({0}),
                                    times=100)])
        loader = RecoveringLoader(store.decode_page, plan,
                                  RetryPolicy(max_retries=2))
        with pytest.raises(FaultExhaustedError):
            loader(0)
        assert loader.registry.value("recovery.giveups") == 1
        assert plan.log.counts()["giveup"] == 1
