"""I/O accounting audit: device reads are counted exactly once.

The buffer manager counts ``buffer.misses``, the device layer counts
``ssd.pages_read``, and the OPT driver folds ``opt.pages_read`` from its
trace — three independent tallies of the same physical reads.  These
tests pin the no-double-count invariant ``buffer.misses ==
ssd.pages_read`` through every wrapping combination, including a
:class:`FaultyPageFile` injecting retried faults between the two
(a retry must not count as an extra page read).
"""

from __future__ import annotations

import pytest

from repro.graph.generators import rmat
from repro.obs import MetricsRegistry, RunReport
from repro.storage.buffer import BufferManager
from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.storage.layout import GraphStore
from repro.storage.ssd import SyncDevice


@pytest.fixture()
def page_file(tmp_path, small_rmat):
    store = GraphStore.from_graph(small_rmat, 256)
    with store.open_page_file(tmp_path) as handle:
        yield handle, store


def _walk(buffer, num_pages):
    """Touch every page twice plus a re-walk: hits and misses both occur."""
    for pid in range(num_pages):
        buffer.get(pid)
        buffer.get(pid)  # immediate re-get: guaranteed hit
    for pid in range(num_pages):
        buffer.get(pid)  # second walk: hit or miss depending on capacity


def test_clean_buffered_device_counts_once(page_file):
    handle, store = page_file
    registry = MetricsRegistry()
    device = SyncDevice(handle, registry=registry)
    buffer = BufferManager(max(2, store.num_pages // 2),
                           loader=device.read_page, registry=registry)
    _walk(buffer, store.num_pages)
    assert buffer.misses == device.pages_read
    assert registry.counter("buffer.misses").value == \
        registry.counter("ssd.pages_read").value
    assert buffer.hits >= store.num_pages  # the immediate re-gets


def test_faulty_buffered_device_counts_once(page_file):
    """Retried transient faults must not inflate ``ssd.pages_read``."""
    from repro.storage.faults import FaultyPageFile

    handle, store = page_file
    registry = MetricsRegistry()
    plan = FaultPlan([FaultSpec(kind="transient", rate=0.5, times=2)],
                     seed=3)
    faulty = FaultyPageFile(handle, plan, sleep=lambda _s: None)
    device = SyncDevice(faulty, registry=registry,
                        retry_policy=RetryPolicy(max_retries=8,
                                                 backoff_base=1e-6))
    buffer = BufferManager(max(2, store.num_pages // 2),
                           loader=device.read_page, registry=registry)
    _walk(buffer, store.num_pages)
    assert registry.counter("recovery.retries").value > 0, \
        "fault plan never fired; the audit exercised nothing"
    assert buffer.misses == device.pages_read
    assert registry.counter("buffer.misses").value == \
        registry.counter("ssd.pages_read").value


def test_run_opt_pages_read_matches_buffer_misses():
    """End to end: the driver's trace tally equals the buffer's misses."""
    from repro.core.engine import triangulate_disk

    graph = rmat(256, 1024, seed=5)
    report = RunReport("audit")
    plan = FaultPlan([FaultSpec(kind="transient", rate=0.3, times=2)], seed=9)
    triangulate_disk(graph, buffer_ratio=0.2, page_size=256, report=report,
                     fault_plan=plan,
                     retry_policy=RetryPolicy(max_retries=8,
                                              backoff_base=1e-6))
    registry = report.registry
    assert registry.counter("buffer.misses").value == \
        registry.counter("opt.pages_read").value
    assert registry.counter("recovery.retries").value > 0
