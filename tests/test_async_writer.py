"""Tests for the asynchronous file writer."""

from __future__ import annotations

import pytest

from repro.core import NestedOutputWriter, triangulate_disk
from repro.core.result_store import TriangleStore
from repro.errors import DeviceError
from repro.storage.writer import AsyncFile


class TestAsyncFile:
    def test_content_matches_sync(self, tmp_path):
        chunks = [bytes([i]) * (i + 1) for i in range(50)]
        sync_path = tmp_path / "sync.bin"
        async_path = tmp_path / "async.bin"
        with open(sync_path, "wb") as handle:
            for chunk in chunks:
                handle.write(chunk)
        with AsyncFile(async_path) as handle:
            for chunk in chunks:
                handle.write(chunk)
        assert async_path.read_bytes() == sync_path.read_bytes()

    def test_stats(self, tmp_path):
        with AsyncFile(tmp_path / "s.bin") as handle:
            handle.write(b"abc")
            handle.write(b"defg")
            handle.flush()
            assert handle.bytes_written == 7
            assert handle.chunks_written == 2

    def test_write_after_close(self, tmp_path):
        handle = AsyncFile(tmp_path / "c.bin")
        handle.close()
        with pytest.raises(DeviceError):
            handle.write(b"late")

    def test_close_idempotent(self, tmp_path):
        handle = AsyncFile(tmp_path / "i.bin")
        handle.write(b"x")
        handle.close()
        handle.close()
        assert (tmp_path / "i.bin").read_bytes() == b"x"

    def test_error_surfaces(self, tmp_path):
        handle = AsyncFile(tmp_path / "e.bin")
        # Closing the underlying handle behind the writer's back makes
        # the next background write fail; the error must surface.
        handle._handle.close()
        handle.write(b"doomed")
        with pytest.raises(DeviceError):
            handle.flush()
        handle._closed = True  # avoid double-close of the inner handle

    def test_backpressure_bounded_queue(self, tmp_path):
        with AsyncFile(tmp_path / "b.bin", max_queued=2) as handle:
            for _ in range(100):
                handle.write(b"y" * 1024)
        assert (tmp_path / "b.bin").stat().st_size == 100 * 1024


class TestAsyncNestedOutput:
    def test_nested_output_through_async_file(self, tmp_path, small_rmat_ordered):
        """OPT's triangle stream written through the async device."""
        path = tmp_path / "triangles.nested"
        async_handle = AsyncFile(path)
        writer = NestedOutputWriter(async_handle, page_size=512)
        result = triangulate_disk(small_rmat_ordered, page_size=256,
                                  buffer_pages=6, sink=writer)
        writer.close()
        async_handle.close()
        store = TriangleStore.from_file(path)
        assert len(store) == result.triangles
