"""Tests for graph packing, the vertex index, and chunk alignment."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.builder import from_edges
from repro.storage.layout import GraphStore


def reassemble(store: GraphStore) -> dict[int, list[int]]:
    """Rebuild every adjacency list from the page images."""
    lists: dict[int, list[int]] = {}
    for pid in range(store.num_pages):
        for record in store.decode_page(pid):
            lists.setdefault(record.vertex, []).extend(record.neighbors.tolist())
    return lists


class TestPacking:
    @pytest.mark.parametrize("page_size", [64, 256, 4096])
    def test_round_trip(self, small_rmat, page_size):
        store = GraphStore.from_graph(small_rmat, page_size)
        lists = reassemble(store)
        for v in range(small_rmat.num_vertices):
            assert lists.get(v, []) == small_rmat.neighbors(v).tolist()

    def test_vertex_index_correct(self, small_rmat):
        store = GraphStore.from_graph(small_rmat, 128)
        for v in range(small_rmat.num_vertices):
            found = [
                pid
                for pid in range(store.num_pages)
                for record in store.decode_page(pid)
                if record.vertex == v
            ]
            assert found == list(store.pages_of_vertex(v))

    def test_spanning_vertex_contiguous(self):
        """A hub larger than a page spans contiguous pages with one last chunk."""
        graph = generators.star_graph(300)
        store = GraphStore.from_graph(graph, 128)
        hub_pages = list(store.pages_of_vertex(0))
        assert len(hub_pages) > 1
        assert hub_pages == list(range(hub_pages[0], hub_pages[-1] + 1))
        last_flags = [
            record.is_last
            for pid in hub_pages
            for record in store.decode_page(pid)
            if record.vertex == 0
        ]
        assert last_flags.count(True) == 1
        assert last_flags[-1]

    def test_empty_graph(self):
        from repro.graph.builder import GraphBuilder

        store = GraphStore.from_graph(GraphBuilder(0).build(), 128)
        assert store.num_pages == 0

    def test_isolated_vertices_have_records(self):
        graph = from_edges([(0, 1)], num_vertices=4)
        store = GraphStore.from_graph(graph, 128)
        lists = reassemble(store)
        assert lists[2] == [] and lists[3] == []

    @given(st.lists(st.tuples(st.integers(0, 40), st.integers(0, 40)), max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, edges):
        graph = from_edges(edges)
        if graph.num_vertices == 0:
            return
        store = GraphStore.from_graph(graph, 128)
        lists = reassemble(store)
        for v in range(graph.num_vertices):
            assert lists.get(v, []) == graph.neighbors(v).tolist()


class TestChunkAlignment:
    @pytest.mark.parametrize("m_in", [1, 2, 3, 7])
    def test_chunks_partition_pages(self, small_rmat, m_in):
        store = GraphStore.from_graph(small_rmat, 128)
        pid = 0
        covered = []
        while pid < store.num_pages:
            end = store.align_chunk_end(pid, m_in)
            covered.extend(range(pid, end + 1))
            assert store.page_ends_complete[end]
            pid = end + 1
        assert covered == list(range(store.num_pages))

    def test_chunk_never_splits_vertex(self, small_rmat):
        store = GraphStore.from_graph(small_rmat, 128)
        pid = 0
        while pid < store.num_pages:
            end = store.align_chunk_end(pid, 3)
            v_lo, v_hi = store.chunk_vertex_range(pid, end)
            for v in range(v_lo, v_hi + 1):
                assert pid <= store.first_page[v] <= store.last_page[v] <= end
            pid = end + 1

    def test_giant_vertex_extends_chunk(self):
        graph = generators.star_graph(400)
        store = GraphStore.from_graph(graph, 128)
        end = store.align_chunk_end(0, 1)
        assert end >= store.last_page[0]


class TestCandidatePages:
    def test_candidate_pages_cover_successors(self, small_rmat):
        store = GraphStore.from_graph(small_rmat, 128)
        for v in range(small_rmat.num_vertices):
            succ = set(small_rmat.n_succ(v).tolist())
            got = set()
            for pid in store.pages_of_candidate(v):
                for record in store.decode_page(pid):
                    if record.vertex == v:
                        got.update(
                            int(x) for x in record.neighbors if x > v
                        )
            assert got == succ

    def test_no_successors_no_pages(self):
        graph = from_edges([(0, 2), (1, 2)], num_vertices=3)
        store = GraphStore.from_graph(graph, 128)
        assert len(store.pages_of_candidate(2)) == 0

    def test_suffix_is_subset_of_chain(self, small_rmat):
        store = GraphStore.from_graph(small_rmat, 64)
        for v in range(small_rmat.num_vertices):
            chain = set(store.pages_of_vertex(v))
            suffix = set(store.pages_of_candidate(v))
            assert suffix <= chain


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path, small_rmat):
        store = GraphStore.from_graph(small_rmat, 256)
        store.save(tmp_path)
        loaded = GraphStore.load(tmp_path)
        assert loaded.num_pages == store.num_pages
        assert loaded.pages == store.pages
        assert np.array_equal(loaded.first_page, store.first_page)
        assert np.array_equal(loaded.succ_first_page, store.succ_first_page)

    def test_open_page_file(self, tmp_path, figure1):
        store = GraphStore.from_graph(figure1, 128)
        with store.open_page_file(tmp_path) as page_file:
            assert page_file.num_pages == store.num_pages
            assert page_file.read_page(0) == store.pages[0]
