"""Invariants of the run traces produced by the OPT driver.

These pin down the accounting the cost analysis (Section 3.3) relies on:
fill coverage, Δin consistency, request-list ordering and disjointness,
and conservation of intersection work against the in-memory reference.
"""

from __future__ import annotations

import pytest

from repro.core import OPTConfig, make_store, run_opt
from repro.core.plugins import EdgeIteratorPlugin, MGTPlugin, VertexIteratorPlugin
from repro.graph import generators
from repro.memory import edge_iterator


@pytest.fixture(scope="module")
def setup(seeded_graph):
    graph = seeded_graph("holme_kim", 400, 8, 0.4, seed=17)
    store = make_store(graph, 512)
    return graph, store


class TestEdgeIteratorTrace:
    @pytest.fixture(scope="class")
    def trace(self, setup):
        _graph, store = setup
        return run_opt(store, OPTConfig(m_in=4, m_ex=4,
                                        plugin=EdgeIteratorPlugin()))

    def test_fill_covers_every_page_once(self, trace, setup):
        _graph, store = setup
        fills = sum(it.fill_reads + it.fill_buffered for it in trace.iterations)
        assert fills == store.num_pages

    def test_delta_in_bounded_by_chunk(self, trace):
        """An iteration cannot save more fills than its chunk has pages."""
        for iteration in trace.iterations:
            chunk_pages = len(iteration.internal_page_ops)
            assert iteration.fill_buffered <= chunk_pages
            assert iteration.fill_reads + iteration.fill_buffered == chunk_pages

    def test_external_requests_exclude_internal_chunk(self, trace, setup):
        _graph, store = setup
        start = 0
        for iteration in trace.iterations:
            end = store.align_chunk_end(start, trace.m_in)
            chunk = set(range(start, end + 1))
            for read in iteration.external_reads:
                assert read.pid not in chunk
            start = end + 1

    def test_external_requests_descending(self, trace):
        for iteration in trace.iterations:
            pids = [read.pid for read in iteration.external_reads]
            assert pids == sorted(pids, reverse=True)

    def test_no_duplicate_requests_per_iteration(self, trace):
        for iteration in trace.iterations:
            pids = [read.pid for read in iteration.external_reads]
            assert len(pids) == len(set(pids))

    def test_ops_conserved_vs_in_memory(self, trace, setup):
        graph, _store = setup
        memory_ops = edge_iterator(graph).cpu_ops
        # Theorem 1 modulo chunk splitting: never less work than the
        # in-memory method, never more than the chunking overhead bound.
        assert memory_ops <= trace.total_ops <= 2 * memory_ops

    def test_internal_tasks_match_chunk_pages(self, trace, setup):
        _graph, store = setup
        start = 0
        for iteration in trace.iterations:
            end = store.align_chunk_end(start, trace.m_in)
            assert len(iteration.internal_page_ops) == end - start + 1
            start = end + 1


class TestPluginTraceDifferences:
    def test_vi_trace_same_structure_more_probe_cost(self, setup):
        _graph, store = setup
        ei = run_opt(store, OPTConfig(m_in=4, m_ex=4, plugin=EdgeIteratorPlugin()))
        vi = run_opt(store, OPTConfig(m_in=4, m_ex=4, plugin=VertexIteratorPlugin()))
        assert vi.triangles == ei.triangles
        assert len(vi.iterations) == len(ei.iterations)
        assert vi.total_device_reads == ei.total_device_reads
        assert vi.total_ops > ei.total_ops  # hash-probe weighting

    def test_mgt_trace_shape(self, setup):
        _graph, store = setup
        mgt = run_opt(store, OPTConfig(m_in=7, m_ex=1, plugin=MGTPlugin()))
        assert mgt.sync_external
        for iteration in mgt.iterations:
            # Every iteration streams the whole file, no internal work.
            assert len(iteration.external_reads) == store.num_pages
            assert sum(iteration.internal_page_ops) == 0
            assert all(not read.buffered for read in iteration.external_reads)

    def test_buffered_flags_only_without_rescan(self, setup):
        _graph, store = setup
        ei = run_opt(store, OPTConfig(m_in=4, m_ex=4, plugin=EdgeIteratorPlugin()))
        buffered = sum(it.external_buffered for it in ei.iterations)
        device = sum(it.external_device_reads for it in ei.iterations)
        assert buffered + device == sum(
            len(it.external_reads) for it in ei.iterations
        )
