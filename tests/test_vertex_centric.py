"""Tests for the GAS vertex-centric engine and its programs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.vertex_centric import (
    GASEngine,
    PageRankProgram,
    TriangleCountProgram,
)
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.memory import edge_iterator


class TestTriangleProgram:
    def test_figure1(self, figure1):
        engine = GASEngine(figure1)
        values = engine.run(TriangleCountProgram())
        assert TriangleCountProgram.total_triangles(values) == 5
        assert engine.supersteps == 1

    def test_per_vertex_counts(self, figure1):
        values = GASEngine(figure1).run(TriangleCountProgram())
        # c (vertex 2) participates in 4 triangles.
        assert values[2] == 4.0

    def test_matches_edge_iterator(self, clustered_graph):
        values = GASEngine(clustered_graph).run(TriangleCountProgram())
        assert (TriangleCountProgram.total_triangles(values)
                == edge_iterator(clustered_graph).triangles)

    def test_work_metering(self, figure1):
        engine = GASEngine(figure1)
        engine.run(TriangleCountProgram())
        stats = engine.history[0]
        assert stats.active_vertices == figure1.num_vertices
        assert stats.edges_gathered == 2 * figure1.num_edges


class TestPageRank:
    def test_sums_to_one(self, clustered_graph):
        values = GASEngine(clustered_graph).run(PageRankProgram())
        assert values.sum() == pytest.approx(1.0, abs=1e-3)

    def test_matches_networkx(self, clustered_graph):
        import networkx as nx

        nxg = nx.Graph(list(clustered_graph.edges()))
        nxg.add_nodes_from(range(clustered_graph.num_vertices))
        expected = nx.pagerank(nxg, alpha=0.85, tol=1e-10)
        values = GASEngine(clustered_graph).run(PageRankProgram(tolerance=1e-9))
        for v in range(clustered_graph.num_vertices):
            assert values[v] == pytest.approx(expected[v], abs=2e-4)

    def test_ring_is_uniform(self):
        graph = generators.cycle_graph(10)
        values = GASEngine(graph).run(PageRankProgram())
        assert np.allclose(values, 0.1, atol=1e-4)

    def test_converges_and_deactivates(self, figure1):
        engine = GASEngine(figure1)
        engine.run(PageRankProgram(tolerance=1e-8))
        assert 1 < engine.supersteps < 200
        # Work shrinks as vertices converge and deactivate.
        assert engine.history[-1].active_vertices <= engine.history[0].active_vertices

    def test_damping_validation(self):
        with pytest.raises(ConfigurationError):
            PageRankProgram(damping=1.5)


class TestParallelEdgeIterator:
    def test_matches_serial(self, small_rmat_ordered):
        from repro.memory.parallel import parallel_edge_iterator

        serial = edge_iterator(small_rmat_ordered)
        parallel = parallel_edge_iterator(small_rmat_ordered, workers=2)
        assert parallel.triangles == serial.triangles
        assert parallel.cpu_ops == serial.cpu_ops

    def test_single_worker(self, figure1):
        from repro.memory.parallel import parallel_edge_iterator

        assert parallel_edge_iterator(figure1, workers=1).triangles == 5

    def test_stripes_partition_vertices(self, small_rmat_ordered):
        from repro.memory.parallel import stripe_bounds

        stripes = stripe_bounds(small_rmat_ordered, 4)
        covered = [v for lo, hi in stripes for v in range(lo, hi)]
        assert covered == list(range(small_rmat_ordered.num_vertices))

    def test_worker_validation(self, figure1):
        from repro.errors import ConfigurationError
        from repro.memory.parallel import stripe_bounds

        with pytest.raises(ConfigurationError):
            stripe_bounds(figure1, 0)

    def test_zero_edge_graph_single_stripe(self):
        from repro.graph.graph import Graph
        from repro.memory.parallel import parallel_edge_iterator, stripe_bounds

        empty = Graph(np.zeros(6, dtype=np.int64),
                      np.array([], dtype=np.int32))
        # No successor mass to balance: one full-range stripe, not five
        # empty ones.
        assert stripe_bounds(empty, 4) == [(0, empty.num_vertices)]
        assert parallel_edge_iterator(empty, workers=4).triangles == 0

    def test_more_workers_than_vertices(self, figure1):
        from repro.memory.parallel import parallel_edge_iterator, stripe_bounds

        stripes = stripe_bounds(figure1, figure1.num_vertices + 10)
        covered = [v for lo, hi in stripes for v in range(lo, hi)]
        assert covered == list(range(figure1.num_vertices))
        assert all(hi > lo for lo, hi in stripes)
        result = parallel_edge_iterator(figure1,
                                        workers=figure1.num_vertices + 10)
        assert result.triangles == 5
