"""Tests for the buffer manager."""

from __future__ import annotations

import pytest

from repro.errors import BufferError_
from repro.storage.buffer import BufferManager


def make_buffer(capacity: int):
    loads: list[int] = []

    def loader(pid: int):
        loads.append(pid)
        return [f"records-{pid}"]

    return BufferManager(capacity, loader), loads


class TestBasics:
    def test_miss_then_hit(self):
        buffer, loads = make_buffer(2)
        frame = buffer.get(3)
        assert frame.records == ["records-3"]
        buffer.get(3)
        assert loads == [3]
        assert buffer.hits == 1 and buffer.misses == 1

    def test_capacity_validation(self):
        with pytest.raises(BufferError_):
            BufferManager(0, lambda pid: [])

    def test_contains(self):
        buffer, _ = make_buffer(2)
        buffer.get(1)
        assert 1 in buffer
        assert 2 not in buffer


class TestEviction:
    def test_lru_evicts_oldest(self):
        buffer, loads = make_buffer(2)
        buffer.get(1)
        buffer.get(2)
        buffer.get(3)  # evicts 1
        assert 1 not in buffer and 2 in buffer and 3 in buffer
        assert buffer.evictions == 1

    def test_get_refreshes_recency(self):
        buffer, _ = make_buffer(2)
        buffer.get(1)
        buffer.get(2)
        buffer.get(1)  # 2 is now LRU
        buffer.get(3)
        assert 2 not in buffer and 1 in buffer

    def test_pinned_not_evicted(self):
        buffer, _ = make_buffer(2)
        buffer.get(1, pin=True)
        buffer.get(2)
        buffer.get(3)  # must evict 2, not pinned 1
        assert 1 in buffer and 3 in buffer

    def test_all_pinned_raises(self):
        buffer, _ = make_buffer(2)
        buffer.get(1, pin=True)
        buffer.get(2, pin=True)
        with pytest.raises(BufferError_):
            buffer.get(3)


class TestPinning:
    def test_pin_unpin_cycle(self):
        buffer, _ = make_buffer(2)
        buffer.get(1, pin=True)
        assert buffer.num_pinned == 1
        buffer.unpin(1)
        assert buffer.num_pinned == 0

    def test_nested_pins(self):
        buffer, _ = make_buffer(2)
        buffer.get(1, pin=True)
        buffer.pin(1)
        buffer.unpin(1)
        assert buffer.num_pinned == 1

    def test_over_unpin_raises(self):
        buffer, _ = make_buffer(2)
        buffer.get(1)
        with pytest.raises(BufferError_):
            buffer.unpin(1)

    def test_unpin_absent_raises(self):
        buffer, _ = make_buffer(2)
        with pytest.raises(BufferError_):
            buffer.unpin(9)

    def test_pin_absent_raises(self):
        buffer, _ = make_buffer(2)
        with pytest.raises(BufferError_):
            buffer.pin(9)


class TestInstallAndFlush:
    def test_install_external_load(self):
        buffer, loads = make_buffer(2)
        buffer.install(5, ["external"])
        assert buffer.get(5).records == ["external"]
        assert loads == []  # loader never invoked

    def test_flush_drops_unpinned_only(self):
        buffer, _ = make_buffer(3)
        buffer.get(1, pin=True)
        buffer.get(2)
        buffer.flush()
        assert 1 in buffer and 2 not in buffer

    def test_delta_in_pattern(self):
        """Descending external loads leave the next chunk's pages resident."""
        buffer, loads = make_buffer(4)
        buffer.get(0, pin=True)
        buffer.get(1, pin=True)  # internal chunk pinned
        for pid in (9, 8, 3, 2):  # external loads, descending
            buffer.get(pid)
        buffer.unpin(0)
        buffer.unpin(1)
        # Next chunk is pages 2-3: both must be hits.
        before = buffer.hits
        buffer.get(2, pin=True)
        buffer.get(3, pin=True)
        assert buffer.hits == before + 2
