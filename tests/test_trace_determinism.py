"""Determinism gate: simulated event traces are byte-identical per seed.

The sim-clock tracer records only scheduler-computed timestamps, so the
exported Chrome JSON must be a pure function of (workload, seed) — this
is what makes traces diffable artifacts.  Marked ``trace`` so the gate
can be selected on its own (``pytest -m trace``).
"""

from __future__ import annotations

import pytest

from repro.core.engine import triangulate_disk
from repro.graph.generators import rmat
from repro.obs import EventTracer, write_chrome_trace
from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy

pytestmark = pytest.mark.trace


def _trace_bytes(tmp_path, tag: str, *, fault_seed: int | None = None) -> bytes:
    graph = rmat(256, 1024, seed=7)
    tracer = EventTracer.sim()
    kwargs: dict = {}
    if fault_seed is not None:
        kwargs["fault_plan"] = FaultPlan(
            [FaultSpec(kind="latency", rate=0.4, delay=0.002),
             FaultSpec(kind="transient", rate=0.2, times=2)],
            seed=fault_seed,
        )
        kwargs["retry_policy"] = RetryPolicy(max_retries=6,
                                             backoff_base=1e-6)
    triangulate_disk(graph, buffer_ratio=0.2, page_size=512,
                     trace=tracer, **kwargs)
    path = write_chrome_trace(tmp_path / f"{tag}.json", tracer)
    return path.read_bytes()


def test_clean_sim_trace_is_byte_identical(tmp_path):
    first = _trace_bytes(tmp_path, "a")
    second = _trace_bytes(tmp_path, "b")
    assert first == second
    assert len(first) > 2  # not an empty export


def test_faulty_sim_trace_is_byte_identical_per_seed(tmp_path):
    first = _trace_bytes(tmp_path, "a", fault_seed=11)
    second = _trace_bytes(tmp_path, "b", fault_seed=11)
    assert first == second


def test_fault_seed_reaches_the_timeline(tmp_path):
    """Injected latency must actually land in the trace — otherwise the
    per-seed gate above would pass vacuously."""
    clean = _trace_bytes(tmp_path, "clean")
    faulty = _trace_bytes(tmp_path, "faulty", fault_seed=11)
    assert clean != faulty


def test_sim_trace_ignores_wall_clock_noise(tmp_path):
    """A sim tracer passed through the measuring pass drops every
    wall-clocked emission (buffer hits, fault sleeps) rather than
    recording nondeterministic timestamps."""
    graph = rmat(256, 1024, seed=7)
    tracer = EventTracer.sim()
    triangulate_disk(graph, buffer_ratio=0.2, page_size=512, trace=tracer)
    for event in tracer.events():
        assert event.track.startswith("sim/"), (
            f"wall-clocked event leaked into a sim trace: {event}"
        )
