"""Cross-subsystem consistency: independent paths must agree.

Each test ties together two subsystems that were built independently and
checks they tell the same story — the strongest regression net a
multi-substrate reproduction can have.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.vertex_centric import GASEngine, TriangleCountProgram
from repro.core import make_store, triangulate_disk
from repro.graph import datasets
from repro.graph.cores import degeneracy
from repro.graph.metrics import per_vertex_triangles
from repro.graph.ordering import apply_ordering
from repro.memory import count_cliques, edge_iterator
from repro.sim import CostModel
from repro.vcengine import DiskVCEngine, PageRankApp, ShardedGraph

COST = CostModel()


class TestTriangleAgreement:
    @pytest.mark.parametrize("name", ["LJ", "ORKUT"])
    def test_gas_engine_vs_disk_opt(self, name):
        graph, _ = apply_ordering(datasets.load(name), "degree")
        gas_values = GASEngine(graph).run(TriangleCountProgram())
        gas_total = TriangleCountProgram.total_triangles(gas_values)
        opt = triangulate_disk(make_store(graph, 1024), buffer_ratio=0.15,
                               cost=COST)
        assert gas_total == opt.triangles

    def test_gas_per_vertex_vs_metrics(self, clustered_graph):
        gas_values = GASEngine(clustered_graph).run(TriangleCountProgram())
        expected = per_vertex_triangles(clustered_graph)
        assert np.array_equal(gas_values.astype(np.int64), expected)

    def test_cliques_k3_equals_triangles(self, clustered_graph):
        assert (count_cliques(clustered_graph, 3).triangles
                == edge_iterator(clustered_graph).triangles)


class TestCostBoundConsistency:
    def test_ei_ops_within_degeneracy_bound(self, small_rmat):
        """Eq. 1: intersection cost is O(alpha * |E|); alpha <= degeneracy."""
        ops = edge_iterator(small_rmat).cpu_ops
        bound = degeneracy(small_rmat) * small_rmat.num_edges
        assert ops <= bound

    @pytest.mark.parametrize("name", ["LJ", "TWITTER"])
    def test_dataset_ops_within_degeneracy_bound(self, name):
        graph, _ = apply_ordering(datasets.load(name), "degree")
        ops = edge_iterator(graph).cpu_ops
        assert ops <= degeneracy(graph) * graph.num_edges

    def test_opt_io_at_least_one_graph_read(self, small_rmat_ordered):
        """No disk method can read less than the graph once (Eq. 6 floor)."""
        store = make_store(small_rmat_ordered, 256)
        result = triangulate_disk(store, buffer_ratio=0.15, cost=COST)
        assert result.pages_read + result.pages_buffered >= store.num_pages


class TestEngineRobustness:
    def test_vc_engines_pagerank_agree(self, clustered_graph):
        """The in-memory GAS engine and the disk PSW engine converge to
        the same PageRank vector."""
        from repro.baselines.vertex_centric import PageRankProgram

        gas = GASEngine(clustered_graph).run(PageRankProgram(tolerance=1e-9))
        sharded = ShardedGraph.build(clustered_graph, 3)
        psw = DiskVCEngine(sharded, page_size=512).run(
            PageRankApp(clustered_graph.degrees()), max_supersteps=200
        )
        assert np.allclose(gas, psw.values, atol=5e-4)

    def test_trace_replay_stability_across_datasets(self):
        """Replaying any dataset's trace at 6 cores is always faster
        than serial and never beats the CPU lower bound."""
        for name in ("LJ", "ORKUT"):
            graph, _ = apply_ordering(datasets.load(name), "degree")
            base = triangulate_disk(make_store(graph, 1024),
                                    buffer_ratio=0.15, cost=COST, cores=1)
            from repro.core import replay

            six = replay(base.extra["trace"], COST, cores=6, morphing=True)
            assert six.elapsed < base.elapsed
            cpu_floor = COST.cpu(base.extra["trace"].total_ops) / 6
            assert six.elapsed >= cpu_floor
