"""Tests for synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.metrics import global_clustering_coefficient


class TestFigure1:
    def test_shape(self, figure1):
        assert figure1.num_vertices == 8
        assert figure1.num_edges == 12

    def test_exact_triangles(self, figure1):
        from repro.memory import CollectSink, edge_iterator

        sink = CollectSink()
        edge_iterator(figure1, sink)
        expected = {(0, 1, 2), (2, 3, 5), (3, 4, 5), (2, 5, 6), (2, 6, 7)}
        assert set(sink.triangles) == expected


class TestDeterministicGraphs:
    def test_complete_graph_triangles(self):
        from repro.memory import edge_iterator

        graph = generators.complete_graph(8)
        assert graph.num_edges == 28
        assert edge_iterator(graph).triangles == 56  # C(8,3)

    def test_cycle_triangle_free(self):
        from repro.memory import edge_iterator

        assert edge_iterator(generators.cycle_graph(10)).triangles == 0

    def test_triangle_cycle(self):
        from repro.memory import edge_iterator

        assert edge_iterator(generators.cycle_graph(3)).triangles == 1

    def test_star_triangle_free(self):
        from repro.memory import edge_iterator

        assert edge_iterator(generators.star_graph(30)).triangles == 0

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            generators.cycle_graph(2)


class TestRandomModels:
    def test_erdos_renyi_edge_count(self):
        graph = generators.erdos_renyi(100, 300, seed=1)
        assert graph.num_vertices == 100
        assert graph.num_edges == 300

    def test_erdos_renyi_too_many_edges(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi(4, 10)

    def test_erdos_renyi_deterministic(self):
        g1 = generators.erdos_renyi(50, 100, seed=9)
        g2 = generators.erdos_renyi(50, 100, seed=9)
        assert g1 == g2

    def test_rmat_deterministic(self):
        assert generators.rmat(128, 500, seed=2) == generators.rmat(128, 500, seed=2)

    def test_rmat_vertex_bound(self):
        graph = generators.rmat(100, 400, seed=3)
        assert graph.num_vertices == 100

    def test_rmat_edge_count_close(self):
        graph = generators.rmat(256, 2000, seed=4)
        assert graph.num_edges >= 1600  # dedup loses some, not most

    def test_rmat_bad_probabilities(self):
        with pytest.raises(GraphError):
            generators.rmat(64, 100, probabilities=(0.5, 0.5, 0.5, 0.5))

    def test_rmat_skew(self):
        """Default R-MAT parameters produce a heavy-tailed degree spread."""
        graph = generators.rmat(512, 4000, seed=5)
        degrees = graph.degrees()
        assert degrees.max() > 4 * max(1, int(degrees.mean()))

    def test_barabasi_albert_degrees(self):
        graph = generators.barabasi_albert(200, 3, seed=6)
        assert graph.num_vertices == 200
        # every later vertex attaches with exactly `attach` edges
        assert graph.num_edges >= 3 * (200 - 3) - 3

    def test_barabasi_albert_validation(self):
        with pytest.raises(GraphError):
            generators.barabasi_albert(3, 5)


class TestWattsStrogatz:
    def test_lattice_structure(self):
        graph = generators.watts_strogatz(20, 4, 0.0)
        assert graph.num_edges == 40  # n * nearest / 2
        assert graph.has_edge(0, 1) and graph.has_edge(0, 2)

    def test_deterministic(self):
        a = generators.watts_strogatz(50, 4, 0.3, seed=5)
        b = generators.watts_strogatz(50, 4, 0.3, seed=5)
        assert a == b

    def test_rewiring_lowers_clustering(self):
        lattice = generators.watts_strogatz(300, 6, 0.0, seed=1)
        random_like = generators.watts_strogatz(300, 6, 1.0, seed=1)
        assert (global_clustering_coefficient(lattice)
                > global_clustering_coefficient(random_like) + 0.2)

    def test_edge_count_preserved_under_rewiring(self):
        graph = generators.watts_strogatz(100, 4, 0.5, seed=2)
        assert graph.num_edges == 200

    def test_validation(self):
        with pytest.raises(GraphError):
            generators.watts_strogatz(10, 3, 0.1)  # odd nearest
        with pytest.raises(GraphError):
            generators.watts_strogatz(4, 4, 0.1)
        with pytest.raises(GraphError):
            generators.watts_strogatz(20, 4, 1.5)


class TestHolmeKim:
    def test_deterministic(self):
        g1 = generators.holme_kim(100, 4, 0.5, seed=7)
        g2 = generators.holme_kim(100, 4, 0.5, seed=7)
        assert g1 == g2

    def test_triad_probability_validation(self):
        with pytest.raises(GraphError):
            generators.holme_kim(50, 3, 1.5)

    def test_clustering_increases_with_triad_probability(self):
        """The Figure 7c knob: clustering rises with triad probability."""
        low = generators.holme_kim(400, 5, 0.05, seed=8)
        high = generators.holme_kim(400, 5, 0.9, seed=8)
        assert (
            global_clustering_coefficient(high)
            > global_clustering_coefficient(low) + 0.1
        )

    def test_densities_comparable(self):
        low = generators.holme_kim(400, 5, 0.05, seed=8)
        high = generators.holme_kim(400, 5, 0.9, seed=8)
        assert abs(low.num_edges - high.num_edges) < 0.15 * low.num_edges
