"""End-to-end observability: the report agrees with the engines exactly.

The regression guard of the observability PR: for a small graph, the
report's device-read counters must equal the simulator's page-read count,
and the phase-attributed triangle counters must sum to the exact triangle
count cross-checked by :mod:`repro.verify`.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import make_store, triangulate_disk, triangulate_threaded
from repro.memory import edge_iterator
from repro.obs import RunReport, validate_report_dict
from repro.sim import CostModel
from repro.verify import verify_methods

PAGE_SIZE = 1024


@pytest.fixture(scope="module")
def instrumented_run(small_rmat_ordered):
    store = make_store(small_rmat_ordered, PAGE_SIZE)
    reference = edge_iterator(small_rmat_ordered)
    report = RunReport("e2e", meta={"dataset": "small_rmat"})
    result = triangulate_disk(store, buffer_ratio=0.15, cost=CostModel(),
                              cores=2, report=report,
                              ideal_cpu_ops=reference.cpu_ops)
    return report, result


class TestDiskEngineReport:
    def test_pages_read_matches_simulator(self, instrumented_run):
        report, result = instrumented_run
        counters = report.metrics_snapshot()["counters"]
        sim = result.extra["sim"]
        sim_reads = sum(t.device_reads for t in sim.iterations)
        assert counters["opt.pages_read"] == result.pages_read
        assert counters["sim.device_reads"] == sim_reads
        assert counters["opt.pages_read"] == sim_reads
        # Every device read is a buffer miss, and vice versa.
        assert counters["buffer.misses"] == sim_reads

    def test_triangle_phases_sum_to_exact_count(self, instrumented_run,
                                                small_rmat_ordered):
        report, result = instrumented_run
        counters = report.metrics_snapshot()["counters"]
        verification = verify_methods(small_rmat_ordered, page_size=PAGE_SIZE,
                                      buffer_pages=8, include_threaded=False)
        assert verification.consistent
        exact = verification.expected
        internal = counters.get("triangles{phase=internal}", 0)
        external = counters.get("triangles{phase=external}", 0)
        assert internal + external == exact
        assert result.triangles == exact
        assert counters["triangles{phase=total}"] == exact

    def test_span_tree_has_all_phases(self, instrumented_run):
        report, _result = instrumented_run
        run = report.spans.find("run-opt")
        assert run is not None
        iteration = run.child("iteration")
        assert iteration is not None
        for phase in ("fill", "identify-candidates", "external-triangulation",
                      "internal-triangulation"):
            assert iteration.child(phase) is not None, phase
        simulate_span = report.spans.find("simulate")
        assert simulate_span is not None
        assert simulate_span.sim_elapsed == pytest.approx(
            report.derived["elapsed_simulated"])

    def test_overhead_vs_ideal_derived(self, instrumented_run):
        report, result = instrumented_run
        ideal = report.derived["ideal_elapsed"]
        assert report.derived["overhead_vs_ideal"] == pytest.approx(
            result.elapsed / ideal)

    def test_report_is_schema_valid(self, instrumented_run):
        report, _result = instrumented_run
        validate_report_dict(json.loads(report.to_json()))

    def test_morph_events_counted_with_morphing(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        report = RunReport("morph")
        triangulate_disk(store, buffer_ratio=0.10, cost=CostModel(),
                         cores=4, morphing=True, serial=False, report=report)
        counters = report.metrics_snapshot()["counters"]
        assert counters["sim.morph.events"] > 0


class TestFig3aFromReportAlone:
    def test_elbow_overhead_reproduced(self):
        """Replaying the Fig. 3a config: overhead <= ~7% from the report."""
        from repro.experiments.common import prepared

        _graph, store, reference = prepared("LJ")
        report = RunReport("fig3a")
        triangulate_disk(store, buffer_ratio=0.15, cost=CostModel(), cores=1,
                         report=report, ideal_cpu_ops=reference.cpu_ops)
        assert report.derived["overhead_vs_ideal"] <= 1.07


class TestThreadedEngineReport:
    def test_ssd_counters_flow_into_report(self, tmp_path, small_rmat_ordered):
        store = make_store(small_rmat_ordered, PAGE_SIZE)
        report = RunReport("threaded")
        result = triangulate_threaded(store, tmp_path, buffer_pages=8,
                                      report=report)
        counters = report.metrics_snapshot()["counters"]
        assert counters["ssd.pages_read"] == result.pages_read
        assert counters["ssd.async_reads"] == result.pages_read
        histograms = report.metrics_snapshot()["histograms"]
        assert histograms["ssd.queue.depth"]["count"] == result.pages_read
        assert histograms["ssd.callback.latency"]["count"] == result.pages_read
        assert report.spans.find("iteration") is not None
        exact = edge_iterator(small_rmat_ordered).triangles
        assert result.triangles == exact


class TestCliReportFlow:
    def test_triangulate_writes_valid_report(self, tmp_path, figure1, capsys):
        from repro.graph.io import write_edge_list

        graph_path = tmp_path / "fig1.txt"
        write_edge_list(figure1, graph_path)
        out = tmp_path / "run.json"
        code = main(["triangulate", "--input", str(graph_path),
                     "--method", "opt", "--page-size", "128",
                     "--report", str(out)])
        assert code == 0
        assert "wrote run report" in capsys.readouterr().out
        payload = json.loads(out.read_text())
        validate_report_dict(payload)
        assert "overhead_vs_ideal" in payload["derived"]
        assert payload["metrics"]["counters"]["triangles{phase=total}"] == 5

    def test_report_run_pretty_prints(self, tmp_path, figure1, capsys):
        from repro.graph.io import write_edge_list

        graph_path = tmp_path / "fig1.txt"
        write_edge_list(figure1, graph_path)
        out = tmp_path / "run.json"
        assert main(["triangulate", "--input", str(graph_path),
                     "--method", "opt", "--page-size", "128",
                     "--report", str(out)]) == 0
        capsys.readouterr()
        assert main(["report", "--run", str(out)]) == 0
        text = capsys.readouterr().out
        assert "RunReport: opt" in text
        assert "overhead_vs_ideal" in text
        assert "span tree" in text

    def test_report_flag_for_in_memory_method(self, tmp_path, figure1, capsys):
        from repro.graph.io import write_edge_list

        graph_path = tmp_path / "fig1.txt"
        write_edge_list(figure1, graph_path)
        out = tmp_path / "mem.json"
        assert main(["triangulate", "--input", str(graph_path),
                     "--method", "edge-iterator", "--report", str(out)]) == 0
        payload = json.loads(out.read_text())
        validate_report_dict(payload)
        assert payload["metrics"]["counters"]["triangles{phase=total}"] == 5
