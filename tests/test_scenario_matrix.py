"""The generated Source × Kernel × Executor differential grid.

Every cell of the composition cube runs against every zoo member (plus
extra seeds of the random families) and must reproduce the brute-force
oracle's triangle listing *exactly* — not just the count — while
charging exactly the op total of the serial in-memory reference for the
same kernel (the conservation property: per-pair charges are
partition-independent, so executors and sources cannot change the
bill).  Invalid cells appear as explicit skips carrying the registry's
reason string, and :func:`repro.exec.compose` must refuse them with the
same reason.

The grid is *generated*: nothing here names an individual engine, so a
new axis member added to :mod:`repro.exec.registry` is swept on its
first test run with zero edits to this file.
"""

from __future__ import annotations

import ast
from functools import lru_cache
from pathlib import Path

import pytest

import repro
from repro.errors import ConfigurationError
from repro.exec import compose, iter_cells, registry, valid_cells
from repro.memory import CollectSink, canonical_triangles
from repro.verify import oracle_triangles

from tests import zoo

#: Small pages + tiny buffer so the disk source actually exercises
#: eviction on zoo-sized graphs.
PAGE_SIZE = 256
BUFFER_PAGES = 4
WORKERS = 2

#: Every cell of the cube, valid and invalid alike.
CELLS = list(iter_cells())

#: (member, seed) pairs: each zoo member once, plus two extra seeds of
#: every random family.
MEMBERS = [(name, 0) for name in zoo.zoo_names()] + [
    (name, seed) for name in zoo.SEEDED for seed in (1, 2)
]


@lru_cache(maxsize=None)
def _graph(member: str, seed: int):
    return zoo.build(member, seed)


@lru_cache(maxsize=None)
def _oracle(member: str, seed: int):
    return tuple(oracle_triangles(_graph(member, seed)))


@lru_cache(maxsize=None)
def _reference_ops(kernel: str, member: str, seed: int) -> int:
    """The serial in-memory op bill for *kernel* — what every cell owes."""
    engine = compose("memory", kernel, "serial", graph=_graph(member, seed))
    return engine.run().cpu_ops


@pytest.mark.matrix
@pytest.mark.parametrize("member,seed", MEMBERS,
                         ids=[f"{m}-s{s}" for m, s in MEMBERS])
@pytest.mark.parametrize("cell", CELLS, ids=[cell.id for cell in CELLS])
def test_cell_matches_oracle_and_conserves_ops(cell, member, seed):
    if not cell.valid:
        pytest.skip(f"invalid cell {cell.id}: {cell.reason}")
    graph = _graph(member, seed)
    engine = compose(cell.source, cell.kernel, cell.executor, graph=graph,
                     workers=WORKERS, page_size=PAGE_SIZE,
                     buffer_pages=BUFFER_PAGES)
    sink = CollectSink()
    result = engine.run(sink)
    listing = tuple(canonical_triangles(sink))
    assert listing == _oracle(member, seed), (
        f"{cell.id} on {member}/s{seed}: listing disagrees with the "
        "brute-force oracle")
    assert result.triangles == len(listing)
    assert result.cpu_ops == _reference_ops(cell.kernel, member, seed), (
        f"{cell.id} on {member}/s{seed}: op charge not conserved across "
        "the executor/source axes")
    assert result.extra["cell"] == cell.id


def test_grid_covers_the_full_cube():
    """Shape invariants: the grid is the whole cube, reasons are total."""
    expected = (len(registry.SOURCES) * len(registry.KERNELS)
                * len(registry.EXECUTORS))
    assert len(CELLS) == expected
    assert len({cell.id for cell in CELLS}) == expected
    for cell in CELLS:
        if cell.valid:
            assert cell.reason is None
        else:
            assert cell.reason, f"invalid cell {cell.id} has no reason"
    # The executable surface is comfortably past the floor the harness
    # promises (>= 30 executed cells).
    assert len(valid_cells()) * len(MEMBERS) >= 30


def test_compose_refuses_invalid_cells(figure1):
    """compose() fails loudly with the registry's own reason string."""
    invalid = [cell for cell in CELLS if not cell.valid]
    assert invalid, "the cube currently has invalid cells by design"
    for cell in invalid:
        with pytest.raises(ConfigurationError) as excinfo:
            compose(cell.source, cell.kernel, cell.executor, graph=figure1,
                    page_size=PAGE_SIZE, buffer_pages=BUFFER_PAGES)
        assert cell.reason in str(excinfo.value)


def test_unknown_axis_names_are_invalid_with_reasons():
    valid, reason = registry.cell_validity("memory", "no-such-kernel",
                                           "serial")
    assert not valid and "no-such-kernel" in reason
    valid, reason = registry.cell_validity("tape", "hash", "serial")
    assert not valid and "tape" in reason
    valid, reason = registry.cell_validity("memory", "hash", "quantum")
    assert not valid and "quantum" in reason


def test_cli_axis_choices_match_registry():
    """The triangulate --source/--kernel/--executor choices mirror the
    registry tables (the parser hardcodes them to stay import-light)."""
    import argparse

    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    tri = subparsers.choices["triangulate"]

    def choices(flag: str) -> set[str]:
        option = f"--{flag}"
        for action in tri._actions:
            if option in action.option_strings:
                return set(action.choices)
        raise AssertionError(f"triangulate has no {option} flag")

    assert choices("source") == set(registry.SOURCES)
    assert choices("kernel") == set(registry.KERNELS)
    assert choices("executor") == set(registry.EXECUTORS)
    assert "compose" in choices("method")


def test_registered_entry_points_resolve():
    """Every registry key names a real public function on disk, so the
    engine-composition lint rule's allowlist cannot rot."""
    package_root = Path(repro.__file__).parent
    for key in sorted(registry.REGISTERED_ENTRY_POINTS):
        package_path, _, func_name = key.partition("::")
        assert func_name and not func_name.startswith("_"), key
        source_file = package_root / package_path
        assert source_file.is_file(), f"{key}: no such module"
        tree = ast.parse(source_file.read_text(encoding="utf-8"))
        names = {node.name for node in tree.body
                 if isinstance(node, ast.FunctionDef)}
        assert func_name in names, f"{key}: function not found"


def test_zoo_known_counts_match_oracle(graph_zoo):
    """The oracle reproduces every count known by construction."""
    for name, expected in zoo.KNOWN_COUNTS.items():
        assert len(oracle_triangles(graph_zoo(name))) == expected, name


#: Every data path the adaptive kernel's selector can take.
ADAPTIVE_BRANCHES = {"merge", "gallop", "bitmap", "disjoint", "empty"}


def test_skew_members_cover_every_adaptive_branch():
    """The skew zoo members drive the adaptive selector down every
    branch, observable through the labelled ``exec.branch.*`` counters,
    and the per-branch op split conserves the cell's ``exec.ops``."""
    from repro.obs import RunReport

    covered: set[str] = set()
    for member in zoo.SKEW_MEMBERS:
        graph = _graph(member, 0)
        report = RunReport(member)
        result = compose("memory", "adaptive", "serial", graph=graph).run(
            report=report)
        counters = report.registry.snapshot()["counters"]
        pairs_by_branch = {}
        ops_by_branch = {}
        for key, value in counters.items():
            name, _, labels = key.partition("{")
            if name not in ("exec.branch.pairs", "exec.branch.ops"):
                continue
            branch = next(part.split("=", 1)[1]
                          for part in labels.rstrip("}").split(",")
                          if part.startswith("branch="))
            assert branch in ADAPTIVE_BRANCHES, key
            target = (pairs_by_branch if name == "exec.branch.pairs"
                      else ops_by_branch)
            target[branch] = value
        exec_ops = counters[
            "exec.ops{executor=serial,kernel=adaptive,source=memory}"]
        assert sum(ops_by_branch.values()) == exec_ops == result.cpu_ops, (
            f"{member}: per-branch ops do not conserve exec.ops")
        assert result.extra["branches"] == {
            branch: [pairs_by_branch[branch], ops_by_branch[branch]]
            for branch in pairs_by_branch}
        covered.update(branch for branch, pairs in pairs_by_branch.items()
                       if pairs > 0)
    assert covered == ADAPTIVE_BRANCHES, (
        f"skew members leave adaptive branches unexercised: "
        f"{ADAPTIVE_BRANCHES - covered}")


@pytest.mark.parametrize("member", zoo.SKEW_MEMBERS)
def test_adaptive_beats_every_fixed_kernel_on_skew(member):
    """Acceptance: the measured Eq. 3 bill of the adaptive kernel is
    strictly below every fixed kernel's on the skewed members."""
    graph = _graph(member, 0)
    adaptive_ops = _reference_ops("adaptive", member, 0)
    for kernel in registry.KERNELS:
        if kernel == "adaptive":
            continue
        assert adaptive_ops < _reference_ops(kernel, member, 0), (
            f"{member}: adaptive ({adaptive_ops} ops) does not strictly "
            f"beat {kernel} ({_reference_ops(kernel, member, 0)} ops)")


def test_adaptive_branch_stats_conserved_across_executors():
    """The merged branch tally is identical for serial, threaded, and
    process execution — chunking cannot change selector decisions."""
    graph = _graph("rmat-heavy", 0)
    serial = compose("memory", "adaptive", "serial", graph=graph).run()
    threaded = compose("memory", "adaptive", "threaded", graph=graph,
                       workers=WORKERS).run()
    process = compose("shm", "adaptive", "process", graph=graph,
                      workers=WORKERS).run()
    assert serial.extra["branches"] == threaded.extra["branches"]
    assert serial.extra["branches"] == process.extra["branches"]


def test_adaptive_witness_in_verification_sweep():
    """repro verify cross-checks an adaptive composition cell."""
    names = [name for name, _runner in registry.verification_methods()]
    assert "exec:memory+adaptive+serial" in names
