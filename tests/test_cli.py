"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.io import read_edge_list


class TestGenerate:
    def test_generate_edge_list(self, tmp_path, capsys):
        out = tmp_path / "g.txt"
        code = main(["generate", "--model", "rmat", "--vertices", "64",
                     "--edges", "200", "--output", str(out)])
        assert code == 0
        graph = read_edge_list(out)
        assert graph.num_vertices <= 64
        assert "wrote" in capsys.readouterr().out

    def test_generate_binary(self, tmp_path):
        out = tmp_path / "g.bin"
        assert main(["generate", "--model", "holme-kim", "--vertices", "50",
                     "--attach", "3", "--output", str(out)]) == 0
        assert out.exists()


class TestTriangulate:
    @pytest.fixture()
    def graph_file(self, tmp_path, figure1):
        from repro.graph.io import write_edge_list

        path = tmp_path / "fig1.txt"
        write_edge_list(figure1, path)
        return path

    @pytest.mark.parametrize(
        "method", ["opt", "opt-vi", "mgt", "cc-seq", "graphchi",
                   "edge-iterator", "matrix"],
    )
    def test_methods_run(self, graph_file, capsys, method):
        code = main(["triangulate", "--input", str(graph_file),
                     "--method", method, "--page-size", "128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "triangles" in out
        assert "5" in out

    def test_dataset_input(self, capsys):
        code = main(["triangulate", "--dataset", "LJ", "--method",
                     "edge-iterator"])
        assert code == 0
        assert "triangles" in capsys.readouterr().out

    def test_unknown_dataset_fails_cleanly(self, capsys):
        code = main(["triangulate", "--dataset", "NOPE", "--method", "opt"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_trace_flag_writes_chrome_json(self, graph_file, tmp_path, capsys):
        import json

        from repro.obs import validate_chrome_trace

        trace_path = tmp_path / "run.trace.json"
        code = main(["triangulate", "--input", str(graph_file),
                     "--method", "opt", "--page-size", "128",
                     "--trace", str(trace_path)])
        assert code == 0
        assert "trace events" in capsys.readouterr().out
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        assert validate_chrome_trace(payload) == []
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] != "M"}
        assert "iteration" in names

    def test_trace_flag_rejected_for_inmemory_methods(self, graph_file,
                                                      tmp_path, capsys):
        code = main(["triangulate", "--input", str(graph_file),
                     "--method", "edge-iterator",
                     "--trace", str(tmp_path / "t.json")])
        assert code == 1
        assert "--trace" in capsys.readouterr().err

    def test_opt_threaded_method_runs(self, graph_file, tmp_path, capsys):
        trace_path = tmp_path / "threaded.trace.json"
        code = main(["triangulate", "--input", str(graph_file),
                     "--method", "opt-threaded", "--page-size", "128",
                     "--trace", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "elapsed (wall s)" in out
        assert trace_path.exists()


class TestTraceCommand:
    @pytest.fixture()
    def trace_file(self, tmp_path, figure1):
        from repro.graph.io import write_edge_list

        graph_path = tmp_path / "fig1.txt"
        write_edge_list(figure1, graph_path)
        trace_path = tmp_path / "run.trace.json"
        assert main(["triangulate", "--input", str(graph_path),
                     "--method", "opt", "--page-size", "128",
                     "--trace", str(trace_path)]) == 0
        return trace_path

    def test_summarizes_saved_trace(self, trace_file, capsys):
        capsys.readouterr()
        assert main(["trace", str(trace_file), "--width", "40"]) == 0
        out = capsys.readouterr().out
        assert "macro overlap ratio" in out
        assert "trace span" in out
        assert "sim/core0" in out

    def test_rejects_invalid_trace_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"traceEvents": "nope"}', encoding="utf-8")
        assert main(["trace", str(bad)]) == 1
        assert "not a valid Chrome trace" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.json")]) == 1
        assert "error" in capsys.readouterr().err


class TestLayoutCommand:
    def test_layout_packs_store(self, tmp_path, capsys):
        from repro.storage import GraphStore

        graph_path = tmp_path / "g.txt"
        assert main(["generate", "--model", "rmat", "--vertices", "100",
                     "--edges", "500", "--output", str(graph_path)]) == 0
        out_dir = tmp_path / "store"
        code = main(["layout", "--input", str(graph_path),
                     "--output", str(out_dir), "--page-size", "512"])
        assert code == 0
        store = GraphStore.load(out_dir)
        assert store.num_pages > 0
        assert "packed" in capsys.readouterr().out


class TestCliquesCommand:
    def test_cliques_on_complete_graph(self, tmp_path, capsys):
        from repro.graph.generators import complete_graph
        from repro.graph.io import write_edge_list

        path = tmp_path / "k6.txt"
        write_edge_list(complete_graph(6), path)
        assert main(["cliques", "--input", str(path), "--k", "4"]) == 0
        assert "15" in capsys.readouterr().out  # C(6, 4)


class TestVerifyCommand:
    def test_verify_agrees(self, tmp_path, capsys):
        from repro.graph.io import write_edge_list

        from repro.graph.generators import figure1_graph

        path = tmp_path / "fig1.txt"
        write_edge_list(figure1_graph(), path)
        code = main(["verify", "--input", str(path), "--page-size", "128",
                     "--buffer-pages", "4", "--skip-threaded"])
        assert code == 0
        assert "agree" in capsys.readouterr().out


class TestReportCommand:
    def test_report_assembles(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "table2_datasets.txt").write_text("table body")
        output = tmp_path / "report.md"
        code = main(["report", "--results-dir", str(results),
                     "--output", str(output)])
        assert code == 0
        assert "table body" in output.read_text()


class TestInfoCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("LJ", "ORKUT", "TWITTER", "UK", "YAHOO"):
            assert name in out

    def test_metrics(self, tmp_path, figure1, capsys):
        from repro.graph.io import write_edge_list

        path = tmp_path / "fig1.txt"
        write_edge_list(figure1, path)
        assert main(["metrics", "--input", str(path)]) == 0
        out = capsys.readouterr().out
        assert "clustering coefficient" in out


class TestProfileCommand:
    @pytest.fixture()
    def graph_file(self, tmp_path, figure1):
        from repro.graph.io import write_edge_list

        path = tmp_path / "fig1.txt"
        write_edge_list(figure1, path)
        return path

    def test_table_output_conserves_ops(self, graph_file, capsys):
        assert main(["profile", "--input", str(graph_file),
                     "--format", "table"]) == 0
        out = capsys.readouterr().out
        assert "attributed ops" in out and "triangles" in out

    def test_collapsed_output(self, graph_file, capsys):
        assert main(["profile", "--input", str(graph_file),
                     "--format", "collapsed"]) == 0
        out = capsys.readouterr().out
        assert "phase:" in out and "degree:" in out

    def test_speedscope_output_validates(self, graph_file, tmp_path,
                                         capsys):
        from repro.obs import validate_speedscope

        out_path = tmp_path / "p.speedscope.json"
        assert main(["profile", "--input", str(graph_file),
                     "--method", "opt", "--format", "speedscope",
                     "--output", str(out_path)]) == 0
        assert "speedscope" in capsys.readouterr().out
        doc = json.loads(out_path.read_text(encoding="utf-8"))
        assert validate_speedscope(doc) == []

    def test_bad_composition_fails_cleanly(self, graph_file, capsys):
        # A memory source cannot cross process boundaries — compose
        # rejects the pair and profile must surface it as exit 1.
        assert main(["profile", "--input", str(graph_file),
                     "--source", "memory", "--executor", "process"]) == 1
        assert "error" in capsys.readouterr().err


class TestPerfCommand:
    def _bench(self, tmp_path, name, elapsed):
        path = tmp_path / f"BENCH_{name}.json"
        payload = {"derived": {"elapsed_simulated": elapsed}}
        path.write_text(json.dumps(payload), encoding="utf-8")
        return path

    def test_ingest_trend_check_round_trip(self, tmp_path, capsys):
        index = tmp_path / "hist.jsonl"
        first = self._bench(tmp_path, "fig3a", 0.50)
        assert main(["perf", "--index", str(index), "ingest",
                     str(first), "--rev", "r1"]) == 0
        assert "1 ingested, 0 skipped" in capsys.readouterr().out
        # Re-ingesting the identical report is a skip, not a new row.
        assert main(["perf", "--index", str(index), "ingest",
                     str(first), "--rev", "r1"]) == 0
        assert "0 ingested, 1 skipped" in capsys.readouterr().out
        assert main(["perf", "--index", str(index), "trend"]) == 0
        assert "fig3a" in capsys.readouterr().out
        ok = self._bench(tmp_path, "fig3a_ok", 0.52)
        ok = ok.rename(tmp_path / "BENCH_fig3a.json.ok")
        fresh = self._bench(tmp_path, "fig3a", 0.52)
        assert main(["perf", "--index", str(index), "check",
                     str(fresh)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_check_flags_regression(self, tmp_path, capsys):
        index = tmp_path / "hist.jsonl"
        baseline = self._bench(tmp_path, "fig3a", 0.50)
        assert main(["perf", "--index", str(index), "ingest",
                     str(baseline), "--rev", "r1"]) == 0
        capsys.readouterr()
        slow = self._bench(tmp_path, "fig3a", 0.50 * 1.5)
        assert main(["perf", "--index", str(index), "check",
                     str(slow)]) == 1
        assert "regressed" in capsys.readouterr().out

    def test_check_without_history_is_ok(self, tmp_path, capsys):
        fresh = self._bench(tmp_path, "nohist", 0.1)
        assert main(["perf", "--index", str(tmp_path / "h.jsonl"),
                     "check", str(fresh)]) == 0
        assert "no-history" in capsys.readouterr().out
