"""Tests for the cost equations and Amdahl analysis."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    SpeedupRow,
    amdahl_bound,
    fit_parallel_fraction,
    ideal_cost,
    mgt_io_bound,
    opt_serial_cost,
    relative_elapsed_time,
)
from repro.core import make_store, triangulate_disk
from repro.memory import edge_iterator
from repro.sim import CostModel

COST = CostModel()


class TestAmdahl:
    def test_bound_limits(self):
        assert amdahl_bound(0.0, 6) == pytest.approx(1.0)
        assert amdahl_bound(1.0, 6) == pytest.approx(6.0)

    def test_paper_table5_values(self):
        """Reproduce the paper's reported upper bounds from its p values."""
        assert amdahl_bound(0.961, 6) == pytest.approx(5.03, abs=0.05)
        assert amdahl_bound(0.989, 6) == pytest.approx(5.70, abs=0.05)
        assert amdahl_bound(0.271, 6) == pytest.approx(1.30, abs=0.05)
        assert amdahl_bound(0.747, 6) == pytest.approx(2.68, abs=0.05)

    def test_fit_inverts_bound(self):
        for p in (0.3, 0.7, 0.95):
            speedup = amdahl_bound(p, 6)
            assert fit_parallel_fraction(speedup, 6) == pytest.approx(p, abs=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_bound(1.5, 4)
        with pytest.raises(ValueError):
            amdahl_bound(0.5, 0)
        with pytest.raises(ValueError):
            fit_parallel_fraction(2.0, 1)

    def test_speedup_row(self):
        row = SpeedupRow("OPT", "UK", 0.975, 6, 4.08)
        assert row.upper_bound == pytest.approx(amdahl_bound(0.975, 6))
        assert row.as_tuple()[0] == "OPT"


class TestCostEquations:
    def test_ideal_cost_formula(self):
        breakdown = ideal_cost(100, 50000, COST)
        assert breakdown.io_ops == pytest.approx(COST.c_effective * 100)
        assert breakdown.cpu_ops == 50000
        assert breakdown.total == pytest.approx(COST.c_effective * 100 + 50000)

    def test_opt_serial_cost_from_real_trace(self):
        from repro.graph import generators
        from repro.graph.ordering import apply_ordering

        graph, _ = apply_ordering(
            generators.holme_kim(1200, 12, 0.4, seed=11), "degree"
        )
        store = make_store(graph, 1024)
        result = triangulate_disk(store, buffer_ratio=0.15, cost=COST)
        trace = result.extra["trace"]
        breakdown = opt_serial_cost(trace, COST)
        ideal = ideal_cost(store.num_pages, edge_iterator(graph).cpu_ops, COST)
        # Section 3.3: the serial cost is the ideal plus c(Δex - Δin),
        # which must stay a small correction, not a multiple.
        assert breakdown.total < 1.5 * ideal.total
        assert breakdown.delta_in_ops >= 0

    def test_relative_elapsed(self):
        assert relative_elapsed_time(1.07, 1.0) == pytest.approx(1.07)
        with pytest.raises(ValueError):
            relative_elapsed_time(1.0, 0.0)

    def test_mgt_bound_formula(self):
        bound = mgt_io_bound(100, 10, COST)
        assert bound == pytest.approx((1 + math.ceil(100 / 10)) * COST.c * 100)
        with pytest.raises(ValueError):
            mgt_io_bound(100, 0, COST)

    def test_mgt_io_within_paper_bound(self, small_rmat_ordered):
        """Measured MGT read volume must respect Eq. 7's upper bound.

        The bound is evaluated at the run's *actual* iteration count
        (vertex-aligned chunking can add iterations over ceil(P/m)).
        """
        store = make_store(small_rmat_ordered, 256)
        result = triangulate_disk(store, plugin="mgt", buffer_pages=8, cost=COST)
        measured_io_ops = COST.c * result.pages_read
        bound = (1 + result.iterations) * COST.c * store.num_pages
        assert measured_io_ops <= bound
