"""Tests for the shared utilities: table formatting and op counters."""

from __future__ import annotations

from repro.util import OpCounter, format_table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [("a", 1), ("bbbb", 22)])
        lines = table.splitlines()
        assert lines[0].startswith("name")
        # Numeric column right-aligned: both rows end at the same column.
        assert len(lines[2]) == len(lines[3])

    def test_title_included(self):
        table = format_table(["x"], [(1,)], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_humanized_numbers(self):
        table = format_table(["n"], [(1234567,)])
        assert "1,234,567" in table

    def test_float_formatting(self):
        table = format_table(["f"], [(0.1234567,), (12345.6,), (12.345,)])
        assert "0.123" in table
        assert "12,346" in table
        assert "12.35" in table or "12.34" in table

    def test_zero(self):
        assert "0" in format_table(["z"], [(0.0,)])

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert len(table.splitlines()) == 2  # header + rule


class TestOpCounter:
    def test_add_ops_with_phases(self):
        counter = OpCounter()
        counter.add_ops(10, phase="internal")
        counter.add_ops(5, phase="external")
        counter.add_ops(3)
        assert counter.cpu_ops == 18
        assert counter.per_phase == {"internal": 10, "external": 5}

    def test_reads_split_buffered(self):
        counter = OpCounter()
        counter.add_read(3)
        counter.add_read(2, buffered=True)
        assert counter.pages_read == 3
        assert counter.pages_buffered == 2

    def test_merge(self):
        a = OpCounter()
        a.add_ops(5, phase="x")
        a.add_read(1)
        b = OpCounter()
        b.add_ops(7, phase="x")
        b.add_write(2)
        b.triangles = 4
        a.merge(b)
        assert a.cpu_ops == 12
        assert a.per_phase == {"x": 12}
        assert a.pages_written == 2
        assert a.triangles == 4

    def test_snapshot(self):
        counter = OpCounter()
        counter.add_ops(1)
        snapshot = counter.snapshot()
        assert snapshot["cpu_ops"] == 1
        counter.add_ops(1)
        assert snapshot["cpu_ops"] == 1  # snapshot is a copy
