"""Tests for the disk-based vertex-centric engine (PSW model)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.builder import from_edges
from repro.vcengine import (
    ConnectedComponentsApp,
    DegreeApp,
    DiskVCEngine,
    PageRankApp,
    ShardedGraph,
)


@pytest.fixture(scope="module")
def two_components():
    # Two disjoint triangles plus an isolated vertex.
    return from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
                      num_vertices=7)


class TestSharding:
    def test_edges_partitioned_exactly_once(self, small_rmat):
        sharded = ShardedGraph.build(small_rmat, 4)
        assert sharded.total_edges() == 2 * small_rmat.num_edges
        # Each directed edge is in exactly the shard of its target.
        for shard in sharded.shards:
            lo, hi = sharded.interval_range(shard.interval)
            assert np.all((shard.targets >= lo) & (shard.targets < hi))

    def test_shards_sorted_by_source(self, small_rmat):
        sharded = ShardedGraph.build(small_rmat, 4)
        for shard in sharded.shards:
            assert np.all(np.diff(shard.sources) >= 0)

    def test_windows_cover_shard(self, small_rmat):
        sharded = ShardedGraph.build(small_rmat, 3)
        for shard in sharded.shards:
            covered = sum(
                len(shard.window(k)[0]) for k in range(sharded.num_intervals)
            )
            assert covered == shard.num_edges

    def test_window_sources_in_interval(self, small_rmat):
        sharded = ShardedGraph.build(small_rmat, 3)
        for shard in sharded.shards:
            for k in range(sharded.num_intervals):
                sources, _ = shard.window(k)
                lo, hi = sharded.interval_range(k)
                assert np.all((sources >= lo) & (sources < hi))

    def test_intervals_partition_vertices(self, small_rmat):
        sharded = ShardedGraph.build(small_rmat, 5)
        covered = []
        for k in range(sharded.num_intervals):
            lo, hi = sharded.interval_range(k)
            covered.extend(range(lo, hi))
        assert covered == list(range(small_rmat.num_vertices))

    def test_single_interval(self, figure1):
        sharded = ShardedGraph.build(figure1, 1)
        assert sharded.num_intervals == 1
        assert sharded.total_edges() == 2 * figure1.num_edges

    def test_validation(self, figure1):
        with pytest.raises(ConfigurationError):
            ShardedGraph.build(figure1, 0)


class TestEngineApps:
    @pytest.mark.parametrize("intervals", [1, 2, 4])
    def test_degree_app(self, small_rmat, intervals):
        sharded = ShardedGraph.build(small_rmat, intervals)
        engine = DiskVCEngine(sharded, page_size=512)
        result = engine.run(DegreeApp())
        degrees = small_rmat.degrees()
        assert np.array_equal(result.values.astype(np.int64), degrees)

    @pytest.mark.parametrize("intervals", [1, 3])
    def test_connected_components(self, two_components, intervals):
        sharded = ShardedGraph.build(two_components, intervals)
        engine = DiskVCEngine(sharded, page_size=512)
        result = engine.run(ConnectedComponentsApp())
        labels = result.values.astype(np.int64)
        assert set(labels[:3]) == {0}
        assert set(labels[3:6]) == {3}
        assert labels[6] == 6

    def test_components_match_networkx(self, clustered_graph):
        import networkx as nx

        sharded = ShardedGraph.build(clustered_graph, 4)
        result = DiskVCEngine(sharded, page_size=512).run(
            ConnectedComponentsApp()
        )
        nxg = nx.Graph(list(clustered_graph.edges()))
        nxg.add_nodes_from(range(clustered_graph.num_vertices))
        for component in nx.connected_components(nxg):
            labels = {int(result.values[v]) for v in component}
            assert len(labels) == 1

    def test_pagerank_matches_networkx(self, clustered_graph):
        import networkx as nx

        sharded = ShardedGraph.build(clustered_graph, 3)
        app = PageRankApp(clustered_graph.degrees())
        result = DiskVCEngine(sharded, page_size=512).run(app,
                                                          max_supersteps=200)
        nxg = nx.Graph(list(clustered_graph.edges()))
        nxg.add_nodes_from(range(clustered_graph.num_vertices))
        expected = nx.pagerank(nxg, alpha=0.85, tol=1e-10)
        for v in range(clustered_graph.num_vertices):
            assert result.values[v] == pytest.approx(expected[v], abs=5e-4)

    def test_io_metered_per_superstep(self, small_rmat):
        sharded = ShardedGraph.build(small_rmat, 4)
        engine = DiskVCEngine(sharded, page_size=512)
        result = engine.run(DegreeApp())
        # DegreeApp changes values in step 1; step 2 confirms convergence.
        assert result.supersteps == 2
        for step in result.history:
            assert step.pages_read > 0
            assert step.shard_pages_written > 0
            assert step.updates == small_rmat.num_vertices
        assert result.elapsed > 0

    def test_asynchronous_updates_accelerate_propagation(self):
        """Min-label flows through a path in one superstep (id order)."""
        path = from_edges([(i, i + 1) for i in range(20)])
        sharded = ShardedGraph.build(path, 2)
        result = DiskVCEngine(sharded, page_size=512).run(
            ConnectedComponentsApp()
        )
        # Asynchronous model: one working superstep + one to confirm.
        assert result.supersteps == 2
        assert np.all(result.values == 0)
