"""The attribution profiler: bucketing, conservation, determinism.

Three layers of guarantees:

* unit behavior of the table itself — bucket labels, scope caching,
  snapshot round-trips, merge algebra;
* **conservation** — per-bucket op totals sum exactly to each engine's
  Eq. 3 ``cpu_ops`` (the attribution never invents or drops a probe);
* **determinism** — the deterministic snapshot is byte-identical across
  repeat runs and across worker counts, for the threaded and the
  process-parallel engines alike (integer cells merge by summation, so
  scheduling cannot leak into the artifact).
"""

from __future__ import annotations

import json

import pytest

from repro.exec import compose
from repro.obs import (
    collapsed_text,
    degree_bucket,
    render_attribution,
    to_speedscope,
    validate_attribution_dict,
    validate_speedscope,
)
from repro.obs.attribution import (
    Attribution,
    bucket_for_length,
)


def _snapshot_bytes(attribution: Attribution) -> str:
    return json.dumps(attribution.snapshot(), sort_keys=True)


class TestBuckets:
    def test_small_degrees_get_own_buckets(self):
        assert degree_bucket(0) == "0"
        assert degree_bucket(1) == "1"
        assert degree_bucket(-3) == "0"

    def test_power_of_two_ranges(self):
        assert degree_bucket(2) == "2-3"
        assert degree_bucket(3) == "2-3"
        assert degree_bucket(4) == "4-7"
        assert degree_bucket(7) == "4-7"
        assert degree_bucket(8) == "8-15"
        assert degree_bucket(1023) == "512-1023"
        assert degree_bucket(1024) == "1024-2047"

    def test_none_is_unbucketed(self):
        assert degree_bucket(None) == "*"

    def test_bucket_for_length_matches_degree_bucket(self):
        for degree in list(range(0, 70)) + [100, 1000, 2 ** 20]:
            assert bucket_for_length(int(degree).bit_length()) == \
                degree_bucket(degree)


class TestTable:
    def test_scope_charges_accumulate(self):
        table = Attribution()
        scope = table.scope(phase="exec", kernel="hash", source="memory")
        scope.charge(5, 12, triangles=2)
        scope.charge(6, 8, triangles=1)
        scope.charge(1, 3)
        assert table.total_ops == 23
        assert table.total_triangles == 3
        assert table.total_pairs == 3
        cells = table.cells()
        assert [(c["bucket"], c["ops"]) for c in cells] == \
            [("1", 3), ("4-7", 20)]

    def test_charge_lengths_equals_per_pair_charges(self):
        per_pair = Attribution()
        scope = per_pair.scope(phase="p", kernel="k", source="s")
        bulk = Attribution()
        bulk_scope = bulk.scope(phase="p", kernel="k", source="s")
        counts: dict[int, list[int]] = {}
        for degree, ops, triangles in [(0, 0, 0), (1, 1, 0), (5, 9, 2),
                                       (6, 4, 0), (17, 30, 5)]:
            scope.charge(degree, ops, triangles=triangles)
            cell = counts.setdefault(int(degree).bit_length(), [0, 0, 0])
            cell[0] += 1
            cell[1] += ops
            cell[2] += triangles
        bulk_scope.charge_lengths(counts)
        assert _snapshot_bytes(per_pair) == _snapshot_bytes(bulk)

    def test_snapshot_round_trip(self):
        table = Attribution()
        table.scope(phase="a", kernel="k", source="s").charge(4, 10,
                                                              triangles=1)
        table.scope(phase="b", kernel="k", source="s").charge(None, 5)
        snapshot = table.snapshot()
        assert validate_attribution_dict(snapshot) == []
        rebuilt = Attribution.from_snapshot(snapshot)
        assert _snapshot_bytes(rebuilt) == json.dumps(snapshot,
                                                      sort_keys=True)

    def test_wall_seconds_excluded_from_deterministic_snapshot(self):
        table = Attribution()
        scope = table.scope(phase="a", kernel="k", source="s")
        scope.charge(4, 10)
        scope.charge_time(1.25)
        assert "seconds" not in table.snapshot()
        full = table.snapshot(deterministic=False)
        assert full["seconds"]
        assert table.seconds()[0]["seconds"] == pytest.approx(1.25)

    def test_merge_is_order_independent(self):
        parts = []
        for seed in range(3):
            part = Attribution()
            scope = part.scope(phase="p", kernel="k", source="s")
            for i in range(seed + 2):
                scope.charge(i + seed, 3 * i + 1, triangles=i % 2)
            parts.append(part)
        forward = Attribution()
        for part in parts:
            forward.merge(part)
        backward = Attribution()
        for part in reversed(parts):
            backward.merge_snapshot(part.snapshot())
        assert _snapshot_bytes(forward) == _snapshot_bytes(backward)

    def test_validator_catches_total_mismatch(self):
        table = Attribution()
        table.scope(phase="a", kernel="k", source="s").charge(4, 10)
        snapshot = table.snapshot()
        snapshot["totals"]["ops"] = 11
        assert any("ops" in error
                   for error in validate_attribution_dict(snapshot))

    def test_render_contains_cells_and_shares(self):
        table = Attribution()
        table.scope(phase="exec", kernel="hash",
                    source="memory").charge(4, 10, triangles=1)
        text = render_attribution(table)
        assert "exec" in text and "hash" in text and "4-7" in text
        assert "ops" in text


class TestCollapsedStacks:
    def test_collapsed_frames_are_prefixed(self):
        table = Attribution()
        table.scope(phase="exec", kernel="hash",
                    source="memory").charge(4, 10)
        stacks = table.collapsed()
        assert stacks == {
            ("phase:exec", "kernel:hash", "source:memory", "degree:4-7"): 10,
        }
        assert collapsed_text(stacks) == \
            "phase:exec;kernel:hash;source:memory;degree:4-7 10\n"

    def test_speedscope_document_validates(self):
        table = Attribution()
        scope = table.scope(phase="exec", kernel="hash", source="memory")
        scope.charge(4, 10, triangles=1)
        scope.charge(9, 7)
        doc = to_speedscope(table.collapsed(), name="unit")
        assert validate_speedscope(doc) == []
        profile = doc["profiles"][0]
        assert sum(weight for _stack, weight in
                   zip(profile["samples"], profile["weights"])
                   for weight in [weight]) == 17


@pytest.fixture(scope="module")
def rmat(seeded_graph):
    return seeded_graph("rmat", 400, 3000, seed=5)


class TestExecConservation:
    @pytest.mark.parametrize("executor", ["serial", "threaded"])
    def test_compose_conserves_and_matches_uninstrumented(self, rmat,
                                                          executor):
        engine = compose("memory", "hash", executor, graph=rmat, workers=3)
        table = Attribution()
        result = engine.run(attribution=table)
        assert table.total_ops == result.cpu_ops
        assert table.total_triangles == result.triangles
        plain = engine.run()
        assert (plain.triangles, plain.cpu_ops) == \
            (result.triangles, result.cpu_ops)

    def test_process_executor_conserves(self, rmat):
        engine = compose("shm", "hash", "process", graph=rmat, workers=2)
        table = Attribution()
        result = engine.run(attribution=table)
        assert table.total_ops == result.cpu_ops
        assert table.total_triangles == result.triangles

    def test_serial_and_threaded_snapshots_identical(self, rmat):
        snapshots = []
        for executor, workers in [("serial", 1), ("threaded", 2),
                                  ("threaded", 4)]:
            engine = compose("memory", "hash", executor, graph=rmat,
                             workers=workers)
            table = Attribution()
            engine.run(attribution=table)
            snapshots.append(_snapshot_bytes(table))
        assert len(set(snapshots)) == 1

    @pytest.mark.parametrize("kernel", ["merge", "gallop", "bitmap"])
    def test_every_kernel_conserves(self, rmat, kernel):
        engine = compose("memory", kernel, "serial", graph=rmat)
        table = Attribution()
        result = engine.run(attribution=table)
        assert table.total_ops == result.cpu_ops
        cells = table.cells()
        assert all(cell["kernel"] == kernel for cell in cells)


class TestParallelDeterminism:
    def test_snapshots_byte_identical_across_worker_counts(self,
                                                           clustered_graph):
        from repro.parallel import triangulate_parallel

        snapshots = {}
        results = {}
        for workers in (1, 2, 4):
            table = Attribution()
            results[workers] = triangulate_parallel(
                clustered_graph, workers=workers, attribution=table)
            assert table.total_ops == results[workers].cpu_ops
            assert table.total_triangles == results[workers].triangles
            snapshots[workers] = _snapshot_bytes(table)
        assert len(set(snapshots.values())) == 1
        assert len({r.triangles for r in results.values()}) == 1

    def test_repeat_runs_byte_identical(self, clustered_graph):
        from repro.parallel import triangulate_parallel

        runs = []
        for _ in range(2):
            table = Attribution()
            triangulate_parallel(clustered_graph, workers=2,
                                 attribution=table)
            runs.append(_snapshot_bytes(table))
        assert runs[0] == runs[1]


class TestDiskDriver:
    def test_opt_phases_conserve_cpu_ops(self, rmat):
        from repro.core import make_store, triangulate_disk

        store = make_store(rmat, 1024)
        table = Attribution()
        result = triangulate_disk(store, attribution=table)
        # The disk driver charges candidate/external/internal ops; its
        # cpu_ops is exactly their sum (triangles are counted by the
        # output writer, not attributed per bucket).
        assert table.total_ops == result.cpu_ops
        phases = {cell["phase"] for cell in table.cells()}
        assert phases <= {"candidate", "external", "internal"}
        assert "internal" in phases
        plain = triangulate_disk(store)
        assert (plain.triangles, plain.cpu_ops) == \
            (result.triangles, result.cpu_ops)

    def test_disk_snapshot_repeatable(self, rmat):
        from repro.core import make_store, triangulate_disk

        store = make_store(rmat, 1024)
        runs = []
        for _ in range(2):
            table = Attribution()
            triangulate_disk(store, attribution=table)
            runs.append(_snapshot_bytes(table))
        assert runs[0] == runs[1]
