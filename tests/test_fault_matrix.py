"""The differential fault matrix: every engine × fault kind × seed.

The recovery layer's contract is binary — under any fault plan an engine
either lists the *exact* triangle set of the in-memory ``forward``
reference or raises the typed terminal error.  A silently wrong listing
is the one outcome these tests exist to rule out, so every cell of the
matrix compares canonical triangle sets, not just counts, and the
injection/recovery counters are asserted *exactly* against what the plan
says it did.
"""

from __future__ import annotations

import pytest

from repro.core import make_store, triangulate_disk
from repro.core.threaded import triangulate_threaded
from repro.errors import ConfigurationError, FaultExhaustedError
from repro.memory.base import CollectSink, canonical_triangles
from repro.memory.forward import forward
from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy

pytestmark = pytest.mark.fault_matrix

PAGE_SIZE = 512
PLUGINS = ["edge-iterator", "vertex-iterator", "mgt"]
GRAPH_SEEDS = [11, 22, 33]

#: One recoverable spec per kind.  ``times`` never exceeds the retry
#: budget below, so every fault heals and the answer must stay exact.
RECOVERABLE_SPECS = {
    "latency": FaultSpec("latency", rate=0.6, times=1, delay=0.001),
    "transient": FaultSpec("transient", rate=0.6, times=2),
    "torn": FaultSpec("torn", rate=0.6, times=2),
}

POLICY = RetryPolicy(max_retries=3, backoff_base=0.0001)


def _reference_set(graph):
    sink = CollectSink()
    forward(graph, sink)
    return set(canonical_triangles(sink))


@pytest.fixture(scope="module", params=GRAPH_SEEDS)
def matrix_graph(request, seeded_graph):
    return seeded_graph("rmat", 220, 1400, seed=request.param)


class TestSimulatedEngineMatrix:
    """triangulate_disk (all three plugins) under every sync fault kind."""

    @pytest.mark.parametrize("plugin", PLUGINS)
    @pytest.mark.parametrize("kind", sorted(RECOVERABLE_SPECS))
    def test_exact_triangles_under_recoverable_faults(
        self, matrix_graph, plugin, kind
    ):
        expected = _reference_set(matrix_graph)
        store = make_store(matrix_graph, PAGE_SIZE)
        spec = RECOVERABLE_SPECS[kind]
        plan = FaultPlan([spec], seed=7)
        affected = plan.affected_pages(kind, store.num_pages)
        assert affected, "fault rate too low to exercise anything"
        sink = CollectSink()
        triangulate_disk(store, plugin=plugin, buffer_pages=6, sink=sink,
                         fault_plan=plan, retry_policy=POLICY)
        assert set(canonical_triangles(sink)) == expected

        # The log must account for exactly what the plan injected: each
        # affected page misbehaves on its first `times` attempts, and the
        # fill guarantees every page is read at least once.
        counts = plan.log.counts()
        assert counts[f"inject:{kind}"] == spec.times * len(affected)
        if kind == "latency":
            assert "retry" not in counts
        else:
            assert counts["retry"] == spec.times * len(affected)
        assert "giveup" not in counts

    @pytest.mark.parametrize("plugin", PLUGINS)
    def test_terminal_fault_raises_typed_error(self, matrix_graph, plugin):
        store = make_store(matrix_graph, PAGE_SIZE)
        plan = FaultPlan(
            [FaultSpec("transient", pages=frozenset({0}), times=100)], seed=7
        )
        with pytest.raises(FaultExhaustedError) as excinfo:
            triangulate_disk(store, plugin=plugin, buffer_pages=6,
                             fault_plan=plan,
                             retry_policy=RetryPolicy(max_retries=2))
        assert excinfo.value.pid == 0
        assert plan.log.counts()["giveup"] == 1

    def test_combined_plan_still_exact(self, matrix_graph):
        expected = _reference_set(matrix_graph)
        store = make_store(matrix_graph, PAGE_SIZE)
        plan = FaultPlan(list(RECOVERABLE_SPECS.values()), seed=9)
        sink = CollectSink()
        triangulate_disk(store, buffer_pages=6, sink=sink, fault_plan=plan,
                         retry_policy=POLICY)
        assert set(canonical_triangles(sink)) == expected


class TestThreadedEngineMatrix:
    """triangulate_threaded under real injected faults, async kinds included."""

    TIMEOUT_POLICY = RetryPolicy(max_retries=3, backoff_base=0.0001,
                                 timeout=0.2)

    @pytest.mark.parametrize("kind", sorted(RECOVERABLE_SPECS))
    def test_exact_triangles_under_sync_faults(self, matrix_graph, tmp_path,
                                               kind):
        expected = _reference_set(matrix_graph)
        spec = RECOVERABLE_SPECS[kind]
        if kind == "latency":
            # Real sleeps: keep the injected wall time small.
            spec = FaultSpec("latency", rate=0.6, times=1, delay=0.0005)
        plan = FaultPlan([spec], seed=7)
        sink = CollectSink()
        triangulate_threaded(matrix_graph, tmp_path, buffer_pages=6,
                             page_size=PAGE_SIZE, sink=sink,
                             fault_plan=plan, retry_policy=POLICY)
        assert set(canonical_triangles(sink)) == expected
        assert "giveup" not in plan.log.counts()

    @pytest.mark.parametrize("kind", ["dropped_callback", "stall"])
    def test_exact_triangles_under_async_faults(self, matrix_graph, tmp_path,
                                                kind):
        expected = _reference_set(matrix_graph)
        delay = 0.5 if kind == "stall" else 0.0  # stall > timeout trips it
        spec = (FaultSpec(kind, pages=frozenset({0, 1}), times=1, delay=delay)
                if kind == "stall"
                else FaultSpec(kind, pages=frozenset({0, 1}), times=1))
        plan = FaultPlan([spec], seed=7)
        sink = CollectSink()
        triangulate_threaded(matrix_graph, tmp_path, buffer_pages=6,
                             page_size=PAGE_SIZE, sink=sink,
                             fault_plan=plan,
                             retry_policy=self.TIMEOUT_POLICY)
        assert set(canonical_triangles(sink)) == expected
        counts = plan.log.counts()
        # Every lost completion must have been reclaimed via the timeout
        # fallback — the sync re-read on the waiting thread.
        assert counts.get("timeout", 0) >= 1
        assert counts.get("fallback", 0) == counts.get("timeout", 0)

    def test_async_faults_require_timeout(self, matrix_graph, tmp_path):
        plan = FaultPlan([FaultSpec("dropped_callback", rate=0.5)], seed=1)
        with pytest.raises(ConfigurationError):
            triangulate_threaded(matrix_graph, tmp_path, buffer_pages=6,
                                 page_size=PAGE_SIZE, fault_plan=plan,
                                 retry_policy=RetryPolicy(max_retries=2))

    def test_terminal_fault_raises_typed_error(self, matrix_graph, tmp_path):
        plan = FaultPlan(
            [FaultSpec("transient", pages=frozenset({0}), times=100)], seed=7
        )
        with pytest.raises(FaultExhaustedError):
            triangulate_threaded(matrix_graph, tmp_path, buffer_pages=6,
                                 page_size=PAGE_SIZE, fault_plan=plan,
                                 retry_policy=RetryPolicy(max_retries=2))
