"""Property tests on the discrete-event scheduler's invariants."""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import from_edges
from repro.memory import edge_iterator
from repro.parallel import count_chunk, plan_chunks
from repro.sim import CostModel, ExternalRead, IterationTrace, RunTrace, simulate

cost = CostModel(page_read_time=100e-6, op_time=1e-6, channels=2,
                 candidate_op_factor=1.0)

delay_strategy = st.one_of(
    st.just(0.0),
    st.floats(min_value=0.0, max_value=0.005, allow_nan=False,
              allow_infinity=False),
)

iteration_strategy = st.builds(
    IterationTrace,
    fill_reads=st.integers(0, 6),
    fill_buffered=st.integers(0, 4),
    candidate_ops=st.integers(0, 200),
    internal_page_ops=st.lists(st.integers(0, 500), max_size=6),
    external_reads=st.lists(
        st.builds(
            ExternalRead,
            pid=st.integers(0, 50),
            cpu_ops=st.integers(0, 500),
            buffered=st.booleans(),
            delay=delay_strategy,
        ),
        max_size=8,
    ),
    fill_delay=delay_strategy,
)


def _without_delays(trace: RunTrace) -> RunTrace:
    """A clean copy of *trace*: same workload, zero injected delay."""
    return RunTrace(
        num_pages=trace.num_pages,
        m_in=trace.m_in,
        m_ex=trace.m_ex,
        sync_external=trace.sync_external,
        iterations=[
            IterationTrace(
                fill_reads=it.fill_reads,
                fill_buffered=it.fill_buffered,
                candidate_ops=it.candidate_ops,
                internal_page_ops=list(it.internal_page_ops),
                external_reads=[
                    ExternalRead(pid=r.pid, cpu_ops=r.cpu_ops,
                                 buffered=r.buffered)
                    for r in it.external_reads
                ],
                output_pages=it.output_pages,
            )
            for it in trace.iterations
        ],
    )

trace_strategy = st.builds(
    RunTrace,
    num_pages=st.just(64),
    m_in=st.integers(1, 4),
    m_ex=st.integers(1, 4),
    iterations=st.lists(iteration_strategy, max_size=4),
)


class TestSchedulerInvariants:
    @given(trace_strategy)
    @settings(max_examples=60, deadline=None)
    def test_elapsed_lower_bounds(self, trace):
        """Elapsed can never beat the device or a single CPU's work."""
        result = simulate(trace, cost, cores=1, serial=True)
        cpu_total = cost.cpu(trace.total_ops)
        assert result.elapsed >= cpu_total - 1e-12
        device_pages = trace.total_device_reads
        assert result.elapsed >= device_pages * cost.page_read_time / cost.channels - 1e-12

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_more_cores_never_slower(self, trace):
        previous = None
        for cores in (1, 2, 4, 8):
            elapsed = simulate(trace, cost, cores=cores, morphing=True).elapsed
            if previous is not None:
                assert elapsed <= previous + 1e-12
            previous = elapsed

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_morphing_never_slower(self, trace):
        on = simulate(trace, cost, cores=3, morphing=True).elapsed
        off = simulate(trace, cost, cores=3, morphing=False).elapsed
        assert on <= off + 1e-12

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_faster_device_never_slower(self, trace):
        slow = simulate(trace, cost, cores=2).elapsed
        fast = simulate(trace, cost.with_(channels=8), cores=2).elapsed
        assert fast <= slow + 1e-12

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_iteration_additivity(self, trace):
        """Per-iteration elapsed sums to the total (barrier semantics)."""
        result = simulate(trace, cost, cores=2)
        assert sum(t.elapsed for t in result.iterations) == result.elapsed

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_busy_time_conserved(self, trace):
        """Worker busy-seconds equal the trace's CPU work exactly."""
        result = simulate(trace, cost, cores=3, morphing=True)
        busy = sum(t.internal_busy + t.external_busy for t in result.iterations)
        assert abs(busy - cost.cpu(trace.total_ops)) < 1e-9

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_sync_mode_is_slowest(self, trace):
        """Synchronous external I/O never beats the overlapped pipeline.

        Holds when the asynchronous window is at least the channel count
        (a window of 1 cannot exploit device parallelism, while the sync
        model still streams at full bandwidth — the MGT streaming case).
        """
        trace.m_ex = max(trace.m_ex, cost.channels)
        trace.sync_external = False
        overlapped = simulate(trace, cost, cores=1, serial=True).elapsed
        trace.sync_external = True
        sync = simulate(trace, cost, cores=1, serial=True).elapsed
        assert sync >= overlapped - 1e-12


class TestFaultLatencyInvariants:
    """Injected fault delay can only slow the simulated run down."""

    @given(trace_strategy)
    @settings(max_examples=60, deadline=None)
    def test_faulty_never_beats_clean(self, trace):
        clean = _without_delays(trace)
        for serial in (True, False):
            faulty_elapsed = simulate(trace, cost, cores=1,
                                      serial=serial).elapsed
            clean_elapsed = simulate(clean, cost, cores=1,
                                     serial=serial).elapsed
            assert faulty_elapsed >= clean_elapsed - 1e-12

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_sync_mode_charges_delay_exactly(self, trace):
        """The blocking path serializes every injected second."""
        trace.sync_external = True
        clean = _without_delays(trace)
        faulty_elapsed = simulate(trace, cost, cores=1, serial=True).elapsed
        clean_elapsed = simulate(clean, cost, cores=1, serial=True).elapsed
        assert abs(
            (faulty_elapsed - clean_elapsed) - trace.total_fault_delay
        ) < 1e-9

    @given(trace_strategy, st.floats(min_value=1.0, max_value=4.0,
                                     allow_nan=False, allow_infinity=False))
    @settings(max_examples=40, deadline=None)
    def test_delay_monotone_in_magnitude(self, trace, factor):
        """Scaling every injected delay up never speeds the run up."""

        def scaled(f: float) -> RunTrace:
            out = _without_delays(trace)
            for base, it in zip(trace.iterations, out.iterations):
                it.fill_delay = base.fill_delay * f
                for src, dst in zip(base.external_reads, it.external_reads):
                    dst.delay = src.delay * f
            return out

        small = simulate(scaled(1.0), cost, cores=1, serial=True).elapsed
        large = simulate(scaled(factor), cost, cores=1, serial=True).elapsed
        assert large >= small - 1e-12

    @given(trace_strategy)
    @settings(max_examples=40, deadline=None)
    def test_clean_trace_has_zero_fault_delay(self, trace):
        assert _without_delays(trace).total_fault_delay == 0.0
        assert trace.total_fault_delay >= 0.0


# ---------------------------------------------------------------------------
# Eq. 3 op conservation under vertex-range chunking
# ---------------------------------------------------------------------------

MAX_CHUNK_VERTICES = 8
_CHUNK_EDGE_UNIVERSE = list(combinations(range(MAX_CHUNK_VERTICES), 2))

small_graph_strategy = st.builds(
    lambda mask: from_edges(
        [e for bit, e in enumerate(_CHUNK_EDGE_UNIVERSE) if mask >> bit & 1],
        num_vertices=MAX_CHUNK_VERTICES,
    ),
    st.integers(0, (1 << len(_CHUNK_EDGE_UNIVERSE)) - 1),
)


def _bounds_from_cuts(cuts: list[int], num_vertices: int):
    """Arbitrary cut points → a disjoint cover of [0, num_vertices)."""
    points = sorted({c % (num_vertices + 1) for c in cuts} | {0, num_vertices})
    return [(lo, hi) for lo, hi in zip(points, points[1:]) if lo < hi]


class TestChunkOpConservation:
    """Chunked intersection-op totals equal the serial engine's (Eq. 3).

    The parallel merge can only report faithful costs if the per-chunk
    op accounting partitions the serial total exactly — no op counted
    twice across a chunk boundary, none dropped.
    """

    @given(small_graph_strategy,
           st.lists(st.integers(0, MAX_CHUNK_VERTICES), max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_partitions_conserve_ops(self, graph, cuts):
        serial = edge_iterator(graph)
        bounds = _bounds_from_cuts(cuts, graph.num_vertices)
        total_ops = 0
        total_triangles = 0
        for lo, hi in bounds:
            triangles, ops, _ = count_chunk(graph.indptr, graph.indices,
                                            lo, hi)
            total_ops += ops
            total_triangles += triangles
        assert total_ops == serial.cpu_ops
        assert total_triangles == serial.triangles

    @given(small_graph_strategy, st.integers(1, 12))
    @settings(max_examples=60, deadline=None)
    def test_planner_partitions_conserve_ops(self, graph, chunks):
        serial = edge_iterator(graph)
        bounds = plan_chunks(graph, chunks)
        totals = [count_chunk(graph.indptr, graph.indices, lo, hi)
                  for lo, hi in bounds]
        assert sum(t[1] for t in totals) == serial.cpu_ops
        assert sum(t[0] for t in totals) == serial.triangles
