"""Tests for the approximate triangle counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approx import doulion, wedge_sampling
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.memory import edge_iterator


@pytest.fixture(scope="module")
def dense_graph(seeded_graph):
    return seeded_graph("holme_kim", 500, 8, 0.5, seed=13, ordering="natural")


class TestDoulion:
    def test_p_one_is_exact(self, dense_graph):
        exact = edge_iterator(dense_graph).triangles
        estimate = doulion(dense_graph, 1.0, seed=0)
        assert estimate.estimate == exact
        assert estimate.sampled_edges == dense_graph.num_edges

    def test_unbiased_across_seeds(self, dense_graph):
        exact = edge_iterator(dense_graph).triangles
        estimates = [doulion(dense_graph, 0.5, seed=s).estimate for s in range(12)]
        mean = float(np.mean(estimates))
        assert abs(mean - exact) < 0.25 * exact

    def test_sampling_reduces_work(self, dense_graph):
        full = edge_iterator(dense_graph).cpu_ops
        sampled = doulion(dense_graph, 0.3, seed=1)
        assert sampled.cpu_ops < 0.5 * full
        assert sampled.sampled_edges < 0.45 * dense_graph.num_edges

    def test_validation(self, dense_graph):
        with pytest.raises(ConfigurationError):
            doulion(dense_graph, 0.0)
        with pytest.raises(ConfigurationError):
            doulion(dense_graph, 1.5)

    def test_deterministic_per_seed(self, dense_graph):
        a = doulion(dense_graph, 0.4, seed=7)
        b = doulion(dense_graph, 0.4, seed=7)
        assert a.estimate == b.estimate


class TestWedgeSampling:
    def test_reasonable_accuracy(self, dense_graph):
        exact = edge_iterator(dense_graph).triangles
        estimate = wedge_sampling(dense_graph, 4000, seed=0)
        assert abs(estimate.estimate - exact) < 0.3 * exact

    def test_confidence_interval_brackets(self, dense_graph):
        exact = edge_iterator(dense_graph).triangles
        hits = 0
        for seed in range(10):
            estimate = wedge_sampling(dense_graph, 2000, seed=seed)
            lo, hi = estimate.confidence_interval
            hits += lo <= exact <= hi
        assert hits >= 8  # ~95% nominal coverage

    def test_error_shrinks_with_samples(self, dense_graph):
        small = wedge_sampling(dense_graph, 200, seed=3)
        large = wedge_sampling(dense_graph, 5000, seed=3)
        assert large.standard_error < small.standard_error

    def test_triangle_free(self):
        graph = generators.cycle_graph(40)
        estimate = wedge_sampling(graph, 500, seed=0)
        assert estimate.estimate == 0.0
        assert estimate.closed_fraction == 0.0

    def test_no_wedges(self):
        from repro.graph.builder import from_edges

        graph = from_edges([(0, 1)], num_vertices=2)
        assert wedge_sampling(graph, 100).estimate == 0.0

    def test_validation(self, dense_graph):
        with pytest.raises(ConfigurationError):
            wedge_sampling(dense_graph, 0)

    def test_complete_graph_fraction_one(self):
        graph = generators.complete_graph(12)
        estimate = wedge_sampling(graph, 500, seed=1)
        assert estimate.closed_fraction == 1.0
        assert estimate.estimate == pytest.approx(220)  # C(12, 3)
