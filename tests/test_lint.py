"""Tier-1 gates for the ``repro.lint`` static-analysis framework.

Five layers of coverage:

* **per-rule fixtures** — every registered rule has one true-positive
  and one true-negative fixture; a coverage meta-test fails when a new
  rule lands without them (project rules get multi-file fixture trees);
* **engine semantics** — suppressions, baselines, parse errors,
  deterministic output (including byte-identical output across
  ``--jobs`` values and hash seeds);
* **the call graph** — decorated functions, ``functools.partial``,
  bound-method aliases, registry-table dispatch, and recursion cycles
  all resolve to the right edges;
* **the live gate** — ``src/repro`` itself lints clean with an empty
  baseline and ``--strict-ignores`` (every accepted finding is a
  justified inline ignore, and every ignore still earns its keep);
* **the race demo** — a synthetic unguarded shared write injected into
  a copy of ``core/threaded.py`` is caught by the lockset rule, and
  stripping the justified ignores resurfaces the real barrier-safe
  writes they document.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.lint import ALL_RULES, Baseline, LintRunner, default_rules
from repro.lint.cli import run_lint
from repro.lint.engine import ProjectRule
from repro.lint.rules.lockset import LocksetRule

pytestmark = [pytest.mark.fast, pytest.mark.lint]

ROOT = Path(__file__).resolve().parents[1]

# ---------------------------------------------------------------------------
# fixtures: one true positive + one true negative per rule
# ---------------------------------------------------------------------------

FIXTURES = {
    "lockset": {
        "path": "repro/core/worker.py",
        "tp": """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._results = []
                    self._thread = threading.Thread(target=self._loop)

                def _loop(self):
                    self._results.append(1)

                def collect(self):
                    self._results.append(2)
        """,
        "tn": """
            import threading

            class Worker:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._results = []
                    self._thread = threading.Thread(target=self._loop)

                def _loop(self):
                    with self._lock:
                        self._results.append(1)

                def collect(self):
                    with self._lock:
                        self._results.append(2)
        """,
    },
    "sim-purity": {
        "path": "repro/sim/clock.py",
        "tp": """
            import time

            def now():
                return time.time()
        """,
        "tn": """
            import random

            def rng(seed):
                return random.Random(seed)
        """,
    },
    "obs-vocab": {
        "path": "repro/core/emit.py",
        "tp": """
            def emit(report):
                report.counter("totally.bogus.metric").inc()
        """,
        "tn": """
            def emit(report, name):
                report.counter("triangles").inc()
                report.counter(name).inc()  # dynamic: runtime check's job
        """,
    },
    "callback-io": {
        "path": "repro/core/cb.py",
        "tp": """
            import time

            def run(ssd):
                def on_read(records, page_id):
                    time.sleep(0.01)

                ssd.async_read(1, on_read, (1,))
        """,
        "tn": """
            import time

            def run(ssd):
                def on_read(records, page_id):
                    return len(records)

                ssd.async_read(1, on_read, (1,))
                time.sleep(0.01)  # main path may block freely
        """,
    },
    "error-types": {
        "path": "repro/core/errs.py",
        "tp": """
            def f(g):
                try:
                    g()
                except Exception:
                    raise RuntimeError("boom")
        """,
        "tn": """
            from repro.errors import StorageError

            def f(g):
                try:
                    g()
                except (OSError, StorageError) as exc:
                    raise StorageError("wrapped") from exc
        """,
    },
    "kwargs-threading": {
        "path": "repro/core/entry.py",
        "tp": """
            def triangulate_fake(graph, *, report=None, trace=None):
                return len(graph)
        """,
        "tn": """
            def triangulate_fake(graph, *, report=None, trace=None):
                if report is not None:
                    report.counter("triangles").inc()
                return run(graph, trace=trace)
        """,
    },
    "mutable-default": {
        "path": "repro/core/defaults.py",
        "tp": """
            def gather(items=[]):
                return items
        """,
        "tn": """
            def gather(items=None):
                return items or []
        """,
    },
    "set-iteration": {
        "path": "repro/core/orders.py",
        "tp": """
            def emit(report):
                for key in {"b", "a"}:
                    report.counter(key).inc()
        """,
        "tn": """
            def emit(report):
                for key in sorted({"b", "a"}):
                    report.counter(key).inc()
        """,
    },
    "shm-lifecycle": {
        "path": "repro/parallel/seg.py",
        "tp": """
            from multiprocessing import shared_memory

            def publish(payload):
                segment = shared_memory.SharedMemory(create=True,
                                                     size=len(payload))
                segment.buf[:len(payload)] = payload
                return segment.name
        """,
        "tn": """
            from multiprocessing import shared_memory

            def roundtrip(payload):
                segment = shared_memory.SharedMemory(create=True,
                                                     size=len(payload))
                try:
                    segment.buf[:len(payload)] = payload
                    return bytes(segment.buf[:len(payload)])
                finally:
                    segment.close()
                    segment.unlink()
        """,
    },
    "engine-composition": {
        "path": "repro/memory/edge_iterator.py",
        "tp": """
            from repro.memory.base import TriangulationResult

            def rogue_engine(graph):
                # Unregistered public entry point: returns a result the
                # scenario matrix will never cross-check.
                return TriangulationResult(triangles=0, cpu_ops=0)
        """,
        "tn": """
            from repro.memory.base import TriangulationResult

            def edge_iterator(graph) -> TriangulationResult:
                # Registered in repro.exec.registry.REGISTERED_ENTRY_POINTS.
                return _run(graph)

            def _run(graph) -> TriangulationResult:
                # Private helpers are exempt from registration.
                return TriangulationResult(triangles=0, cpu_ops=0)

            def degree_histogram(graph) -> dict:
                # Non-engine public functions are out of scope.
                return {}
        """,
    },
}


# Project rules see whole trees: each fixture is a dict of files whose
# entry point matches a real ``REGISTERED_ENTRY_POINTS`` key (the fixture
# path ``repro/core/engine.py`` maps to the package path
# ``core/engine.py``, so ``triangulate_disk`` resolves as an entry).

_ERRORS_SHIM = """
    class ReproError(Exception):
        pass

    class GraphError(ReproError):
        pass
"""

PROJECT_FIXTURES = {
    "instrumentation-plumbing": {
        "tp": {
            "repro/core/engine.py": """
                def triangulate_disk(graph, *, report=None):
                    return _plan(graph, report=report)

                def _plan(graph, *, report=None):
                    return _charge(graph)

                def _charge(graph, *, report=None):
                    return len(graph)
            """,
        },
        "tn": {
            "repro/core/engine.py": """
                def triangulate_disk(graph, *, report=None):
                    return _plan(graph, report=report)

                def _plan(graph, *, report=None):
                    if report is not None:
                        return _charge(graph, report=report)
                    return _charge(graph)

                def _charge(graph, *, report=None):
                    return len(graph)
            """,
        },
    },
    "exception-flow": {
        "tp": {
            "repro/errors.py": _ERRORS_SHIM,
            "repro/core/engine.py": """
                def triangulate_disk(graph, *, report=None):
                    return _next_page(graph)

                def _next_page(graph):
                    if not graph:
                        raise KeyError("no pages")
                    return graph[0]
            """,
        },
        "tn": {
            "repro/errors.py": _ERRORS_SHIM,
            "repro/core/engine.py": """
                from repro.errors import GraphError

                def triangulate_disk(graph, *, report=None):
                    try:
                        return _next_page(graph)
                    except LookupError as exc:
                        raise GraphError("empty graph") from exc

                def _next_page(graph):
                    if not graph:
                        raise KeyError("no pages")
                    return graph[0]
            """,
        },
    },
    "resource-lifecycle": {
        "tp": {
            "repro/core/engine.py": """
                from multiprocessing import shared_memory

                def triangulate_disk(graph, *, report=None):
                    segment = _publish(bytes(8))
                    return len(graph)

                def _publish(payload):
                    # lint: ignore[shm-lifecycle] ownership transfers out
                    segment = shared_memory.SharedMemory(create=True,
                                                         size=len(payload))
                    segment.buf[:len(payload)] = payload
                    return segment
            """,
        },
        "tn": {
            "repro/core/engine.py": """
                from multiprocessing import shared_memory

                def triangulate_disk(graph, *, report=None):
                    segment = _publish(bytes(8))
                    try:
                        return len(graph)
                    finally:
                        segment.close()
                        segment.unlink()

                def _publish(payload):
                    # lint: ignore[shm-lifecycle] ownership transfers out
                    segment = shared_memory.SharedMemory(create=True,
                                                         size=len(payload))
                    segment.buf[:len(payload)] = payload
                    return segment
            """,
        },
    },
}


def lint_source(tmp_path, relpath: str, source: str, rules=None, **kwargs):
    """Write one dedented fixture and run the engine over the tree."""
    return lint_tree(tmp_path, {relpath: source}, rules=rules, **kwargs)


def lint_tree(tmp_path, files: dict, rules=None, **kwargs):
    """Write a dict of ``relpath -> source`` fixtures and lint the tree."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    build = kwargs.pop("build_graph", False)
    runner = LintRunner(rules if rules is not None else default_rules(),
                        root=tmp_path, **kwargs)
    return runner.run([tmp_path], build_graph=build)


def test_every_rule_has_fixtures():
    project_ids = {cls.rule_id for cls in ALL_RULES
                   if issubclass(cls, ProjectRule)}
    file_ids = {cls.rule_id for cls in ALL_RULES} - project_ids
    assert set(FIXTURES) == file_ids
    assert set(PROJECT_FIXTURES) == project_ids
    for spec in FIXTURES.values():
        assert spec["tp"] and spec["tn"] and spec["path"]
    for spec in PROJECT_FIXTURES.values():
        assert spec["tp"] and spec["tn"]


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_true_positive(tmp_path, rule_id):
    spec = FIXTURES[rule_id]
    result = lint_source(tmp_path, spec["path"], spec["tp"])
    hits = [f for f in result.findings if f.rule_id == rule_id]
    assert hits, (f"{rule_id}: expected a finding in the TP fixture, got "
                  f"{[f.format() for f in result.findings]}")
    assert all(f.path == spec["path"] for f in hits)


@pytest.mark.parametrize("rule_id", sorted(FIXTURES))
def test_true_negative(tmp_path, rule_id):
    spec = FIXTURES[rule_id]
    result = lint_source(tmp_path, spec["path"], spec["tn"])
    hits = [f.format() for f in result.findings if f.rule_id == rule_id]
    assert not hits, f"{rule_id}: TN fixture flagged: {hits}"


@pytest.mark.parametrize("rule_id", sorted(PROJECT_FIXTURES))
def test_project_rule_true_positive(tmp_path, rule_id):
    result = lint_tree(tmp_path, PROJECT_FIXTURES[rule_id]["tp"])
    hits = [f for f in result.findings if f.rule_id == rule_id]
    assert hits, (f"{rule_id}: expected a finding in the TP tree, got "
                  f"{[f.format() for f in result.findings]}")


@pytest.mark.parametrize("rule_id", sorted(PROJECT_FIXTURES))
def test_project_rule_true_negative(tmp_path, rule_id):
    result = lint_tree(tmp_path, PROJECT_FIXTURES[rule_id]["tn"])
    hits = [f.format() for f in result.findings if f.rule_id == rule_id]
    assert not hits, f"{rule_id}: TN tree flagged: {hits}"


def test_project_finding_is_suppressible(tmp_path):
    """Inline ignores work on interprocedural findings too."""
    files = dict(PROJECT_FIXTURES["instrumentation-plumbing"]["tp"])
    source = textwrap.dedent(files["repro/core/engine.py"]).replace(
        "return _charge(graph)",
        "return _charge(graph)  # lint: ignore[instrumentation-plumbing]")
    files["repro/core/engine.py"] = source
    result = lint_tree(tmp_path, files)
    assert not [f for f in result.findings
                if f.rule_id == "instrumentation-plumbing"]
    assert result.suppressed >= 1


# ---------------------------------------------------------------------------
# lockset: closure-callback analysis
# ---------------------------------------------------------------------------

CLOSURE_TP = """
    def run(ssd, pages):
        seen = []

        def on_read(records, page_id):
            seen.append(page_id)

        for pid in pages:
            ssd.async_read(pid, on_read, (pid,))
        return seen
"""

CLOSURE_TN = """
    import threading

    def run(ssd, pages):
        lock = threading.Lock()
        seen = []

        def on_read(records, page_id):
            with lock:
                seen.append(page_id)

        for pid in pages:
            ssd.async_read(pid, on_read, (pid,))
        return seen
"""


def test_lockset_flags_unguarded_closure_write(tmp_path):
    result = lint_source(tmp_path, "repro/core/cl.py", CLOSURE_TP,
                         rules=[LocksetRule()])
    assert len(result.findings) == 1
    assert "'seen'" in result.findings[0].message


def test_lockset_accepts_guarded_closure_write(tmp_path):
    result = lint_source(tmp_path, "repro/core/cl.py", CLOSURE_TN,
                         rules=[LocksetRule()])
    assert result.findings == []


def test_lockset_catches_injected_race_in_threaded_copy(tmp_path):
    """A synthetic unguarded shared write in core/threaded.py is caught."""
    source = (ROOT / "src/repro/core/threaded.py").read_text(encoding="utf-8")
    anchor_decl = "    issue_lock = threading.Lock()"
    anchor_write = ("        with issue_lock:  "
                    "# Algorithm 9's atomic issue of the next request")
    assert anchor_decl in source and anchor_write in source
    injected = source.replace(
        anchor_decl, anchor_decl + "\n    completed_pages = []"
    ).replace(
        anchor_write,
        "        completed_pages.append(page_id)\n" + anchor_write,
    )
    result = lint_source(tmp_path, "repro/core/threaded.py", injected,
                         rules=[LocksetRule()])
    hits = [f for f in result.findings if f.rule_id == "lockset"]
    assert len(hits) == 1
    assert "'completed_pages'" in hits[0].message


def test_lockset_ignores_in_threaded_are_load_bearing(tmp_path):
    """Stripping the justified ignores resurfaces the documented writes."""
    source = (ROOT / "src/repro/core/threaded.py").read_text(encoding="utf-8")
    stripped = source.replace("# lint: ignore[lockset]", "#")
    result = lint_source(tmp_path, "repro/core/threaded.py", stripped,
                         rules=[LocksetRule()])
    assert len([f for f in result.findings if f.rule_id == "lockset"]) == 3


# ---------------------------------------------------------------------------
# lockset: process-worker closures (the parallel engine's spawn idiom)
# ---------------------------------------------------------------------------

PROCESS_CLOSURE_TP = """
    import multiprocessing as mp

    def run(chunks):
        done = []

        def worker(chunk):
            done.append(chunk)

        ctx = mp.get_context("fork")
        procs = [ctx.Process(target=worker, args=(c,)) for c in chunks]
        for p in procs:
            p.start()
        return done
"""

PROCESS_CLOSURE_TN = """
    import multiprocessing as mp
    import threading

    def run(chunks):
        lock = threading.Lock()
        done = []

        def worker(chunk):
            with lock:
                done.append(chunk)

        procs = [mp.Process(target=worker, args=(c,)) for c in chunks]
        for p in procs:
            p.start()
        return done
"""


def test_lockset_flags_process_worker_closure_write(tmp_path):
    """ctx.Process(target=...) closures get the same analysis as threads.

    Doubly wrong for processes: racy as written, and under fork the
    child's append mutates a copy the parent never observes.
    """
    result = lint_source(tmp_path, "repro/parallel/cl.py", PROCESS_CLOSURE_TP,
                         rules=[LocksetRule()])
    hits = [f for f in result.findings if f.rule_id == "lockset"]
    assert len(hits) == 1
    assert "'done'" in hits[0].message


def test_lockset_accepts_guarded_process_closure_write(tmp_path):
    result = lint_source(tmp_path, "repro/parallel/cl.py", PROCESS_CLOSURE_TN,
                         rules=[LocksetRule()])
    assert result.findings == []


def test_lockset_flags_process_entry_methods(tmp_path):
    """Class analysis treats mp.Process targets as a worker side."""
    result = lint_source(tmp_path, "repro/parallel/pool.py", """
        import multiprocessing as mp

        class Pool:
            def __init__(self):
                self._lock = mp.Lock()
                self._done = []
                self._proc = mp.Process(target=self._loop)

            def _loop(self):
                self._done.append(1)

            def collect(self):
                self._done.append(2)
    """, rules=[LocksetRule()])
    hits = [f for f in result.findings if f.rule_id == "lockset"]
    assert len(hits) == 2  # both unguarded sides


# ---------------------------------------------------------------------------
# shm-lifecycle: the parallel engine's justified ignore is load-bearing
# ---------------------------------------------------------------------------

def test_shm_ignore_in_parallel_shm_is_load_bearing(tmp_path):
    """Stripping the ownership-transfer ignore resurfaces the factory."""
    from repro.lint.rules.shm_lifecycle import ShmLifecycleRule

    source = (ROOT / "src/repro/parallel/shm.py").read_text(encoding="utf-8")
    stripped = source.replace("# lint: ignore[shm-lifecycle]", "#")
    result = lint_source(tmp_path, "repro/parallel/shm.py", stripped,
                         rules=[ShmLifecycleRule()])
    hits = [f for f in result.findings if f.rule_id == "shm-lifecycle"]
    assert len(hits) == 1


def test_shm_rule_skips_attach_only_calls(tmp_path):
    """Attachers (no create=True) only close; the owner unlinks."""
    from repro.lint.rules.shm_lifecycle import ShmLifecycleRule

    result = lint_source(tmp_path, "repro/parallel/att.py", """
        from multiprocessing import shared_memory

        def attach(name):
            segment = shared_memory.SharedMemory(name=name)
            return bytes(segment.buf[:8])
    """, rules=[ShmLifecycleRule()])
    assert result.findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

def test_suppression_on_same_line(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        def gather(items=[]):  # lint: ignore[mutable-default] fixture
            return items
    """)
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_on_line_above(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        # lint: ignore[mutable-default]
        def gather(items=[]):
            return items
    """)
    assert result.findings == []
    assert result.suppressed == 1


def test_suppression_without_rule_list_silences_all(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        def gather(items=[]):  # lint: ignore
            return items
    """)
    assert result.findings == []


def test_suppression_only_silences_named_rule(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        def gather(items=[]):  # lint: ignore[set-iteration]
            return items
    """)
    assert [f.rule_id for f in result.findings] == ["mutable-default"]


def test_unknown_rule_in_suppression_is_reported(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        x = 1  # lint: ignore[no-such-rule]
    """)
    assert [f.rule_id for f in result.findings] == ["bad-suppression"]
    assert "no-such-rule" in result.findings[0].message


def test_directive_inside_string_is_not_a_suppression(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", '''
        DOC = "use # lint: ignore[mutable-default] to suppress"
        def gather(items=[]):
            return items
    ''')
    assert [f.rule_id for f in result.findings] == ["mutable-default"]


# ---------------------------------------------------------------------------
# engine: parse errors, determinism, rule selection
# ---------------------------------------------------------------------------

def test_parse_error_becomes_finding(tmp_path):
    result = lint_source(tmp_path, "repro/core/broken.py", """
        def f(:
    """)
    assert [f.rule_id for f in result.findings] == ["parse-error"]


def test_unknown_rule_id_rejected():
    with pytest.raises(ValueError, match="no-such-rule"):
        default_rules({"no-such-rule"})


# ---------------------------------------------------------------------------
# call graph: resolution edge cases
# ---------------------------------------------------------------------------

def build_graph(tmp_path, files: dict):
    """Lint a fixture tree with no rules, returning only the call graph."""
    result = lint_tree(tmp_path, files, rules=[], build_graph=True)
    assert result.graph is not None
    return result.graph


def _edge_pairs(graph):
    return {(c.caller, c.callee, c.indirect) for c in graph.calls}


def test_callgraph_decorated_function_and_cycle(tmp_path):
    graph = build_graph(tmp_path, {"repro/core/fib.py": """
        import functools

        @functools.lru_cache(maxsize=None)
        def fib(n):
            return fib(n - 1) + helper(n)

        def helper(n):
            return fib(n - 2)
    """})
    fib = "repro/core/fib.py::fib"
    helper = "repro/core/fib.py::helper"
    assert "functools.lru_cache" in graph.functions[fib].decorators
    pairs = _edge_pairs(graph)
    assert (fib, helper, False) in pairs
    assert (helper, fib, False) in pairs
    assert (fib, fib, False) in pairs  # recursion
    # A call cycle must not hang reachability.
    assert graph.reachable([fib]) == {fib, helper}


def test_callgraph_functools_partial_is_indirect_edge(tmp_path):
    graph = build_graph(tmp_path, {"repro/core/part.py": """
        import functools

        def base(x, report=None):
            return x

        bound = functools.partial(base, 1)

        def run():
            return bound()
    """})
    pairs = _edge_pairs(graph)
    assert ("repro/core/part.py::<module>",
            "repro/core/part.py::base", True) in pairs
    assert ("repro/core/part.py::run",
            "repro/core/part.py::base", True) in pairs


def test_callgraph_bound_method_alias(tmp_path):
    graph = build_graph(tmp_path, {"repro/core/step.py": """
        class Stepper:
            def _advance(self):
                return 1

            def run(self):
                step = self._advance
                return step()
    """})
    assert ("repro/core/step.py::Stepper.run",
            "repro/core/step.py::Stepper._advance", True) \
        in _edge_pairs(graph)


def test_callgraph_registry_table_dispatch_fans_out(tmp_path):
    graph = build_graph(tmp_path, {"repro/exec/reg.py": """
        def engine_a(graph):
            return 1

        def engine_b(graph):
            return 2

        ENGINES = {"a": engine_a, "b": engine_b}

        def dispatch(key, graph):
            return ENGINES[key](graph)
    """})
    pairs = _edge_pairs(graph)
    assert ("repro/exec/reg.py::dispatch",
            "repro/exec/reg.py::engine_a", True) in pairs
    assert ("repro/exec/reg.py::dispatch",
            "repro/exec/reg.py::engine_b", True) in pairs


def test_callgraph_cross_module_and_entry_resolution(tmp_path):
    graph = build_graph(tmp_path, {
        "repro/core/engine.py": """
            from repro.core.planner import plan

            def triangulate_disk(graph, *, report=None):
                return plan(graph)
        """,
        "repro/core/planner.py": """
            def plan(graph):
                return len(graph)
        """,
    })
    entry = graph.resolve_entry("core/engine.py::triangulate_disk")
    assert entry is not None
    assert ("repro/core/engine.py::triangulate_disk",
            "repro/core/planner.py::plan", False) in _edge_pairs(graph)


def test_callgraph_exports_are_deterministic(tmp_path):
    files = {"repro/core/fib.py": FIXTURES["mutable-default"]["tp"]}
    first = build_graph(tmp_path / "a", files)
    second = build_graph(tmp_path / "b", files)
    assert json.dumps(first.to_json_dict(), sort_keys=True) \
        == json.dumps(second.to_json_dict(), sort_keys=True)
    assert first.to_dot() == second.to_dot()
    assert first.to_json_dict()["schema"] == "repro.lint/callgraph"


def test_findings_sorted_and_repeatable(tmp_path):
    for name, spec in list(FIXTURES.items())[:4]:
        target = tmp_path / spec["path"]
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(spec["tp"]), encoding="utf-8")
    runner = LintRunner(default_rules(), root=tmp_path)
    first = runner.run([tmp_path])
    second = runner.run([tmp_path])
    assert first.findings == second.findings
    assert first.findings == sorted(first.findings)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def test_baseline_absorbs_then_expires(tmp_path):
    result = lint_source(tmp_path, "repro/core/defaults.py",
                         FIXTURES["mutable-default"]["tp"])
    assert result.findings
    baseline = Baseline.from_findings(result.findings)

    new, baselined, expired = baseline.split(result.findings)
    assert (new, len(baselined), expired) == ([], len(result.findings), [])

    # Fix the tree: the baseline entry expires (fixed debt must be pruned).
    new, baselined, expired = baseline.split([])
    assert new == [] and baselined == []
    assert len(expired) == 1 and expired[0]["unused"] == 1


def test_baseline_round_trips_through_disk(tmp_path):
    result = lint_source(tmp_path, "repro/core/defaults.py",
                         FIXTURES["mutable-default"]["tp"])
    path = tmp_path / "baseline.json"
    Baseline.from_findings(result.findings).save(path)
    loaded = Baseline.load(path)
    assert len(loaded) == len(result.findings)
    assert loaded.split(result.findings)[0] == []


def test_baseline_rejects_foreign_json(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"schema": "something/else"}', encoding="utf-8")
    with pytest.raises(ConfigurationError):
        Baseline.load(path)


def test_missing_baseline_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "absent.json")) == 0


def test_fingerprint_survives_line_shift(tmp_path):
    spec = FIXTURES["mutable-default"]
    before = lint_source(tmp_path, spec["path"], spec["tp"])
    shifted = "# a new leading comment\n\n" + textwrap.dedent(spec["tp"])
    after = lint_source(tmp_path, spec["path"], shifted)
    assert before.findings[0].line != after.findings[0].line
    assert before.findings[0].fingerprint == after.findings[0].fingerprint


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON determinism, the live gate
# ---------------------------------------------------------------------------

def _cli(args):
    out = io.StringIO()
    code = run_lint(args, stdout=out)
    return code, out.getvalue()


def test_cli_exit_one_on_findings(tmp_path):
    target = tmp_path / "repro/core/defaults.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(FIXTURES["mutable-default"]["tp"]))
    code, text = _cli([str(tmp_path), "--root", str(tmp_path),
                       "--baseline", str(tmp_path / "absent.json")])
    assert code == 1
    assert "[mutable-default]" in text


def test_cli_write_baseline_then_clean_then_expired(tmp_path):
    target = tmp_path / "repro/core/defaults.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(FIXTURES["mutable-default"]["tp"]))
    baseline = tmp_path / "baseline.json"
    argv = [str(tmp_path), "--root", str(tmp_path), "--baseline", str(baseline)]

    assert _cli(argv + ["--write-baseline"])[0] == 0
    assert _cli(argv)[0] == 0  # baselined findings pass the gate

    target.write_text(textwrap.dedent(FIXTURES["mutable-default"]["tn"]))
    code, text = _cli(argv)  # fixed debt must be pruned: exit 1
    assert code == 1 and "expired" in text


def test_cli_exit_two_on_unknown_rule(tmp_path):
    code, _ = _cli([str(tmp_path), "--rules", "no-such-rule"])
    assert code == 2


def test_cli_list_rules():
    code, text = _cli(["--list-rules"])
    assert code == 0
    for cls in ALL_RULES:
        assert cls.rule_id in text


def test_json_output_byte_identical_across_hash_seeds(tmp_path):
    """Multi-file JSON output is stable even under hash randomization."""
    for rule_id in ("mutable-default", "error-types", "set-iteration"):
        spec = FIXTURES[rule_id]
        target = tmp_path / spec["path"]
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(spec["tp"]), encoding="utf-8")

    def run(seed):
        env = dict(os.environ, PYTHONHASHSEED=seed,
                   PYTHONPATH=str(ROOT / "src"))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path),
             "--root", str(tmp_path), "--format", "json",
             "--baseline", str(tmp_path / "absent.json")],
            capture_output=True, text=True, env=env, cwd=str(tmp_path),
        )
        assert proc.returncode == 1, proc.stderr
        return proc.stdout

    first, second = run("0"), run("1")
    assert first == second
    payload = json.loads(first)
    assert payload["schema"] == "repro.lint/report"
    assert len(payload["new"]) >= 3


def test_cli_jobs_output_byte_identical(tmp_path):
    """--jobs N parallelism must never reorder or change output."""
    for rule_id in ("mutable-default", "error-types", "set-iteration"):
        spec = FIXTURES[rule_id]
        target = tmp_path / spec["path"]
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(spec["tp"]), encoding="utf-8")
    argv = [str(tmp_path), "--root", str(tmp_path), "--format", "json",
            "--baseline", str(tmp_path / "absent.json")]
    outputs = {jobs: _cli(argv + ["--jobs", str(jobs)]) for jobs in (1, 4, 7)}
    assert outputs[1] == outputs[4] == outputs[7]
    assert outputs[1][0] == 1


def test_cli_graph_json_export(tmp_path):
    files = PROJECT_FIXTURES["instrumentation-plumbing"]["tp"]
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source), encoding="utf-8")
    code, text = _cli([str(tmp_path), "--root", str(tmp_path),
                       "--graph", "json"])
    assert code == 0  # pure export: findings never affect the exit code
    payload = json.loads(text)
    assert payload["schema"] == "repro.lint/callgraph"
    ids = {f["id"] for f in payload["functions"]}
    assert "repro/core/engine.py::triangulate_disk" in ids
    assert payload["edges"]


def test_cli_graph_dot_export(tmp_path):
    (tmp_path / "repro").mkdir(parents=True)
    (tmp_path / "repro/mod.py").write_text(
        "def f():\n    return g()\n\ndef g():\n    return 1\n",
        encoding="utf-8")
    code, text = _cli([str(tmp_path), "--root", str(tmp_path),
                       "--graph", "dot"])
    assert code == 0
    assert text.startswith("digraph callgraph {")
    assert '"repro/mod.py::f" -> "repro/mod.py::g"' in text


def test_strict_ignores_flags_unused_suppression(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        x = 1  # lint: ignore[lockset]
    """, strict_ignores=True)
    assert [f.rule_id for f in result.findings] == ["unused-suppression"]


def test_strict_ignores_keeps_working_suppressions(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        def gather(items=[]):  # lint: ignore[mutable-default] fixture
            return items
    """, strict_ignores=True)
    assert result.findings == []
    assert result.suppressed == 1


def test_strict_ignores_off_by_default(tmp_path):
    result = lint_source(tmp_path, "repro/core/s.py", """
        x = 1  # lint: ignore[lockset]
    """)
    assert result.findings == []


def test_cli_expire_baselines_prunes_stale_entries(tmp_path):
    target = tmp_path / "repro/core/defaults.py"
    target.parent.mkdir(parents=True)
    target.write_text(textwrap.dedent(FIXTURES["mutable-default"]["tp"]))
    baseline = tmp_path / "baseline.json"
    argv = [str(tmp_path), "--root", str(tmp_path),
            "--baseline", str(baseline)]
    assert _cli(argv + ["--write-baseline"])[0] == 0

    # Nothing stale yet: the gate passes and the file is untouched.
    before = baseline.read_text(encoding="utf-8")
    assert _cli(argv + ["--expire-baselines"])[0] == 0
    assert baseline.read_text(encoding="utf-8") == before

    # Fix the tree: the entry is stale; --expire-baselines exits 1 and
    # rewrites the baseline so the debt cannot be re-spent.
    target.write_text(textwrap.dedent(FIXTURES["mutable-default"]["tn"]))
    code, text = _cli(argv + ["--expire-baselines"])
    assert code == 1 and "1 stale baseline entry dropped" in text
    assert len(Baseline.load(baseline)) == 0
    assert _cli(argv + ["--expire-baselines"])[0] == 0  # now converged


def test_umbrella_cli_lint_subcommand(tmp_path, capsys):
    from repro.cli import main as repro_main

    code = repro_main(["lint", str(ROOT / "src" / "repro"),
                       "--root", str(ROOT),
                       "--baseline", str(tmp_path / "absent.json")])
    assert code == 0
    assert "0 new finding(s)" in capsys.readouterr().out


def test_repo_tree_lints_clean(tmp_path):
    """The gate: src/repro has zero new findings with an empty baseline,
    even with --strict-ignores (every inline ignore still suppresses a
    real finding — stale excuses are findings themselves)."""
    code, text = _cli([str(ROOT / "src" / "repro"), "--root", str(ROOT),
                       "--baseline", str(tmp_path / "absent.json"),
                       "--strict-ignores"])
    assert code == 0, f"lint gate failed:\n{text}"
    assert "0 new finding(s)" in text
