"""Tier-1 gates for the off-the-shelf static tooling (ruff, mypy).

These complement :mod:`repro.lint`: ruff owns generic correctness lints
(unused imports, undefined names), mypy type-checks the strict islands
(``sim/``, ``obs/``, ``errors.py``) declared in ``pyproject.toml``, and
``repro.lint`` owns the project-specific invariants neither can see.

Both tools are optional dependencies — the tests **skip** (not fail)
when they are not installed, so a minimal container still runs tier-1.
When present, they run against the committed configuration so a config
edit that silences everything shows up as a diff, not a surprise.
"""

from __future__ import annotations

import importlib.util
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.fast, pytest.mark.lint]

ROOT = Path(__file__).resolve().parents[1]

_HAS_RUFF = shutil.which("ruff") is not None
_HAS_MYPY = importlib.util.find_spec("mypy") is not None


@pytest.mark.skipif(not _HAS_RUFF, reason="ruff is not installed")
def test_ruff_clean():
    proc = subprocess.run(
        ["ruff", "check", "src/repro", "tests", "benchmarks"],
        capture_output=True, text=True, cwd=str(ROOT),
    )
    assert proc.returncode == 0, f"ruff findings:\n{proc.stdout}{proc.stderr}"


@pytest.mark.skipif(not _HAS_MYPY, reason="mypy is not installed")
def test_mypy_strict_islands():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy",
         "src/repro/sim", "src/repro/obs", "src/repro/errors.py"],
        capture_output=True, text=True, cwd=str(ROOT),
    )
    assert proc.returncode == 0, f"mypy findings:\n{proc.stdout}{proc.stderr}"


def test_tooling_config_is_committed():
    """The [tool.ruff]/[tool.mypy] sections exist even when tools don't."""
    config = (ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.ruff]" in config
    assert "[tool.mypy]" in config
    assert 'module = ["repro.sim.*", "repro.obs.*", "repro.errors"]' in config
