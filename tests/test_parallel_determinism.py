"""Determinism gates for the process-parallel engine.

The merge step promises that everything *semantic* about a run — the
triangle listing (including its emission order), the op counts, the
merged metric counters — is a pure function of the graph, independent
of worker count, chunk scheduling, and OS timing.  Only the explicitly
scheduling-dependent figures (``parallel.steals``, the wall-clock
gauges) may vary, and this module pins exactly that boundary.

It also proves the shared-memory lifecycle: segments are visible in
``/dev/shm`` only while a publisher holds them, and every code path —
success, worker crash, publisher context exit — leaves the directory
exactly as it found it.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.memory.base import CollectSink
from repro.obs import RunReport
from repro.parallel import CSRHandle, SharedCSR, triangulate_parallel

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (1, 2, 4)

#: Metric keys that legitimately depend on scheduling or configuration;
#: everything else in a merged snapshot must be byte-identical across
#: worker counts and runs.
SCHEDULING_DEPENDENT = {"parallel.steals", "parallel.workers",
                        "run.elapsed_wall"}


def canonical_snapshot(report: RunReport) -> dict:
    """Counters/gauges minus the documented scheduling-dependent keys."""
    snapshot = report.registry.snapshot()
    return {
        kind: {
            key: value
            for key, value in sorted(snapshot[kind].items())
            if key.split("{")[0] not in SCHEDULING_DEPENDENT
        }
        for kind in ("counters", "gauges")
    }


def run_once(graph, workers, chunks=None):
    sink = CollectSink()
    report = RunReport("determinism")
    result = triangulate_parallel(graph, workers=workers, chunks=chunks,
                                  sink=sink, report=report)
    return result, sink, report


class TestOutputDeterminism:
    def test_byte_identical_listing_across_worker_counts(self, clustered_graph):
        """Sorted listing AND raw emission order match byte-for-byte."""
        payloads = []
        for workers in WORKER_COUNTS:
            _, sink, _ = run_once(clustered_graph, workers)
            payloads.append({
                "emitted": [list(t) for t in sink.triangles],
                "sorted": [list(t) for t in sorted(sink.triangles)],
            })
        blobs = [json.dumps(p, sort_keys=True).encode() for p in payloads]
        assert blobs[0] == blobs[1] == blobs[2]

    def test_byte_identical_listing_across_repeat_runs(self, small_rmat):
        blobs = []
        for _ in range(2):
            _, sink, _ = run_once(small_rmat, 2)
            blobs.append(json.dumps(sink.triangles).encode())
        assert blobs[0] == blobs[1]

    def test_op_totals_identical_across_worker_counts(self, clustered_graph):
        results = [run_once(clustered_graph, workers)[0]
                   for workers in WORKER_COUNTS]
        assert len({r.cpu_ops for r in results}) == 1
        assert len({r.triangles for r in results}) == 1


class TestMetricsDeterminism:
    def test_merged_metrics_equal_across_worker_counts(self, clustered_graph):
        # Pin the chunk plan: the default count derives from the worker
        # count, and `parallel.chunks` honestly reports it.  With the plan
        # fixed, every remaining counter must be identical.
        snapshots = [canonical_snapshot(run_once(clustered_graph, w,
                                                 chunks=8)[2])
                     for w in WORKER_COUNTS]
        assert snapshots[0] == snapshots[1] == snapshots[2]
        # and the filtered view still carries the semantic counters
        assert "parallel.ops" in snapshots[0]["counters"]
        assert "triangles{phase=parallel}" in snapshots[0]["counters"]

    def test_merged_metrics_equal_across_repeat_runs(self, small_rmat):
        first = canonical_snapshot(run_once(small_rmat, 4)[2])
        second = canonical_snapshot(run_once(small_rmat, 4)[2])
        assert first == second

    def test_steal_counter_consistency(self, clustered_graph):
        """Steals vary run to run, but always equal the executed_by audit."""
        result, _, report = run_once(clustered_graph, 2)
        parallel = result.extra["parallel"]
        audited = sum(1 for i, wid in enumerate(parallel.executed_by)
                      if wid != i % parallel.workers)
        assert parallel.steals == audited
        snapshot = report.registry.snapshot()
        assert snapshot["counters"]["parallel.steals"] == audited


class TestSharedMemoryLifecycle:
    def graph(self):
        indptr = np.array([0, 2, 4, 6], dtype=np.int64)
        indices = np.array([1, 2, 0, 2, 0, 1], dtype=np.int64)
        return Graph(indptr, indices)

    def test_segments_visible_then_unlinked(self):
        shared = SharedCSR.publish(self.graph())
        names = [name.lstrip("/") for name in shared.segment_names]
        for name in names:
            assert os.path.exists(f"/dev/shm/{name}")
        shared.close()
        shared.unlink()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_context_manager_unlinks(self):
        with SharedCSR.publish(self.graph()) as shared:
            names = [name.lstrip("/") for name in shared.segment_names]
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")

    def test_attach_roundtrip_is_zero_copy_and_closes(self):
        publisher = SharedCSR.publish(self.graph())
        try:
            attached = SharedCSR.attach(publisher.handle)
            np.testing.assert_array_equal(attached.indptr, publisher.indptr)
            np.testing.assert_array_equal(attached.indices,
                                          publisher.indices)
            assert attached.graph().num_vertices == 3
            attached.close()  # attacher close must not unlink
            name = publisher.segment_names[0].lstrip("/")
            assert os.path.exists(f"/dev/shm/{name}")
            with pytest.raises(ConfigurationError):
                attached.unlink()  # only the owner may unlink
        finally:
            publisher.close()
            publisher.unlink()

    def test_views_are_read_only(self):
        with SharedCSR.publish(self.graph()) as shared:
            with pytest.raises(ValueError):
                shared.indptr[0] = 99

    def test_closed_handle_refuses_views(self):
        shared = SharedCSR.publish(self.graph())
        shared.close()
        with pytest.raises(ConfigurationError):
            _ = shared.indptr
        shared.close()  # idempotent
        shared.unlink()

    def test_attach_to_missing_segment_fails_cleanly(self):
        handle = CSRHandle(indptr_name="repro-nonexistent-a",
                           indices_name="repro-nonexistent-b",
                           indptr_len=1, indices_len=0)
        with pytest.raises(FileNotFoundError):
            SharedCSR.attach(handle)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_no_dev_shm_leak_after_runs(self, clustered_graph, workers):
        """The headline guarantee: /dev/shm is unchanged by a full run."""
        before = set(os.listdir("/dev/shm"))
        for _ in range(2):
            triangulate_parallel(clustered_graph, workers=workers)
        assert set(os.listdir("/dev/shm")) <= before

    def test_empty_graph_segments_roundtrip(self):
        """Zero-length arrays still publish (1-byte floor) and unlink."""
        empty = Graph(np.zeros(1, dtype=np.int64),
                      np.array([], dtype=np.int64))
        with SharedCSR.publish(empty) as shared:
            names = [name.lstrip("/") for name in shared.segment_names]
            attached = SharedCSR.attach(shared.handle)
            assert len(attached.indices) == 0
            assert attached.graph().num_vertices == 0
            attached.close()
        for name in names:
            assert not os.path.exists(f"/dev/shm/{name}")
