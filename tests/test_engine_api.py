"""Coverage for the engine-level public API and assorted edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    EdgeIteratorPlugin,
    buffer_pages_for_ratio,
    ideal_elapsed,
    make_store,
    replay,
    resolve_plugin,
    triangulate_disk,
)
from repro.distributed import ClusterSpec
from repro.graph.builder import GraphBuilder, from_edges
from repro.sim import CostModel, simulate
from repro.vcengine import DegreeApp, DiskVCEngine, ShardedGraph

COST = CostModel()


class TestEngineHelpers:
    def test_replay_matches_direct_simulation(self, small_rmat_ordered):
        base = triangulate_disk(small_rmat_ordered, page_size=256,
                                buffer_pages=6, cost=COST)
        trace = base.extra["trace"]
        replayed = replay(trace, COST, cores=3, morphing=True)
        direct = simulate(trace, COST, cores=3, morphing=True)
        assert replayed.elapsed == direct.elapsed
        assert replayed.triangles == base.triangles

    def test_resolve_plugin_passthrough(self):
        plugin = EdgeIteratorPlugin()
        assert resolve_plugin(plugin) is plugin

    def test_buffer_pages_minimum_two(self, figure1):
        store = make_store(figure1, 128)
        assert buffer_pages_for_ratio(store, 1e-9) == 2

    def test_ideal_elapsed_components(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        io_only = ideal_elapsed(store, 0, COST)
        assert io_only == pytest.approx(
            store.num_pages * COST.page_read_time / COST.channels
        )
        with_cpu = ideal_elapsed(store, 1000, COST)
        assert with_cpu == pytest.approx(io_only + 1000 * COST.op_time)

    def test_serial_flag_default_follows_cores(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        one = triangulate_disk(store, buffer_pages=6, cost=COST, cores=1)
        assert one.extra["sim"].serial
        six = triangulate_disk(store, buffer_pages=6, cost=COST, cores=6)
        assert not six.extra["sim"].serial

    def test_explicit_serial_override(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        result = triangulate_disk(store, buffer_pages=6, cost=COST,
                                  cores=6, serial=True)
        assert result.extra["sim"].cores == 1


class TestDegenerateGraphs:
    def test_single_vertex(self):
        graph = GraphBuilder(1).build()
        result = triangulate_disk(graph, page_size=128, buffer_pages=2)
        assert result.triangles == 0

    def test_single_edge(self):
        graph = from_edges([(0, 1)])
        result = triangulate_disk(graph, page_size=128, buffer_pages=2)
        assert result.triangles == 0
        assert result.iterations >= 1

    def test_two_disconnected_triangles(self):
        graph = from_edges([(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
        for plugin in ("edge-iterator", "vertex-iterator", "mgt"):
            result = triangulate_disk(graph, plugin=plugin, page_size=128,
                                      buffer_pages=2)
            assert result.triangles == 2

    def test_vcengine_empty_graph(self):
        graph = GraphBuilder(0).build()
        sharded = ShardedGraph.build(graph, 2)
        result = DiskVCEngine(sharded, page_size=256).run(DegreeApp())
        assert len(result.values) == 0

    def test_vcengine_isolated_vertices(self):
        graph = from_edges([(0, 1)], num_vertices=5)
        sharded = ShardedGraph.build(graph, 2)
        result = DiskVCEngine(sharded, page_size=256).run(DegreeApp())
        assert result.values.tolist() == [1.0, 1.0, 0.0, 0.0, 0.0]


class TestClusterSpecHelpers:
    def test_compute_time_uses_cores(self):
        spec = ClusterSpec(nodes=4, cores_per_node=8)
        assert spec.compute_time(8000) == pytest.approx(
            spec.cost.cpu(8000) / 8
        )
        assert spec.total_cores == 32

    def test_network_efficiency_scales(self):
        spec = ClusterSpec(nodes=10)
        assert spec.network_time(100, efficiency=0.5) == pytest.approx(
            2 * spec.network_time(100)
        )

    def test_disk_read_uses_channels(self):
        spec = ClusterSpec()
        assert spec.disk_read_time(spec.cost.channels) == pytest.approx(
            spec.cost.page_read_time
        )


class TestOrderingEdgeCases:
    def test_relabeled_graph_same_triangles(self, small_rmat):
        from repro.graph.ordering import apply_ordering
        from repro.memory import edge_iterator

        base = edge_iterator(small_rmat).triangles
        for ordering in ("degree", "random", "reverse-degree"):
            relabeled, mapping = apply_ordering(small_rmat, ordering, seed=4)
            assert edge_iterator(relabeled).triangles == base
            assert np.array_equal(np.sort(mapping),
                                  np.arange(small_rmat.num_vertices))
