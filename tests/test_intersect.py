"""Tests for the intersection kernels and their op accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intersect import (
    ADAPTIVE_BITMAP_SKEW,
    ADAPTIVE_GALLOP_SKEW,
    IntersectionKernel,
    adaptive_intersect,
    adaptive_intersect_detail,
    gallop_intersect,
    hash_intersect,
    intersect_count_ops,
    intersect_sorted,
    merge_intersect,
    resolve_kernel,
)

sorted_unique = st.lists(st.integers(0, 500), max_size=60).map(
    lambda xs: sorted(set(xs))
)


class TestIntersectSorted:
    def test_basic(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5, 9])
        assert intersect_sorted(a, b).tolist() == [3, 5]

    def test_empty_left(self):
        assert len(intersect_sorted(np.array([], dtype=np.int64), np.array([1]))) == 0

    def test_empty_right(self):
        assert len(intersect_sorted(np.array([1, 2]), np.array([], dtype=np.int64))) == 0

    def test_disjoint(self):
        assert len(intersect_sorted(np.array([1, 2]), np.array([3, 4]))) == 0

    def test_identical(self):
        a = np.array([2, 4, 6])
        assert intersect_sorted(a, a).tolist() == [2, 4, 6]


class TestOpsAccounting:
    def test_count_is_min(self):
        assert intersect_count_ops(3, 10) == 3
        assert intersect_count_ops(10, 3) == 3
        assert intersect_count_ops(0, 5) == 0

    def test_hash_ops_match_paper_measure(self):
        result, ops = hash_intersect([1, 2, 3], list(range(100)))
        assert result == [1, 2, 3]
        assert ops == 3  # min(|a|, |b|)


class TestReferenceKernels:
    @pytest.mark.parametrize("kernel", [merge_intersect, hash_intersect, gallop_intersect])
    def test_known_case(self, kernel):
        result, ops = kernel([1, 4, 6, 9], [2, 4, 9, 12])
        assert result == [4, 9]
        assert ops > 0

    @pytest.mark.parametrize("kernel", [merge_intersect, hash_intersect, gallop_intersect])
    def test_empty(self, kernel):
        result, _ = kernel([], [1, 2])
        assert result == []

    @given(sorted_unique, sorted_unique)
    def test_kernels_agree(self, a, b):
        expected = sorted(set(a) & set(b))
        for kernel in (merge_intersect, hash_intersect, gallop_intersect,
                       adaptive_intersect):
            result, _ = kernel(a, b)
            assert result == expected

    @given(sorted_unique, sorted_unique)
    def test_numpy_kernel_agrees(self, a, b):
        kernel = resolve_kernel(IntersectionKernel.NUMPY)
        result, ops = kernel(a, b)
        assert result == sorted(set(a) & set(b))
        assert ops == min(len(a), len(b))


class TestResolveKernel:
    def test_resolves_all_names(self):
        for kernel in IntersectionKernel:
            assert callable(resolve_kernel(kernel))
            assert callable(resolve_kernel(kernel.value))

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_kernel("bogus")


class TestAdaptiveEdgeCases:
    """Degenerate and extreme-skew shapes for the adaptive kernel."""

    def test_empty_lists(self):
        for a, b in ([], []), ([], [1, 2, 3]), ([5], []):
            common, ops, branch = adaptive_intersect_detail(
                np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
            assert len(common) == 0 and ops == 0 and branch == "empty"

    def test_singletons(self):
        common, ops, branch = adaptive_intersect_detail(
            np.array([7]), np.array([7]))
        assert common.tolist() == [7] and ops == 1 and branch == "merge"
        common, ops, _branch = adaptive_intersect_detail(
            np.array([7]), np.array([9]))
        assert len(common) == 0 and ops == 0

    def test_fully_overlapping_lists(self):
        a = np.arange(0, 100, 2)
        common, ops, branch = adaptive_intersect_detail(a, a.copy())
        assert common.tolist() == a.tolist()
        assert ops == len(a)  # pruning cannot help identical spans
        assert branch == "merge"

    def test_maximal_skew_one_against_100k(self):
        b = np.arange(100_000, dtype=np.int64)
        for needle, hits in ((50_000, True), (200_000, False)):
            a = np.array([needle], dtype=np.int64)
            common, ops, _branch = adaptive_intersect_detail(a, b)
            assert common.tolist() == ([needle] if hits else [])
            # |a| = 1 bounds the pruned min: at most one op, and a miss
            # outside b's span costs nothing.
            assert ops <= 1
            assert hits or ops == 0

    def test_disjoint_spans_charge_zero(self):
        common, ops, branch = adaptive_intersect_detail(
            np.arange(0, 50), np.arange(100, 200))
        assert len(common) == 0 and ops == 0 and branch == "disjoint"

    def test_gallop_band_threshold(self):
        a = np.array([10, 500_000], dtype=np.int64)
        b = np.arange(0, 2 * ADAPTIVE_GALLOP_SKEW + 20, dtype=np.int64)
        common, ops, branch = adaptive_intersect_detail(a, b)
        assert branch == "gallop" and common.tolist() == [10] and ops == 1

    def test_bitmap_band_threshold(self):
        a = np.array([10, 20, 30, 40], dtype=np.int64)
        # Pruned to a's span, b keeps 31 members: ratio 31 // 4 = 7,
        # inside [ADAPTIVE_BITMAP_SKEW, ADAPTIVE_GALLOP_SKEW).
        b = np.arange(0, 51, dtype=np.int64)
        common, ops, branch = adaptive_intersect_detail(a, b)
        assert ADAPTIVE_BITMAP_SKEW <= 31 // 4 < ADAPTIVE_GALLOP_SKEW
        assert branch == "bitmap"
        assert ops == len(common) == 4

    @given(sorted_unique, sorted_unique)
    def test_charge_never_exceeds_the_hash_min(self, a, b):
        _common, ops = adaptive_intersect(a, b)
        assert ops <= intersect_count_ops(len(a), len(b))


class TestAdaptiveScratchMask:
    """The engine binding's bitmap scratch mask survives reuse."""

    def _binding(self, num_vertices=200):
        from repro.exec import AdaptiveKernel

        return AdaptiveKernel().bind(num_vertices)

    def test_mask_reuse_across_calls(self):
        binding = self._binding()
        a = np.array([10, 20, 30, 40], dtype=np.int64)
        b = np.arange(0, 40 + 1, dtype=np.int64)  # bitmap band (ratio >= 4)
        first = binding.intersect(binding.prep(a), b)
        second = binding.intersect(binding.prep(a), b)
        assert first[0].tolist() == second[0].tolist() == a.tolist()
        assert first[1] == second[1]
        # The mask is unmarked after every call; stale marks would leak
        # phantom members into later pairs.
        assert not binding._mask.any()
        other = np.array([15, 25], dtype=np.int64)
        common, _ops = binding.intersect(binding.prep(other),
                                         np.arange(0, 41, dtype=np.int64))
        assert common.tolist() == [15, 25]

    def test_branch_tally_accumulates(self):
        binding = self._binding()
        binding.intersect(np.array([10, 20, 30, 40]), np.arange(41))
        binding.intersect(np.array([], dtype=np.int64), np.arange(5))
        stats = binding.stats()
        assert stats["bitmap"] == [1, 4]
        assert stats["empty"] == [1, 0]
        # stats() returns a copy, not a live view.
        stats["bitmap"][0] = 99
        assert binding.stats()["bitmap"] == [1, 4]


class TestAdaptiveMinChargeConservation:
    """Eq. 3 min-charge conservation vs. the hash reference, full zoo."""

    def test_adaptive_bill_bounded_by_hash_on_every_member(self):
        from repro.exec import compose
        from tests import zoo

        for name in zoo.zoo_names():
            graph = zoo.build(name)
            adaptive = compose("memory", "adaptive", "serial",
                               graph=graph).run()
            hash_run = compose("memory", "hash", "serial", graph=graph).run()
            assert adaptive.triangles == hash_run.triangles, name
            assert adaptive.cpu_ops <= hash_run.cpu_ops, (
                f"{name}: adaptive charged {adaptive.cpu_ops} ops, above "
                f"the hash reference's {hash_run.cpu_ops}")
            if name in zoo.SKEW_MEMBERS:
                assert adaptive.cpu_ops < hash_run.cpu_ops, name
