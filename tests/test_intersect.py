"""Tests for the intersection kernels and their op accounting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.intersect import (
    IntersectionKernel,
    gallop_intersect,
    hash_intersect,
    intersect_count_ops,
    intersect_sorted,
    merge_intersect,
    resolve_kernel,
)

sorted_unique = st.lists(st.integers(0, 500), max_size=60).map(
    lambda xs: sorted(set(xs))
)


class TestIntersectSorted:
    def test_basic(self):
        a = np.array([1, 3, 5, 7])
        b = np.array([3, 4, 5, 9])
        assert intersect_sorted(a, b).tolist() == [3, 5]

    def test_empty_left(self):
        assert len(intersect_sorted(np.array([], dtype=np.int64), np.array([1]))) == 0

    def test_empty_right(self):
        assert len(intersect_sorted(np.array([1, 2]), np.array([], dtype=np.int64))) == 0

    def test_disjoint(self):
        assert len(intersect_sorted(np.array([1, 2]), np.array([3, 4]))) == 0

    def test_identical(self):
        a = np.array([2, 4, 6])
        assert intersect_sorted(a, a).tolist() == [2, 4, 6]


class TestOpsAccounting:
    def test_count_is_min(self):
        assert intersect_count_ops(3, 10) == 3
        assert intersect_count_ops(10, 3) == 3
        assert intersect_count_ops(0, 5) == 0

    def test_hash_ops_match_paper_measure(self):
        result, ops = hash_intersect([1, 2, 3], list(range(100)))
        assert result == [1, 2, 3]
        assert ops == 3  # min(|a|, |b|)


class TestReferenceKernels:
    @pytest.mark.parametrize("kernel", [merge_intersect, hash_intersect, gallop_intersect])
    def test_known_case(self, kernel):
        result, ops = kernel([1, 4, 6, 9], [2, 4, 9, 12])
        assert result == [4, 9]
        assert ops > 0

    @pytest.mark.parametrize("kernel", [merge_intersect, hash_intersect, gallop_intersect])
    def test_empty(self, kernel):
        result, _ = kernel([], [1, 2])
        assert result == []

    @given(sorted_unique, sorted_unique)
    def test_kernels_agree(self, a, b):
        expected = sorted(set(a) & set(b))
        for kernel in (merge_intersect, hash_intersect, gallop_intersect):
            result, _ = kernel(a, b)
            assert result == expected

    @given(sorted_unique, sorted_unique)
    def test_numpy_kernel_agrees(self, a, b):
        kernel = resolve_kernel(IntersectionKernel.NUMPY)
        result, ops = kernel(a, b)
        assert result == sorted(set(a) & set(b))
        assert ops == min(len(a), len(b))


class TestResolveKernel:
    def test_resolves_all_names(self):
        for kernel in IntersectionKernel:
            assert callable(resolve_kernel(kernel))
            assert callable(resolve_kernel(kernel.value))

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            resolve_kernel("bogus")
