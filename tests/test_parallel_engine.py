"""Differential harness for the process-parallel engine.

The acceptance bar is *exact* agreement: ``opt-parallel`` with workers
in {1, 2, 4} and across chunk granularities must list the same triangle
set and charge the same total op count as the serial in-memory engines
(EdgeIterator≻, forward, compact-forward), the disk stack, and an
independent set-based brute force — on the seeded zoo from
``conftest.py`` and on the adversarial edge cases (empty graph, single
vertex, star, clique, disconnected triangles).

Workers beyond 1 run through real forked processes and shared-memory
CSR attach; on this single-core container that exercises correctness of
the decomposition and merge, not speed (the simulated engine owns the
speed-up curves).
"""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.core import triangulate_disk
from repro.errors import ConfigurationError, ParallelError
from repro.graph.builder import from_edges
from repro.graph.generators import complete_graph, star_graph
from repro.graph.graph import Graph
from repro.memory import compact_forward, edge_iterator, forward
from repro.memory.base import CollectSink, canonical_triangles
from repro.parallel import (
    default_chunk_count,
    plan_chunks,
    triangulate_parallel,
)

pytestmark = pytest.mark.parallel

WORKER_COUNTS = (1, 2, 4)


def parallel_triangles(graph, workers, **kwargs):
    sink = CollectSink()
    result = triangulate_parallel(graph, workers=workers, sink=sink, **kwargs)
    return result, canonical_triangles(sink)


def serial_reference(graph):
    sink = CollectSink()
    result = edge_iterator(graph, sink)
    return result, canonical_triangles(sink)


def brute_force_set(graph) -> list[tuple[int, int, int]]:
    """Independent oracle: adjacency-set triangle listing."""
    adjacency = [set(graph.neighbors(v).tolist())
                 for v in range(graph.num_vertices)]
    triangles = set()
    for u in range(graph.num_vertices):
        for v in adjacency[u]:
            if v <= u:
                continue
            for w in adjacency[u] & adjacency[v]:
                if w > v:
                    triangles.add((u, v, w))
    return sorted(triangles)


# ---------------------------------------------------------------------------
# the seeded zoo
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def zoo(request):
    """Named deterministic graphs spanning shapes the chunker must split."""
    seeded_graph = request.getfixturevalue("seeded_graph")
    figure1 = request.getfixturevalue("figure1")
    return {
        "figure1": figure1,
        "rmat": seeded_graph("rmat", 400, 3000, seed=5, ordering="natural"),
        "rmat_ordered": seeded_graph("rmat", 400, 3000, seed=5),
        "clustered": seeded_graph("holme_kim", 300, 6, 0.5, seed=6,
                                  ordering="natural"),
        "star": star_graph(32),
        "clique": complete_graph(12),
        "two_triangles": from_edges(
            [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)],
            num_vertices=6,
        ),
    }


class TestDifferentialZoo:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_matches_serial_engines(self, zoo, workers):
        """Triangle set + op total equal EdgeIterator≻ on every zoo graph."""
        for name, graph in zoo.items():
            serial, serial_set = serial_reference(graph)
            result, listed = parallel_triangles(graph, workers)
            assert listed == serial_set, (name, workers)
            assert result.triangles == serial.triangles, (name, workers)
            assert result.cpu_ops == serial.cpu_ops, (name, workers)

    def test_matches_forward_family(self, zoo):
        """Same sets as forward/compact-forward (different algorithms)."""
        for name, graph in zoo.items():
            _, listed = parallel_triangles(graph, 2)
            forward_sink = CollectSink()
            forward(graph, forward_sink)
            assert listed == canonical_triangles(forward_sink), name
            compact_sink = CollectSink()
            compact_forward(graph, compact_sink)
            assert listed == canonical_triangles(compact_sink), name

    def test_matches_brute_force(self, zoo):
        for name, graph in zoo.items():
            _, listed = parallel_triangles(graph, 4)
            assert listed == brute_force_set(graph), name

    @pytest.mark.parametrize("plugin",
                             ["edge-iterator", "vertex-iterator", "mgt"])
    def test_matches_disk_engines(self, zoo, plugin):
        """Same triangle set as the full disk pipeline, per plugin."""
        for name in ("figure1", "clustered", "two_triangles"):
            graph = zoo[name]
            disk_sink = CollectSink()
            disk = triangulate_disk(graph, plugin=plugin, page_size=256,
                                    buffer_pages=4, sink=disk_sink)
            result, listed = parallel_triangles(graph, 2)
            assert listed == canonical_triangles(disk_sink), (name, plugin)
            assert result.triangles == disk.triangles, (name, plugin)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    @pytest.mark.parametrize("chunks", [1, 2, 3, 16, 64])
    def test_chunk_granularity_is_invisible(self, zoo, workers, chunks):
        """Any chunk count lists the same set with the same op total."""
        graph = zoo["clustered"]
        serial, serial_set = serial_reference(graph)
        result, listed = parallel_triangles(graph, workers, chunks=chunks)
        assert listed == serial_set
        assert result.cpu_ops == serial.cpu_ops


class TestEdgeCases:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_empty_graph(self, workers):
        empty = Graph(np.zeros(1, dtype=np.int64),
                      np.array([], dtype=np.int64))
        result, listed = parallel_triangles(empty, workers)
        assert result.triangles == 0 and result.cpu_ops == 0
        assert listed == []

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_single_vertex(self, workers):
        single = Graph(np.zeros(2, dtype=np.int64),
                       np.array([], dtype=np.int64))
        result, _ = parallel_triangles(single, workers)
        assert result.triangles == 0

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_star_is_triangle_free(self, workers):
        result, listed = parallel_triangles(star_graph(16), workers)
        assert result.triangles == 0 and listed == []

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_clique(self, workers):
        n = 10
        result, listed = parallel_triangles(complete_graph(n), workers)
        expected = n * (n - 1) * (n - 2) // 6
        assert result.triangles == expected
        assert listed == sorted(combinations(range(n), 3))

    def test_more_workers_than_vertices(self, figure1):
        result, listed = parallel_triangles(figure1, 64)
        assert result.triangles == 5
        assert result.extra["workers"] <= figure1.num_vertices

    def test_worker_validation(self, figure1):
        with pytest.raises(ConfigurationError):
            triangulate_parallel(figure1, workers=0)

    def test_sim_clock_tracer_rejected(self, figure1):
        from repro.obs.trace import EventTracer

        with pytest.raises(ConfigurationError):
            triangulate_parallel(figure1, trace=EventTracer.sim())


class TestWorkQueue:
    def test_default_chunks_oversubscribe(self, figure1):
        assert default_chunk_count(figure1, 2) == min(
            figure1.num_vertices, 8)

    def test_plan_covers_vertex_range(self, zoo):
        for name, graph in zoo.items():
            for chunks in (1, 2, 5, 16):
                bounds = plan_chunks(graph, chunks)
                covered = [v for lo, hi in bounds for v in range(lo, hi)]
                assert covered == list(range(graph.num_vertices)), (
                    name, chunks)

    def test_every_chunk_is_executed_exactly_once(self, zoo):
        result = triangulate_parallel(zoo["clustered"], workers=4)
        parallel = result.extra["parallel"]
        assert len(parallel.executed_by) == len(parallel.chunk_bounds)
        assert all(0 <= wid < parallel.workers
                   for wid in parallel.executed_by)

    def test_steals_counted_against_round_robin_share(self, zoo):
        result = triangulate_parallel(zoo["clustered"], workers=2, chunks=8)
        parallel = result.extra["parallel"]
        expected_steals = sum(
            1 for index, wid in enumerate(parallel.executed_by)
            if wid != index % parallel.workers
        )
        assert parallel.steals == expected_steals
        assert result.extra["steals"] == expected_steals


class TestObsMerge:
    def test_metrics_fold_into_report(self, zoo):
        from repro.obs import RunReport

        graph = zoo["clustered"]
        serial = edge_iterator(graph)
        report = RunReport("parallel")
        triangulate_parallel(graph, workers=2, report=report)
        snapshot = report.registry.snapshot()
        assert snapshot["counters"]["parallel.ops"] == serial.cpu_ops
        assert (snapshot["counters"]["triangles{phase=parallel}"]
                == serial.triangles)
        assert snapshot["counters"]["parallel.chunks"] == len(
            plan_chunks(graph, default_chunk_count(graph, 2)))
        assert snapshot["gauges"]["parallel.workers"] == 2
        assert snapshot["gauges"]["run.elapsed_wall"] > 0

    def test_one_trace_track_per_worker(self, zoo):
        from repro.obs.trace import EventTracer

        tracer = EventTracer.wall()
        result = triangulate_parallel(zoo["clustered"], workers=4,
                                      trace=tracer)
        events = tracer.events()
        chunk_events = [e for e in events if e.name == "parallel.chunk"]
        tracks = {e.track for e in chunk_events}
        assert tracks == {f"parallel/w{wid}"
                          for wid in set(result.extra["parallel"].executed_by)}
        assert len(chunk_events) == len(result.extra["chunks"])
        assert any(e.name == "parallel.merge" for e in events)
        # Worker timestamps were translated onto the caller's timeline.
        assert all(0 <= e.ts <= tracer.now() for e in events)

    def test_trace_exports_as_chrome_json(self, zoo, tmp_path):
        from repro.obs.trace import EventTracer, to_chrome_trace, \
            validate_chrome_trace

        tracer = EventTracer.wall()
        triangulate_parallel(zoo["figure1"], workers=2, trace=tracer)
        payload = to_chrome_trace(tracer)
        assert validate_chrome_trace(payload, known_names_only=True) == []


class TestFailurePropagation:
    def test_worker_failure_raises_and_leaks_nothing(self, zoo, monkeypatch):
        """A crashing worker surfaces as ParallelError, segments unlinked."""
        import os

        import repro.parallel.engine as engine_mod

        def boom(*args, **kwargs):
            raise ValueError("injected chunk failure")

        # Fork inherits the patched module, so the failure happens on the
        # worker side of the queue protocol.
        monkeypatch.setattr(engine_mod, "count_chunk", boom)
        before = set(os.listdir("/dev/shm"))
        with pytest.raises(ParallelError, match="injected chunk failure"):
            triangulate_parallel(zoo["figure1"], workers=2)
        assert set(os.listdir("/dev/shm")) <= before

    def test_worker_failure_identifies_the_worker(self, zoo, monkeypatch):
        import repro.parallel.engine as engine_mod

        def boom(*args, **kwargs):
            raise ValueError("injected")

        monkeypatch.setattr(engine_mod, "count_chunk", boom)
        with pytest.raises(ParallelError, match=r"w\d+: ValueError"):
            triangulate_parallel(zoo["figure1"], workers=2)
