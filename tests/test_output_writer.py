"""Tests for the nested-representation output writer."""

from __future__ import annotations

import io
import struct

from repro.core import NestedOutputWriter, triangulate_disk
from repro.core.output import nested_group_bytes, triple_bytes
from repro.memory import edge_iterator


class TestEncoding:
    def test_group_bytes(self):
        assert nested_group_bytes(3) == 10 + 12
        assert triple_bytes(3) == 36

    def test_nested_beats_triples_with_shared_prefixes(self):
        # 10 triangles sharing one (u, v) prefix: nested is far smaller.
        assert nested_group_bytes(10) < triple_bytes(10) / 2


class TestWriter:
    def test_counts(self):
        writer = NestedOutputWriter()
        writer.emit(0, 1, [2, 3, 4])
        writer.emit(0, 2, [5])
        writer.close()
        assert writer.count == 4
        assert writer.groups == 2
        assert writer.bytes_written == nested_group_bytes(3) + nested_group_bytes(1)

    def test_empty_group_ignored(self):
        writer = NestedOutputWriter()
        writer.emit(0, 1, [])
        writer.close()
        assert writer.count == 0
        assert writer.bytes_written == 0

    def test_page_flush_granularity(self):
        writer = NestedOutputWriter(page_size=64)
        for i in range(20):
            writer.emit(i, i + 1, [i + 2])
        writer.close()
        assert writer.pages_written >= writer.bytes_written // 64

    def test_writes_to_stream(self):
        stream = io.BytesIO()
        writer = NestedOutputWriter(stream, page_size=32)
        writer.emit(1, 2, [3, 4])
        writer.close()
        data = stream.getvalue()
        assert len(data) == writer.bytes_written
        u, v, k = struct.unpack_from("<IIH", data, 0)
        assert (u, v, k) == (1, 2, 2)

    def test_writes_to_path(self, tmp_path):
        path = tmp_path / "triangles.bin"
        with NestedOutputWriter(path) as writer:
            writer.emit(0, 1, [2])
        assert path.stat().st_size == writer.bytes_written

    def test_as_opt_sink(self, small_rmat_ordered):
        writer = NestedOutputWriter(page_size=512)
        result = triangulate_disk(small_rmat_ordered, page_size=256,
                                  buffer_pages=6, sink=writer)
        writer.close()
        assert writer.count == result.triangles
        assert writer.count == edge_iterator(small_rmat_ordered).triangles
        trace = result.extra["trace"]
        assert sum(it.output_pages for it in trace.iterations) > 0
