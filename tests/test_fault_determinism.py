"""Determinism gate: same fault-plan seed ⇒ byte-identical behavior.

Fault decisions are pure functions of ``(seed, kind, pid, attempt)`` —
never of shared RNG state or thread timing — so two runs under fresh
plans with the same seed must produce the identical canonical event
trace, identical recovery counters, and the identical triangle listing.
FaultPlans are single-run objects (their event log accumulates), hence
every run below constructs a fresh plan with the same seed.
"""

from __future__ import annotations

from repro.core import make_store, triangulate_disk
from repro.core.threaded import triangulate_threaded
from repro.memory.base import CollectSink, canonical_triangles
from repro.obs import RunReport
from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy

SPECS = [
    FaultSpec("transient", rate=0.5, times=2),
    FaultSpec("latency", rate=0.4, times=1, delay=0.001),
    FaultSpec("torn", rate=0.3, times=1),
]
POLICY = RetryPolicy(max_retries=3, backoff_base=0.0001)


def _recovery_counters(report: RunReport) -> dict[str, int]:
    return {
        key: value
        for key, value in report.metrics_snapshot()["counters"].items()
        if key.startswith(("faults.", "recovery."))
    }


def _run_sim(graph):
    plan = FaultPlan(SPECS, seed=99)
    report = RunReport("determinism")
    sink = CollectSink()
    store = make_store(graph, 512)
    result = triangulate_disk(store, buffer_pages=6, sink=sink,
                              fault_plan=plan, retry_policy=POLICY,
                              report=report)
    return {
        "triangles": canonical_triangles(sink),
        "trace": plan.log.trace(),
        "counters": _recovery_counters(report),
        "fault_delay": result.extra["trace"].total_fault_delay,
        "elapsed": result.elapsed,
    }


class TestSimulatedDeterminism:
    def test_two_runs_identical(self, small_rmat_ordered):
        first = _run_sim(small_rmat_ordered)
        second = _run_sim(small_rmat_ordered)
        assert first["trace"] == second["trace"]
        assert first["counters"] == second["counters"]
        assert first["triangles"] == second["triangles"]
        assert first["fault_delay"] == second["fault_delay"]
        assert first["elapsed"] == second["elapsed"]
        assert first["trace"], "plan injected nothing — seed too weak"

    def test_different_seed_different_trace(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 512)
        traces = []
        for seed in (1, 2):
            plan = FaultPlan(SPECS, seed=seed)
            triangulate_disk(store, buffer_pages=6, fault_plan=plan,
                             retry_policy=POLICY)
            traces.append(plan.log.trace())
        assert traces[0] != traces[1]

    def test_trace_is_canonically_sorted(self, small_rmat_ordered):
        plan = FaultPlan(SPECS, seed=99)
        store = make_store(small_rmat_ordered, 512)
        triangulate_disk(store, buffer_pages=6, fault_plan=plan,
                         retry_policy=POLICY)
        trace = plan.log.trace()
        assert list(trace) == sorted(trace)


class TestThreadedDeterminism:
    """Real threads: arrival order varies, the canonical trace must not.

    Dropped-callback faults are used (not stalls): their injection and
    recovery counts all settle at the ``wait_idle`` barrier, so the
    event trace is a pure function of the plan even under real thread
    scheduling.
    """

    DROP_SPECS = [FaultSpec("dropped_callback", rate=0.4, times=1)]
    DROP_POLICY = RetryPolicy(max_retries=3, timeout=0.15)

    def _run(self, graph, directory):
        plan = FaultPlan(self.DROP_SPECS, seed=5)
        report = RunReport("threaded-determinism")
        sink = CollectSink()
        triangulate_threaded(graph, directory, buffer_pages=6, page_size=512,
                             sink=sink, fault_plan=plan,
                             retry_policy=self.DROP_POLICY, report=report)
        return {
            "triangles": canonical_triangles(sink),
            "trace": plan.log.trace(),
            "counters": _recovery_counters(report),
        }

    def test_two_runs_identical(self, small_rmat_ordered, tmp_path):
        first = self._run(small_rmat_ordered, tmp_path / "a")
        second = self._run(small_rmat_ordered, tmp_path / "b")
        assert first["trace"] == second["trace"]
        assert first["counters"] == second["counters"]
        assert first["triangles"] == second["triangles"]
        assert any(event == "inject" for event, *_ in first["trace"]), \
            "plan injected nothing — seed too weak"


class TestPlanDecisionPurity:
    """The decision functions themselves, independent of any engine."""

    def test_actions_are_pure(self):
        plans = [FaultPlan(SPECS, seed=3) for _ in range(2)]
        for pid in range(20):
            for attempt in range(4):
                assert (plans[0].actions(pid, attempt)
                        == plans[1].actions(pid, attempt))

    def test_backoff_is_pure(self):
        policy = RetryPolicy(seed=4)
        assert [policy.backoff(3, a) for a in range(5)] \
            == [policy.backoff(3, a) for a in range(5)]

    def test_affected_pages_match_actions(self):
        plan = FaultPlan(SPECS, seed=99)
        for kind in ("transient", "latency", "torn"):
            affected = plan.affected_pages(kind, 40)
            fired = {
                pid for pid in range(40)
                if any(a.kind == kind for a in plan.actions(pid, 0))
            }
            assert affected == fired
