"""End-to-end integration: raw edge file to triangle queries to cliques.

Exercises the full production pipeline a downstream user would run:
raw text edge list → out-of-core build (external sort + degree remap +
packing) → OPT triangulation with nested output through the asynchronous
writer → indexed triangle queries → disk-based 4-clique join — checking
exactness at every stage against independent references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    NestedOutputWriter,
    TriangleStore,
    read_nested_groups,
    triangulate_disk,
    triangulate_threaded,
)
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.io import write_edge_list
from repro.graph.metrics import per_vertex_triangles
from repro.memory import count_cliques, edge_iterator
from repro.preprocess import build_store_external
from repro.storage.writer import AsyncFile
from repro.subgraph import four_cliques_disk


@pytest.fixture(scope="module")
def pipeline(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("e2e")
    raw = generators.holme_kim(350, 7, 0.5, seed=77)
    edge_file = tmp / "raw_edges.txt"
    write_edge_list(raw, edge_file)

    store, mapping, stats = build_store_external(
        edge_file, tmp / "work", page_size=512, chunk_edges=512
    )
    ordered = raw.relabel(mapping)

    output_path = tmp / "triangles.nested"
    async_file = AsyncFile(output_path)
    writer = NestedOutputWriter(async_file, page_size=512)
    result = triangulate_disk(store, buffer_ratio=0.15, sink=writer)
    writer.close()
    async_file.close()
    return raw, ordered, store, stats, result, output_path


class TestPipeline:
    def test_build_stats(self, pipeline):
        raw, _ordered, store, stats, _result, _path = pipeline
        assert stats.num_edges == raw.num_edges
        assert stats.num_pages == store.num_pages

    def test_triangle_count_exact(self, pipeline):
        raw, _ordered, _store, _stats, result, _path = pipeline
        assert result.triangles == edge_iterator(raw).triangles

    def test_output_file_complete(self, pipeline):
        *_, result, path = pipeline
        total = sum(len(ws) for _, _, ws in read_nested_groups(path))
        assert total == result.triangles

    def test_queries_under_relabeling(self, pipeline):
        raw, ordered, _store, _stats, _result, path = pipeline
        triangle_store = TriangleStore.from_file(path)
        expected = per_vertex_triangles(ordered)
        counts = np.array([
            triangle_store.triangle_count_of_vertex(v)
            for v in range(ordered.num_vertices)
        ])
        assert np.array_equal(counts, expected)
        # The relabeling permutes, never changes, the count multiset.
        assert sorted(counts) == sorted(per_vertex_triangles(raw))

    def test_clique_join_from_output_file(self, pipeline):
        _raw, ordered, store, _stats, _result, path = pipeline
        join = four_cliques_disk(store, read_nested_groups(path),
                                 buffer_pages=8)
        assert join.cliques == count_cliques(ordered, 4).triangles

    def test_threaded_engine_agrees(self, pipeline, tmp_path):
        _raw, _ordered, store, _stats, result, _path = pipeline
        threaded = triangulate_threaded(store, tmp_path, buffer_pages=8)
        assert threaded.triangles == result.triangles

    def test_threaded_rejects_rescan_plugins(self, pipeline, tmp_path):
        _raw, _ordered, store, *_ = pipeline
        with pytest.raises(ConfigurationError):
            triangulate_threaded(store, tmp_path, plugin="mgt", buffer_pages=8)


class TestDeterminism:
    def test_same_input_same_results(self, tmp_path, seeded_graph):
        graph = seeded_graph("rmat", 200, 1200, seed=55)
        runs = [
            triangulate_disk(graph, page_size=512, buffer_pages=6)
            for _ in range(2)
        ]
        assert runs[0].triangles == runs[1].triangles
        assert runs[0].elapsed == runs[1].elapsed
        assert runs[0].pages_read == runs[1].pages_read
