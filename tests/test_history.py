"""The cross-run perf history store (repro.obs.history)."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    PerfHistory,
    PerfRecord,
    headline_elapsed,
    render_trend,
    validate_history_dict,
)
from repro.obs.history import (
    DEFAULT_THRESHOLD,
    bench_name_of,
    validate_history_file,
)


def _payload(elapsed: float, *, kind: str = "derived", **meta) -> dict:
    if kind == "derived":
        payload = {"derived": {"elapsed_simulated": elapsed}}
    else:
        payload = {"metrics": {"gauges": {kind: elapsed}}}
    if meta:
        payload["meta"] = meta
    return payload


class TestHeadline:
    def test_resolution_order_most_specific_first(self):
        payload = {
            "derived": {"elapsed_simulated": 1.0},
            "metrics": {"gauges": {"run.elapsed_simulated": 2.0,
                                   "run.elapsed_wall": 3.0}},
        }
        assert headline_elapsed(payload) == ("elapsed_simulated", 1.0)
        del payload["derived"]
        assert headline_elapsed(payload) == ("run.elapsed_simulated", 2.0)
        del payload["metrics"]["gauges"]["run.elapsed_simulated"]
        assert headline_elapsed(payload) == ("run.elapsed_wall", 3.0)

    def test_no_headline_is_none(self):
        assert headline_elapsed({}) is None
        assert headline_elapsed({"derived": {"elapsed_simulated": 0}}) is None

    def test_bench_name_of_strips_prefix(self):
        assert bench_name_of("results/BENCH_fig3a.json") == "fig3a"
        assert bench_name_of("other.json") == "other"


class TestIngest:
    def test_ingest_appends_and_counts(self, tmp_path):
        history = PerfHistory(tmp_path / "hist.jsonl")
        registry = MetricsRegistry()
        record = history.ingest(_payload(0.5, engine="opt"), bench="fig3a",
                                git_rev="abc1234", registry=registry)
        assert record == PerfRecord(bench="fig3a",
                                    metric="elapsed_simulated", value=0.5,
                                    git_rev="abc1234", seq=0,
                                    meta={"engine": "opt"})
        assert registry.counter("perf.ingested").value == 1
        assert len(history) == 1

    def test_exact_repeat_is_skipped(self, tmp_path):
        history = PerfHistory(tmp_path / "hist.jsonl")
        assert history.ingest(_payload(0.5), bench="b",
                              git_rev="r1") is not None
        before = (tmp_path / "hist.jsonl").read_bytes()
        assert history.ingest(_payload(0.5), bench="b", git_rev="r1") is None
        assert (tmp_path / "hist.jsonl").read_bytes() == before
        # A new rev (or value) is a new point on the trajectory.
        assert history.ingest(_payload(0.5), bench="b",
                              git_rev="r2") is not None
        assert history.ingest(_payload(0.6), bench="b",
                              git_rev="r2") is not None
        assert [r.seq for r in history.records()] == [0, 1, 2]

    def test_no_headline_payload_is_skipped(self, tmp_path):
        history = PerfHistory(tmp_path / "hist.jsonl")
        assert history.ingest({"derived": {}}, bench="b") is None
        assert not (tmp_path / "hist.jsonl").exists()

    def test_ingest_file_uses_last_trajectory_line(self, tmp_path):
        path = tmp_path / "BENCH_demo.json"
        lines = [json.dumps(_payload(v)) for v in (0.9, 0.7)]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        history = PerfHistory(tmp_path / "hist.jsonl")
        record = history.ingest_file(path, git_rev="r1")
        assert record.bench == "demo" and record.value == 0.7

    def test_reingest_is_byte_deterministic(self, tmp_path):
        reports = [(f"bench{i}", _payload(0.1 * (i + 1))) for i in range(3)]
        indexes = []
        for run in range(2):
            history = PerfHistory(tmp_path / f"hist{run}.jsonl")
            for bench, payload in reports:
                history.ingest(payload, bench=bench, git_rev="r1")
            indexes.append((tmp_path / f"hist{run}.jsonl").read_bytes())
        assert indexes[0] == indexes[1]


class TestQueriesAndVerdicts:
    @pytest.fixture()
    def history(self, tmp_path):
        history = PerfHistory(tmp_path / "hist.jsonl")
        for rev, value in [("r1", 0.50), ("r2", 0.40), ("r3", 0.45)]:
            history.ingest(_payload(value), bench="fig3a", git_rev=rev)
        return history

    def test_trend_best_latest(self, history):
        assert [r.value for r in history.trend("fig3a")] == [0.50, 0.40, 0.45]
        assert history.best("fig3a").git_rev == "r2"
        assert history.latest("fig3a").git_rev == "r3"
        assert history.benches() == ["fig3a"]

    def test_best_tie_keeps_earliest(self, tmp_path):
        history = PerfHistory(tmp_path / "hist.jsonl")
        for rev in ("first", "second"):
            history.ingest(_payload(0.4), bench="b", git_rev=rev)
        assert history.best("b").git_rev == "first"

    def test_check_ok_and_regressed(self, history):
        ok = history.check(_payload(0.41), bench="fig3a")
        assert ok["status"] == "ok"
        assert ok["baseline"] == 0.40 and ok["baseline_rev"] == "r2"
        bad = history.check(_payload(0.40 * 1.21), bench="fig3a")
        assert bad["status"] == "regressed"
        assert bad["ratio"] == pytest.approx(1.21)
        assert bad["threshold"] == DEFAULT_THRESHOLD

    def test_check_against_latest(self, history):
        verdict = history.check(0.53, bench="fig3a", against="latest")
        assert verdict["baseline"] == 0.45 and verdict["status"] == "ok"
        with pytest.raises(ValueError):
            history.check(0.5, bench="fig3a", against="median")

    def test_check_without_history_or_headline(self, tmp_path):
        history = PerfHistory(tmp_path / "empty.jsonl")
        assert history.check(_payload(0.5),
                             bench="b")["status"] == "no-history"
        assert history.check({}, bench="b")["status"] == "no-headline"

    def test_render_trend_sparkline_and_stats(self, history):
        text = render_trend(history, "fig3a")
        assert text.startswith("fig3a (elapsed_simulated, 3 run(s))")
        assert "best 0.400000s" in text
        assert "last 0.450000s @ r3" in text
        assert "(last/best x1.125)" in text
        assert render_trend(history, "missing") == "missing: no history"


class TestValidation:
    def test_record_round_trip_validates(self):
        record = PerfRecord(bench="b", metric="m", value=0.5, git_rev="r",
                            seq=3, meta={"engine": "opt"})
        payload = record.to_dict()
        assert validate_history_dict(payload) == []
        assert PerfRecord.from_dict(payload) == record

    def test_validator_flags_bad_fields(self):
        errors = validate_history_dict({"schema": "nope", "version": "x",
                                        "bench": "", "metric": "m",
                                        "git_rev": "r", "value": -1,
                                        "seq": -2})
        joined = "\n".join(errors)
        assert "schema" in joined and "version" in joined
        assert "bench" in joined and "value" in joined and "seq" in joined

    def test_file_validator_catches_duplicate_seq(self, tmp_path):
        record = PerfRecord(bench="b", metric="m", value=0.5).to_dict()
        path = tmp_path / "hist.jsonl"
        path.write_text(json.dumps(record) + "\n" + json.dumps(record) + "\n",
                        encoding="utf-8")
        errors = validate_history_file(path)
        assert any("duplicate seq" in error for error in errors)

    def test_file_validator_accepts_real_index(self, tmp_path):
        history = PerfHistory(tmp_path / "hist.jsonl")
        history.ingest(_payload(0.5), bench="b", git_rev="r1")
        history.ingest(_payload(0.6), bench="c", git_rev="r1")
        assert validate_history_file(tmp_path / "hist.jsonl") == []
