"""Unit tests for the observability layer (repro.obs)."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import (
    MetricsRegistry,
    RunReport,
    SpanTracker,
    configure_logging,
    get_logger,
    validate_report_dict,
)


class TestCounters:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.value("x") == 5

    def test_interning_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("ssd.pages_read")
        b = registry.counter("ssd.pages_read")
        assert a is b
        labeled = registry.counter("ssd.pages_read", device="1")
        assert labeled is not a
        labeled.inc(2)
        assert a.value == 0 and labeled.value == 2

    def test_counter_cannot_decrease(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_label_key_formatting(self):
        registry = MetricsRegistry()
        counter = registry.counter("triangles", phase="internal")
        assert counter.key == "triangles{phase=internal}"
        snapshot = registry.snapshot()
        assert snapshot["counters"]["triangles{phase=internal}"] == 0


class TestGauges:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.value == 1.5


class TestHistograms:
    def test_summary_statistics(self):
        histogram = MetricsRegistry().histogram("lat")
        for value in [1, 2, 3, 4, 5]:
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == 15
        assert histogram.mean == 3
        assert histogram.min == 1 and histogram.max == 5
        assert histogram.percentile(50) == 3
        summary = histogram.summary()
        assert summary["count"] == 5 and summary["p50"] == 3

    def test_reservoir_bounded(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("big")
        histogram.max_samples = 10
        for value in range(100):
            histogram.observe(value)
        assert histogram.count == 100
        assert len(histogram._samples) == 10

    def test_empty_percentile(self):
        histogram = MetricsRegistry().histogram("empty")
        assert histogram.percentile(99) == 0.0

    def test_empty_summary_is_all_zeros(self):
        summary = MetricsRegistry().histogram("empty").summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["min"] is None and summary["max"] is None
        assert summary["p50"] == summary["p90"] == summary["p99"] == 0.0

    def test_single_sample_percentile_is_that_sample(self):
        histogram = MetricsRegistry().histogram("one")
        histogram.observe(7.5)
        for q in (0, 1, 50, 99, 100):
            assert histogram.percentile(q) == 7.5

    def test_percentile_rejects_out_of_range(self):
        histogram = MetricsRegistry().histogram("lat")
        histogram.observe(1.0)
        with pytest.raises(ValueError, match="percentile"):
            histogram.percentile(-1)
        with pytest.raises(ValueError, match="percentile"):
            histogram.percentile(100.5)

    def test_overflowed_reservoir_keeps_exact_extremes(self):
        """Past max_samples, percentiles degrade to the retained prefix
        but count/sum/min/max stay exact."""
        histogram = MetricsRegistry().histogram("big")
        histogram.max_samples = 8
        for value in range(100):
            histogram.observe(float(value))
        assert histogram.count == 100
        assert histogram.sum == sum(range(100))
        assert histogram.min == 0.0 and histogram.max == 99.0
        # Percentiles come from the first 8 observations (0..7) only.
        assert histogram.percentile(100) == 7.0
        assert histogram.percentile(0) == 0.0


class TestSnapshotMerge:
    """Cross-process histogram merging — the percentile-fidelity audit.

    The process-parallel engine ships worker metrics as snapshot dicts
    and folds them into the parent registry with ``merge_snapshot``.
    Counters and gauges merge trivially; histogram percentiles only
    survive the trip when the snapshot ships each histogram's sample
    reservoir (``histogram_samples=True``).  These tests pin both the
    exact-fidelity path and the documented lossiness of the compact
    (sample-free) path.
    """

    @staticmethod
    def _worker_snapshot(base: float, n: int = 100, *, samples: bool):
        registry = MetricsRegistry()
        histogram = registry.histogram("parallel.chunk.elapsed")
        for value in range(n):
            histogram.observe(base + value)
        return registry.snapshot(histogram_samples=samples)

    def test_merge_with_samples_matches_pooled_percentiles(self):
        parent = MetricsRegistry()
        pooled: list[float] = []
        for base in (0.0, 100.0, 200.0):
            parent.merge_snapshot(self._worker_snapshot(base, samples=True))
            pooled.extend(base + v for v in range(100))
        merged = parent.histogram("parallel.chunk.elapsed")
        reference = MetricsRegistry().histogram("reference")
        for value in pooled:
            reference.observe(value)
        assert merged.count == reference.count == 300
        assert merged.sum == reference.sum
        assert merged.min == 0.0 and merged.max == 299.0
        # 300 pooled samples fit the 4096-slot reservoir, so the merged
        # percentiles are *exactly* the pooled-sample percentiles — in
        # particular p99 lands in the last worker's range instead of
        # collapsing to the first worker's.
        for q in (50, 90, 95, 99):
            assert merged.percentile(q) == reference.percentile(q)
        assert merged.percentile(99) >= 200.0

    def test_merge_without_samples_keeps_exact_aggregates_only(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self._worker_snapshot(0.0, samples=False))
        merged = parent.histogram("parallel.chunk.elapsed")
        # Exact streaming aggregates always survive...
        assert merged.count == 100
        assert merged.sum == sum(range(100))
        assert merged.min == 0.0 and merged.max == 99.0
        # ...but a sample-free summary contributes nothing to the
        # percentile reservoir (the documented lossy mode): percentiles
        # describe only sources that shipped samples — here, none.
        assert merged.percentile(99) == 0.0
        assert merged.summary()["p99"] == 0.0

    def test_merge_pooling_respects_reservoir_cap(self):
        parent = MetricsRegistry()
        capped = parent.histogram("parallel.chunk.elapsed")
        capped.max_samples = 50
        for base in (0.0, 1000.0):
            parent.merge_snapshot(self._worker_snapshot(base, samples=True))
        assert capped.count == 200  # exact even past the cap
        assert len(capped._samples) == 50
        assert capped.max == 1099.0

    def test_counters_add_and_gauges_overwrite(self):
        parent = MetricsRegistry()
        parent.counter("parallel.ops").inc(5)
        worker = MetricsRegistry()
        worker.counter("parallel.ops").inc(7)
        worker.gauge("buffer.resident").set(3.0)
        parent.merge_snapshot(worker.snapshot())
        assert parent.value("parallel.ops") == 12
        assert parent.value("buffer.resident") == 3.0


class TestThreadSafety:
    def test_concurrent_counter_updates_are_exact(self):
        """The SSD callback thread and main thread update one counter."""
        registry = MetricsRegistry()
        counter = registry.counter("ssd.pages_read")
        histogram = registry.histogram("ssd.queue.depth")
        per_thread, threads = 5000, 8

        def work():
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(1.0)

        workers = [threading.Thread(target=work) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == per_thread * threads
        assert histogram.count == per_thread * threads

    def test_spans_from_other_threads_do_not_corrupt_nesting(self):
        tracker = SpanTracker()
        done = threading.Event()

        def other():
            with tracker.span("other-thread"):
                pass
            done.set()

        with tracker.span("main"):
            thread = threading.Thread(target=other)
            thread.start()
            done.wait(5)
            thread.join()
            with tracker.span("child"):
                pass
        main = tracker.find("main")
        assert main.child("child") is not None
        assert main.child("other-thread") is None  # attached as its own root
        assert tracker.find("other-thread") is not None


class TestSpans:
    def test_nested_wall_timing(self):
        tracker = SpanTracker()
        with tracker.span("outer"):
            with tracker.span("inner"):
                time.sleep(0.01)
        outer = tracker.find("outer")
        inner = outer.child("inner")
        assert inner is not None
        assert inner.wall_elapsed >= 0.01
        assert outer.wall_elapsed >= inner.wall_elapsed

    def test_simulated_spans_and_total(self):
        tracker = SpanTracker()
        parent = tracker.add("simulate")
        tracker.add("fill", parent=parent, sim_elapsed=1.0)
        tracker.add("external", parent=parent, sim_elapsed=2.5)
        assert parent.total_sim() == 3.5

    def test_attrs_round_trip(self):
        tracker = SpanTracker()
        with tracker.span("phase", index=3, plugin="edge-iterator"):
            pass
        restored = SpanTracker.from_list(tracker.to_list())
        span = restored.find("phase")
        assert span.attrs == {"index": 3, "plugin": "edge-iterator"}

    def test_callback_thread_span_after_main_tree_closed(self):
        """A late span from a callback thread becomes its own root.

        The threaded SSD's callback thread can outlive the main thread's
        span tree (e.g. a read completing right at the barrier): opening
        a span there must not crash or graft onto the closed tree.
        """
        tracker = SpanTracker()
        with tracker.span("run"):
            pass  # main tree opened and closed

        errors: list[BaseException] = []

        def late_callback():
            try:
                with tracker.span("read.callback", pid=42):
                    pass
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        worker = threading.Thread(target=late_callback)
        worker.start()
        worker.join()
        assert not errors
        names = [span.name for span in tracker.roots]
        assert names == ["run", "read.callback"]
        assert tracker.find("run").child("read.callback") is None

    def test_thread_local_stacks_do_not_cross_nest(self):
        """A span opened on another thread while the main span is still
        open must not nest under it — stacks are per-thread."""
        tracker = SpanTracker()
        started = threading.Event()
        release = threading.Event()

        def worker():
            with tracker.span("worker-span"):
                started.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=worker)
        with tracker.span("main-span"):
            thread.start()
            assert started.wait(timeout=5)
            release.set()
            thread.join()
        main = tracker.find("main-span")
        assert main.child("worker-span") is None
        assert {span.name for span in tracker.roots} == \
            {"main-span", "worker-span"}


class TestRunReport:
    def make_report(self) -> RunReport:
        report = RunReport("unit", meta={"dataset": "LJ"})
        report.counter("ssd.pages_read").inc(7)
        report.counter("triangles", phase="internal").inc(3)
        report.gauge("run.elapsed_simulated").set(0.5)
        report.histogram("ssd.queue.depth").observe(2)
        with report.span("run-opt"):
            report.spans.add("simulate", sim_elapsed=0.5)
        report.derive("overhead_vs_ideal", 1.04)
        return report

    def test_json_round_trip(self):
        report = self.make_report()
        text = report.to_json()
        restored = RunReport.from_json(text)
        assert restored.label == "unit"
        assert restored.meta == {"dataset": "LJ"}
        assert restored.derived["overhead_vs_ideal"] == 1.04
        assert restored.counter_value("ssd.pages_read") == 7
        assert restored.counter_value("triangles{phase=internal}") == 3
        assert restored.spans.find("simulate").sim_elapsed == 0.5
        # Serializing the deserialized report is the identity.
        assert restored.to_json() == text

    def test_jsonl_append(self, tmp_path):
        path = tmp_path / "trajectory.jsonl"
        self.make_report().append_jsonl(path)
        self.make_report().append_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            validate_report_dict(json.loads(line))

    def test_summary_renders(self):
        text = self.make_report().summary()
        assert "RunReport: unit" in text
        assert "ssd.pages_read" in text
        assert "overhead_vs_ideal" in text
        assert "run-opt" in text

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="schema"):
            validate_report_dict({"schema": "wrong"})
        payload = json.loads(self.make_report().to_json())
        payload["metrics"]["counters"]["bad"] = -1
        with pytest.raises(ValueError, match="non-negative"):
            validate_report_dict(payload)
        payload = json.loads(self.make_report().to_json())
        payload["spans"][0]["name"] = ""
        with pytest.raises(ValueError, match="name"):
            validate_report_dict(payload)


class TestLogging:
    def test_get_logger_namespaces(self):
        assert get_logger("repro.core.engine").name == "repro.core.engine"
        assert get_logger("obs").name == "repro.obs"

    def test_configure_is_idempotent(self):
        root = configure_logging(1)
        handlers = list(root.handlers)
        root = configure_logging(2)
        assert root.handlers == handlers
        import logging

        assert root.level == logging.DEBUG
        configure_logging(0)


class TestVocabClosure:
    """The profiler / perf-history names are vocabulary members, and the
    emitters stay within the vocabulary under a strict registry."""

    def test_new_names_are_in_the_vocabulary(self):
        from repro.obs import is_metric_name

        for name in ("profile.samples", "profile.overhead", "perf.ingested"):
            assert is_metric_name(name), name

    def test_stack_sampler_emits_vocabulary_names_only(self):
        from repro.obs import StackSampler

        registry = MetricsRegistry(strict_vocab=True)
        sampler = StackSampler(interval=0.01, registry=registry)
        sampler.sample_once()
        sampler.start()
        sampler.stop()
        snapshot = registry.snapshot()
        assert "profile.samples" in snapshot["counters"]
        assert "profile.overhead" in snapshot["gauges"]

    def test_history_ingest_emits_vocabulary_names_only(self, tmp_path):
        from repro.obs import PerfHistory

        registry = MetricsRegistry(strict_vocab=True)
        history = PerfHistory(tmp_path / "hist.jsonl")
        record = history.ingest({"derived": {"elapsed_simulated": 0.5}},
                                bench="b", git_rev="r", registry=registry)
        assert record is not None
        assert registry.counter("perf.ingested").value == 1


class TestStackSampler:
    def test_sample_once_records_this_thread(self):
        from repro.obs import StackSampler, collapsed_text

        sampler = StackSampler(interval=0.01)
        taken = sampler.sample_once()
        assert taken >= 1
        stacks = sampler.collapsed()
        assert stacks, "no stacks captured"
        text = collapsed_text(stacks)
        # Frames are module:function, root-first, ';'-joined.
        assert "test_obs:test_sample_once_records_this_thread" in text

    def test_disabled_sampler_is_inert(self):
        from repro.obs import StackSampler

        sampler = StackSampler(enabled=False)
        sampler.start()
        sampler.stop()
        assert sampler.samples == 0
        assert sampler.collapsed() == {}

    def test_live_sampler_accumulates_and_stops(self):
        from repro.obs import StackSampler

        sampler = StackSampler(interval=0.001)
        sampler.start()
        deadline = time.monotonic() + 0.2
        while time.monotonic() < deadline and sampler.samples == 0:
            sum(range(1000))
        sampler.stop()
        assert sampler.samples > 0
        assert sampler.overhead_seconds >= 0.0
        after = sampler.samples
        time.sleep(0.02)
        assert sampler.samples == after, "sampler kept running after stop"

    def test_speedscope_validator_flags_drift(self):
        from repro.obs import StackSampler, to_speedscope, validate_speedscope

        sampler = StackSampler(interval=0.01)
        sampler.sample_once()
        doc = to_speedscope(sampler.collapsed(), name="unit",
                            unit="samples")
        assert validate_speedscope(doc) == []
        broken = json.loads(json.dumps(doc))
        broken["profiles"][0]["weights"].append(1)
        assert any("weights" in error
                   for error in validate_speedscope(broken))
