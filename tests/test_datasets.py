"""Tests for the dataset stand-ins and their paper-matching properties."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import datasets
from repro.graph.metrics import global_clustering_coefficient


class TestRegistry:
    def test_all_five_present(self):
        assert datasets.dataset_names() == ["LJ", "ORKUT", "TWITTER", "UK", "YAHOO"]

    def test_load_is_cached(self):
        assert datasets.load("LJ") is datasets.load("lj")

    def test_unknown_raises(self):
        with pytest.raises(GraphError):
            datasets.load("FACEBOOK")

    def test_paper_statistics_recorded(self):
        spec = datasets.DATASETS["YAHOO"]
        assert spec.paper_vertices == 1_413_511_394
        assert spec.paper_triangles == 85_782_928_684


class TestShapeProperties:
    def test_density_ordering_matches_paper(self):
        """|E|/|V|: YAHOO sparsest, ORKUT densest (Table 2's ordering)."""
        density = {
            name: datasets.load(name).num_edges / datasets.load(name).num_vertices
            for name in datasets.dataset_names()
        }
        assert density["YAHOO"] < density["LJ"]
        assert density["LJ"] < density["TWITTER"]
        assert density["ORKUT"] == max(density.values())

    def test_lj_clustering_elevated(self):
        """The LJ stand-in must be strongly clustered for its density.

        The real LJ's coefficient is 0.28; Holme-Kim saturates near 0.15
        at this scale, still an order of magnitude above an Erdős–Rényi
        graph of equal density (~0.012).
        """
        cc = global_clustering_coefficient(datasets.load("LJ"))
        assert 0.10 <= cc <= 0.40

    def test_yahoo_relatively_triangle_poor(self):
        """YAHOO has far fewer triangles per edge than the social graphs."""
        from repro.memory import edge_iterator

        yahoo = datasets.load("YAHOO")
        orkut = datasets.load("ORKUT")
        yahoo_rate = edge_iterator(yahoo).triangles / yahoo.num_edges
        orkut_rate = edge_iterator(orkut).triangles / orkut.num_edges
        assert yahoo_rate < 0.3 * orkut_rate

    def test_yahoo_largest_vertex_count(self):
        sizes = {name: datasets.load(name).num_vertices
                 for name in datasets.dataset_names()}
        assert sizes["YAHOO"] == max(sizes.values())
