"""Tests for the in-memory triangulation methods (Algorithms 1 and 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import generators
from repro.graph.builder import from_edges
from repro.memory import (
    CollectSink,
    CountSink,
    canonical_triangles,
    edge_iterator,
    forward,
    matrix_count,
    vertex_iterator,
)
from tests.conftest import nx_triangle_count

LISTING_METHODS = [edge_iterator, vertex_iterator, forward]
ALL_METHODS = LISTING_METHODS + [matrix_count]


class TestAgainstGroundTruth:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_figure1(self, method, figure1):
        assert method(figure1).triangles == 5

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_complete_graph(self, method):
        graph = generators.complete_graph(10)
        assert method(graph).triangles == 120

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_triangle_free(self, method):
        assert method(generators.cycle_graph(20)).triangles == 0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_empty_graph(self, method):
        from repro.graph.builder import GraphBuilder

        assert method(GraphBuilder(4).build()).triangles == 0

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_rmat_matches_networkx(self, method, small_rmat):
        assert method(small_rmat).triangles == nx_triangle_count(small_rmat)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_clustered_matches_networkx(self, method, clustered_graph):
        assert method(clustered_graph).triangles == nx_triangle_count(clustered_graph)


class TestListingAgreement:
    @pytest.mark.parametrize("method", LISTING_METHODS)
    def test_lists_same_triangles(self, method, small_rmat):
        reference = CollectSink()
        edge_iterator(small_rmat, reference)
        sink = CollectSink()
        method(small_rmat, sink)
        assert canonical_triangles(sink) == canonical_triangles(reference)

    @given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)), max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_all_methods_agree_property(self, edges):
        graph = from_edges(edges)
        counts = {method.__name__: method(graph).triangles for method in ALL_METHODS}
        assert len(set(counts.values())) == 1, counts


class TestCostAccounting:
    def test_edge_iterator_ops_bound(self, small_rmat):
        """EdgeIterator ops must respect the arboricity bound (Eq. 1-5)."""
        result = edge_iterator(small_rmat)
        bound = sum(
            min(len(small_rmat.n_succ(u)), len(small_rmat.n_succ(int(v))))
            for u in range(small_rmat.num_vertices)
            for v in small_rmat.n_succ(u)
        )
        assert result.cpu_ops == bound

    def test_forward_cheaper_than_edge_iterator(self, small_rmat):
        """Forward intersects prefix lists, so never costs more probes."""
        assert forward(small_rmat).cpu_ops <= edge_iterator(small_rmat).cpu_ops

    def test_vertex_iterator_more_expensive(self, small_rmat_ordered):
        """VertexIterator probes all successor pairs (paper: ~20% slower)."""
        vi = vertex_iterator(small_rmat_ordered).cpu_ops
        ei = edge_iterator(small_rmat_ordered).cpu_ops
        assert vi >= ei


class TestMatrixMethod:
    def test_split_reported(self, small_rmat):
        result = matrix_count(small_rmat)
        extra = result.extra
        assert extra["core_triangles"] + extra["fringe_triangles"] == result.triangles

    def test_threshold_zero_is_pure_matmul(self, figure1):
        result = matrix_count(figure1, degree_threshold=0)
        assert result.triangles == 5
        assert result.extra["fringe_triangles"] == 0

    def test_huge_threshold_is_pure_iterator(self, figure1):
        result = matrix_count(figure1, degree_threshold=100)
        assert result.triangles == 5
        assert result.extra["core_triangles"] == 0


class TestSinks:
    def test_count_sink(self):
        sink = CountSink()
        sink.emit(0, 1, [2, 3])
        sink.emit(0, 2, [5])
        assert sink.count == 3

    def test_collect_sink_canonicalizes(self):
        sink = CollectSink()
        sink.emit(5, 1, [3])
        assert sink.triangles == [(1, 3, 5)]
