"""Tests for the OPT framework: correctness, I/O accounting, overlap wins."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    OPTConfig,
    buffer_pages_for_ratio,
    ideal_elapsed,
    make_store,
    replay,
    resolve_plugin,
    run_opt,
    triangulate_disk,
)
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.graph.builder import from_edges
from repro.graph.ordering import apply_ordering
from repro.memory import CollectSink, canonical_triangles, edge_iterator
from repro.sim import CostModel

PLUGIN_NAMES = ["edge-iterator", "vertex-iterator", "mgt"]
COST = CostModel()


class TestCorrectness:
    @pytest.mark.parametrize("plugin", PLUGIN_NAMES)
    def test_figure1(self, figure1, plugin):
        result = triangulate_disk(figure1, plugin=plugin, page_size=64, buffer_pages=3)
        assert result.triangles == 5

    @pytest.mark.parametrize(
        "plugin,page_size,buffer_pages",
        list(itertools.product(PLUGIN_NAMES, [128, 512], [2, 5, 11])),
    )
    def test_exact_listing_sweep(self, small_rmat_ordered, plugin, page_size, buffer_pages):
        reference = CollectSink()
        edge_iterator(small_rmat_ordered, reference)
        sink = CollectSink()
        result = triangulate_disk(
            small_rmat_ordered,
            plugin=plugin,
            page_size=page_size,
            buffer_pages=buffer_pages,
            sink=sink,
        )
        assert result.triangles == reference.count
        assert canonical_triangles(sink) == canonical_triangles(reference)

    @pytest.mark.parametrize("plugin", PLUGIN_NAMES)
    def test_triangle_free(self, plugin):
        graph = generators.cycle_graph(50)
        result = triangulate_disk(graph, plugin=plugin, page_size=128, buffer_pages=2)
        assert result.triangles == 0

    @pytest.mark.parametrize("plugin", PLUGIN_NAMES)
    def test_spanning_hub(self, plugin):
        """Correct even when one adjacency list spans many pages."""
        graph = generators.complete_graph(40)
        sink = CollectSink()
        result = triangulate_disk(graph, plugin=plugin, page_size=64,
                                  buffer_pages=4, sink=sink)
        assert result.triangles == 40 * 39 * 38 // 6

    @given(st.lists(st.tuples(st.integers(0, 25), st.integers(0, 25)),
                    min_size=1, max_size=100))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_in_memory(self, edges):
        graph = from_edges(edges)
        if graph.num_vertices < 2:
            return
        ordered, _ = apply_ordering(graph, "degree")
        expected = edge_iterator(ordered).triangles
        for plugin in PLUGIN_NAMES:
            result = triangulate_disk(ordered, plugin=plugin, page_size=128,
                                      buffer_pages=2)
            assert result.triangles == expected


class TestTrace:
    def test_internal_plus_external_covers_all(self, small_rmat_ordered):
        sink = CollectSink()
        result = triangulate_disk(small_rmat_ordered, page_size=256,
                                  buffer_pages=6, sink=sink)
        trace = result.extra["trace"]
        internal = sum(it.internal_ops for it in trace.iterations)
        external = sum(it.external_ops for it in trace.iterations)
        assert internal > 0 and external > 0
        assert trace.triangles == result.triangles

    def test_opt_ops_close_to_in_memory(self, small_rmat_ordered):
        """Theorem 1: OPT executes the same intersections as EdgeIterator."""
        mem_ops = edge_iterator(small_rmat_ordered).cpu_ops
        result = triangulate_disk(small_rmat_ordered, page_size=256, buffer_pages=6)
        trace = result.extra["trace"]
        # Chunked lists can split one intersection into several smaller
        # ones, so the disk op count may exceed the in-memory count by the
        # chunking overhead only — never by 2x.
        assert mem_ops <= trace.total_ops <= 2 * mem_ops

    def test_delta_in_buffering_happens(self, small_rmat_ordered):
        result = triangulate_disk(small_rmat_ordered, page_size=256, buffer_pages=10)
        assert result.pages_buffered > 0

    def test_mgt_reads_more(self, small_rmat_ordered):
        opt = triangulate_disk(small_rmat_ordered, page_size=256, buffer_pages=6)
        mgt = triangulate_disk(small_rmat_ordered, plugin="mgt", page_size=256,
                               buffer_pages=6)
        assert mgt.pages_read > 1.5 * opt.pages_read

    def test_single_iteration_when_buffer_huge(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        result = triangulate_disk(store, buffer_pages=4 * store.num_pages)
        assert result.iterations == 1
        trace = result.extra["trace"]
        assert trace.iterations[0].external_reads == []


class TestPerformanceShape:
    def test_opt_serial_close_to_ideal(self):
        """The headline claim: OPT_serial within a small factor of ideal."""
        graph = generators.holme_kim(1200, 12, 0.4, seed=11)
        ordered, _ = apply_ordering(graph, "degree")
        store = make_store(ordered, 1024)
        mem = edge_iterator(ordered)
        ideal = ideal_elapsed(store, mem.cpu_ops, COST)
        result = triangulate_disk(store, buffer_ratio=0.15, cost=COST, cores=1)
        assert result.elapsed <= 1.35 * ideal

    def test_opt_beats_mgt(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        opt = triangulate_disk(store, buffer_ratio=0.15, cost=COST)
        mgt = triangulate_disk(store, plugin="mgt", buffer_ratio=0.15, cost=COST)
        assert opt.elapsed < mgt.elapsed

    def test_more_cores_never_slower(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        base = triangulate_disk(store, buffer_ratio=0.15, cost=COST, cores=1)
        trace = base.extra["trace"]
        previous = base.elapsed
        for cores in (2, 4, 6):
            now = replay(trace, COST, cores=cores, morphing=True).elapsed
            assert now <= previous * 1.01
            previous = now

    def test_morphing_helps(self):
        graph = generators.holme_kim(800, 10, 0.4, seed=12)
        ordered, _ = apply_ordering(graph, "degree")
        store = make_store(ordered, 512)
        base = triangulate_disk(store, buffer_ratio=0.15, cost=COST, cores=1)
        trace = base.extra["trace"]
        on = replay(trace, COST, cores=2, morphing=True).elapsed
        off = replay(trace, COST, cores=2, morphing=False).elapsed
        assert on <= off


class TestConfig:
    def test_even_split(self):
        config = OPTConfig.even_split(10)
        assert config.m_in == 5 and config.m_ex == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OPTConfig(m_in=0, m_ex=1)
        with pytest.raises(ConfigurationError):
            OPTConfig.even_split(1)

    def test_resolve_plugin_unknown(self):
        with pytest.raises(ConfigurationError):
            resolve_plugin("nope")

    def test_buffer_ratio_validation(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        with pytest.raises(ConfigurationError):
            buffer_pages_for_ratio(store, 0)

    def test_empty_graph(self):
        from repro.graph.builder import GraphBuilder

        store = make_store(GraphBuilder(0).build(), 128)
        trace = run_opt(store, OPTConfig(m_in=1, m_ex=1))
        assert trace.triangles == 0
        assert trace.iterations == []
