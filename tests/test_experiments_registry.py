"""Tests for the experiments-as-library registry.

The heavyweight experiments run under ``pytest benchmarks/``; here we
test the registry machinery and run the two cheapest experiments end to
end to ensure the library path works outside pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentResult, experiment_names, run_experiment


class TestRegistry:
    def test_all_paper_experiments_registered(self):
        names = experiment_names()
        for expected in ("table2", "table3", "table4", "table6", "table7",
                         "fig3a", "fig3b", "fig4", "fig5", "fig6",
                         "fig7a", "fig7b", "fig7c"):
            assert expected in names

    def test_order_follows_the_paper(self):
        names = experiment_names()
        assert names.index("table2") < names.index("fig3a")
        assert names.index("fig4") < names.index("fig6")
        assert names.index("table6") < names.index("table7")

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestExperimentResult:
    def test_check_records_on_success(self):
        result = ExperimentResult("demo", "text")
        result.check(True, "claim holds")
        assert result.checks == ["claim holds"]

    def test_check_raises_on_failure(self):
        result = ExperimentResult("demo", "text")
        with pytest.raises(AssertionError, match="demo.*failed claim"):
            result.check(False, "claim fails")


class TestCheapExperimentsEndToEnd:
    def test_table2_runs(self):
        result = run_experiment("table2")
        assert "Table 2" in result.text
        assert result.checks
        assert len(result.data["rows"]) == 5

    def test_fig4_runs(self):
        result = run_experiment("fig4")
        assert "Figure 4" in result.text
        assert "morphing" in " ".join(result.checks)
        assert result.data["morph"] < result.data["rigid"]
