"""Tier-1 guard against RunReport schema drift.

Wires ``benchmarks/check_report_schema.py`` into the main test run: every
committed ``BENCH_*.json`` trajectory artifact must validate against the
current schema, and a freshly produced report must too (so drift is
caught even before any trajectory file exists).
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

from repro.obs import RunReport, validate_report_dict

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"


@pytest.fixture(scope="module")
def checker():
    spec = importlib.util.spec_from_file_location(
        "check_report_schema", BENCHMARKS_DIR / "check_report_schema.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_bench_reports_are_valid(checker):
    failures = {
        name: errors
        for name, errors in checker.validate_results_dir().items()
        if errors
    }
    assert not failures, f"BENCH_*.json schema drift: {failures}"


#: Baselines the parallel-engine benchmarks must keep seeded so
#: ``compare_reports.py`` always has something to diff against.
PARALLEL_BASELINES = ("BENCH_fig6_speedup.json", "BENCH_table4_cores.json")


@pytest.fixture(scope="module")
def comparer():
    spec = importlib.util.spec_from_file_location(
        "compare_reports", BENCHMARKS_DIR / "compare_reports.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", PARALLEL_BASELINES)
def test_parallel_baselines_are_seeded(checker, comparer, name):
    """The committed parallel baselines validate and diff cleanly."""
    path = BENCHMARKS_DIR / "results" / name
    assert path.exists(), f"missing committed baseline {name}"
    assert checker.validate_file(path) == []
    payload = comparer.load_report(path)
    headline = comparer.headline_elapsed(payload)
    assert headline is not None, f"{name}: no headline elapsed metric"
    assert headline[0] == "run.elapsed_wall"
    row = comparer.compare_payloads(payload, payload)
    assert row["status"] == "ok" and row["ratio"] == 1.0


#: Baselines for the kernel/ordering-ablation CI gate.  Their headline
#: is the deterministic op-priced ``derived.elapsed_simulated`` (not
#: wall time), so the >20% compare_reports threshold is a hard gate on
#: op-count regressions regardless of runner speed.
ABLATION_BASELINES = ("BENCH_ablation_kernels.json",
                      "BENCH_ablation_ordering.json")


@pytest.mark.parametrize("name", ABLATION_BASELINES)
def test_ablation_baselines_are_seeded(checker, comparer, name):
    """The committed ablation baselines validate, carry the op-priced
    deterministic headline, and self-diff at ratio 1.0."""
    path = BENCHMARKS_DIR / "results" / name
    assert path.exists(), f"missing committed baseline {name}"
    assert checker.validate_file(path) == []
    payload = comparer.load_report(path)
    headline = comparer.headline_elapsed(payload)
    assert headline is not None, f"{name}: no headline elapsed metric"
    assert headline[0] == "elapsed_simulated"
    row = comparer.compare_payloads(payload, payload)
    assert row["status"] == "ok" and row["ratio"] == 1.0


def test_fresh_report_passes_the_checker(checker, tmp_path):
    report = RunReport("fresh")
    report.counter("ssd.pages_read").inc(3)
    with report.span("phase"):
        pass
    report.derive("overhead_vs_ideal", 1.0)
    path = tmp_path / "BENCH_fresh.json"
    report.write_json(path)
    assert checker.validate_file(path) == []


def test_checker_flags_bad_payload(checker, tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"schema": "nope"}), encoding="utf-8")
    errors = checker.validate_file(path)
    assert errors and "schema" in errors[0]


def test_telemetry_overhead_baseline_is_seeded(checker):
    """The committed telemetry-overhead artifact validates and its
    derived ratios honor the pipeline's overhead contract (<10% wall
    cost enabled, ~0 disabled — see bench_telemetry_overhead.py)."""
    path = BENCHMARKS_DIR / "results" / "BENCH_telemetry_overhead.json"
    assert path.exists(), "missing committed BENCH_telemetry_overhead.json"
    assert checker.validate_file(path) == []
    derived = json.loads(path.read_text(encoding="utf-8"))["derived"]
    assert derived["telemetry_overhead"] < 1.10
    assert derived["disabled_overhead"] < 1.05
    assert derived["telemetry_samples"] > 0
    # fold_telemetry landed the final series state alongside the ratios.
    assert derived["telemetry"]["samples"] == derived["telemetry_samples"]
    assert "buffer.hits" in derived["telemetry"]["series"]


def test_profile_overhead_baseline_is_seeded(checker):
    """The committed profiler-overhead artifact validates and its
    derived ratios honor the profiler's overhead contract: <10% wall
    for the stack sampler, ~0 disabled, and the attribution table
    within its documented ceiling (see bench_profile_overhead.py)."""
    path = BENCHMARKS_DIR / "results" / "BENCH_profile_overhead.json"
    assert path.exists(), "missing committed BENCH_profile_overhead.json"
    assert checker.validate_file(path) == []
    derived = json.loads(path.read_text(encoding="utf-8"))["derived"]
    assert derived["profile_overhead"] < 1.10
    assert derived["disabled_overhead"] < 1.05
    assert derived["attribution_overhead"] < 1.30
    assert derived["profile_samples"] > 0
    # The embedded attribution snapshot conserves its own totals.
    from repro.obs import validate_attribution_dict

    attribution = derived["attribution"]
    assert validate_attribution_dict(attribution) == []
    assert attribution["totals"]["ops"] > 0


def test_profile_flame_artifact_is_seeded(checker):
    """The committed speedscope flame profile validates."""
    path = BENCHMARKS_DIR / "results" / "PROFILE_fig3b.speedscope.json"
    assert path.exists(), "missing committed PROFILE_fig3b.speedscope.json"
    assert checker.validate_profile_file(path) == []


def test_validate_report_dict_rejects_future_version():
    payload = json.loads(RunReport("x").to_json())
    payload["version"] = 999
    with pytest.raises(ValueError, match="newer"):
        validate_report_dict(payload)
