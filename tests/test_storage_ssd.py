"""Tests for the synchronous and threaded SSD access layers."""

from __future__ import annotations

import threading

import pytest

from repro.errors import DeviceError
from repro.storage.layout import GraphStore
from repro.storage.ssd import SyncDevice, ThreadedSSD


@pytest.fixture()
def page_file(tmp_path, small_rmat):
    store = GraphStore.from_graph(small_rmat, 256)
    with store.open_page_file(tmp_path) as handle:
        yield handle, store


class TestSyncDevice:
    def test_reads_and_counts(self, page_file):
        handle, store = page_file
        device = SyncDevice(handle)
        records = device.read_page(0)
        assert [r.vertex for r in records] == [
            r.vertex for r in store.decode_page(0)
        ]
        assert device.pages_read == 1
        assert device.num_pages == store.num_pages


class TestThreadedSSD:
    def test_async_reads_all_pages(self, page_file):
        handle, store = page_file
        results: dict[int, list] = {}
        lock = threading.Lock()

        def callback(records, pid):
            with lock:
                results[pid] = records

        with ThreadedSSD(handle, io_workers=3) as ssd:
            for pid in range(store.num_pages):
                ssd.async_read(pid, callback, (pid,))
            ssd.wait_idle()
        assert set(results) == set(range(store.num_pages))
        assert ssd.pages_read == store.num_pages
        for pid, records in results.items():
            assert [r.vertex for r in records] == [
                r.vertex for r in store.decode_page(pid)
            ]

    def test_callbacks_serialized(self, page_file):
        """Callbacks run on one thread — no two may overlap."""
        handle, store = page_file
        active = 0
        max_active = 0
        lock = threading.Lock()

        def callback(records):
            nonlocal active, max_active
            with lock:
                active += 1
                max_active = max(max_active, active)
            with lock:
                active -= 1

        with ThreadedSSD(handle, io_workers=4) as ssd:
            for pid in range(store.num_pages):
                ssd.async_read(pid, callback)
            ssd.wait_idle()
        assert max_active == 1

    def test_callback_error_surfaces(self, page_file):
        handle, _ = page_file

        def bad_callback(records):
            raise RuntimeError("boom")

        ssd = ThreadedSSD(handle)
        ssd.async_read(0, bad_callback)
        with pytest.raises(DeviceError):
            ssd.wait_idle()
        ssd.close()

    def test_read_error_surfaces(self, page_file):
        handle, store = page_file
        ssd = ThreadedSSD(handle)
        ssd.async_read(store.num_pages + 5, lambda records: None)
        with pytest.raises(DeviceError):
            ssd.wait_idle()
        ssd.close()

    def test_use_after_close(self, page_file):
        handle, _ = page_file
        ssd = ThreadedSSD(handle)
        ssd.close()
        with pytest.raises(DeviceError):
            ssd.async_read(0, lambda records: None)

    def test_close_idempotent(self, page_file):
        handle, _ = page_file
        ssd = ThreadedSSD(handle)
        ssd.close()
        ssd.close()

    def test_validation(self, page_file):
        handle, _ = page_file
        with pytest.raises(DeviceError):
            ThreadedSSD(handle, io_workers=0)
