"""Exhaustive agreement testing on small graphs.

Every graph on 5 vertices (all 2^10 = 1024 edge subsets) runs through the
in-memory methods and, for a deterministic sample, the full disk stack —
brute-force triangle counting is the independent oracle.  Exhaustiveness
at this scale catches boundary cases (empty graphs, isolated vertices,
stars, near-cliques) that random generators rarely emit.
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core import triangulate_disk
from repro.graph.builder import from_edges
from repro.memory import (
    compact_forward,
    count_cliques,
    edge_iterator,
    forward,
    matrix_count,
    vertex_iterator,
)

VERTICES = 5
ALL_EDGES = list(combinations(range(VERTICES), 2))  # 10 possible edges


def brute_force_triangles(edge_set: frozenset) -> int:
    count = 0
    for a, b, c in combinations(range(VERTICES), 3):
        if ({(a, b), (a, c), (b, c)} <= edge_set):
            count += 1
    return count


def graph_of(mask: int):
    edges = [edge for bit, edge in enumerate(ALL_EDGES) if mask >> bit & 1]
    return from_edges(edges, num_vertices=VERTICES), frozenset(edges)


class TestExhaustive:
    def test_all_1024_graphs_in_memory(self):
        """Every 5-vertex graph, every in-memory method, vs brute force."""
        for mask in range(1 << len(ALL_EDGES)):
            graph, edge_set = graph_of(mask)
            expected = brute_force_triangles(edge_set)
            assert edge_iterator(graph).triangles == expected, mask
            assert vertex_iterator(graph).triangles == expected, mask
            assert forward(graph).triangles == expected, mask
            assert compact_forward(graph).triangles == expected, mask

    def test_matrix_method_sample(self):
        """The matmul hybrid on every 32nd graph (it is the slowest)."""
        for mask in range(0, 1 << len(ALL_EDGES), 32):
            graph, edge_set = graph_of(mask)
            assert matrix_count(graph).triangles == brute_force_triangles(
                edge_set
            ), mask

    @pytest.mark.parametrize("plugin", ["edge-iterator", "vertex-iterator", "mgt"])
    def test_disk_stack_sample(self, plugin):
        """Every 16th graph through the full disk pipeline."""
        for mask in range(0, 1 << len(ALL_EDGES), 16):
            graph, edge_set = graph_of(mask)
            if graph.num_edges == 0:
                continue
            result = triangulate_disk(graph, plugin=plugin, page_size=128,
                                      buffer_pages=2)
            assert result.triangles == brute_force_triangles(edge_set), (
                mask, plugin,
            )

    def test_k4_cliques_sample(self):
        """4-clique counts on every 16th graph vs brute force."""
        for mask in range(0, 1 << len(ALL_EDGES), 16):
            graph, edge_set = graph_of(mask)
            expected = sum(
                1
                for quad in combinations(range(VERTICES), 4)
                if all(
                    (a, b) in edge_set
                    for a, b in combinations(quad, 2)
                )
            )
            assert count_cliques(graph, 4).triangles == expected, mask
