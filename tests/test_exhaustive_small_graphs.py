"""Exhaustive agreement testing on small graphs.

Every graph on 5 vertices (all 2^10 = 1024 edge subsets) runs through the
in-memory methods and, for a deterministic sample, the full disk stack —
brute-force triangle counting is the independent oracle.  Exhaustiveness
at this scale catches boundary cases (empty graphs, isolated vertices,
stars, near-cliques) that random generators rarely emit.
"""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core import triangulate_disk
from repro.graph.builder import from_edges
from repro.memory import (
    compact_forward,
    count_cliques,
    edge_iterator,
    forward,
    matrix_count,
    vertex_iterator,
)
from repro.parallel import triangulate_parallel

VERTICES = 5
ALL_EDGES = list(combinations(range(VERTICES), 2))  # 10 possible edges


def possible_edges(vertices: int) -> list[tuple[int, int]]:
    return list(combinations(range(vertices), 2))


def brute_force_triangles(edge_set: frozenset, vertices: int = VERTICES) -> int:
    count = 0
    for a, b, c in combinations(range(vertices), 3):
        if ({(a, b), (a, c), (b, c)} <= edge_set):
            count += 1
    return count


def graph_of(mask: int, vertices: int = VERTICES):
    universe = possible_edges(vertices)
    edges = [edge for bit, edge in enumerate(universe) if mask >> bit & 1]
    return from_edges(edges, num_vertices=vertices), frozenset(edges)


class TestExhaustive:
    def test_all_1024_graphs_in_memory(self):
        """Every 5-vertex graph, every in-memory method, vs brute force."""
        for mask in range(1 << len(ALL_EDGES)):
            graph, edge_set = graph_of(mask)
            expected = brute_force_triangles(edge_set)
            assert edge_iterator(graph).triangles == expected, mask
            assert vertex_iterator(graph).triangles == expected, mask
            assert forward(graph).triangles == expected, mask
            assert compact_forward(graph).triangles == expected, mask

    def test_matrix_method_sample(self):
        """The matmul hybrid on every 32nd graph (it is the slowest)."""
        for mask in range(0, 1 << len(ALL_EDGES), 32):
            graph, edge_set = graph_of(mask)
            assert matrix_count(graph).triangles == brute_force_triangles(
                edge_set
            ), mask

    @pytest.mark.parametrize("plugin", ["edge-iterator", "vertex-iterator", "mgt"])
    def test_disk_stack_sample(self, plugin):
        """Every 16th graph through the full disk pipeline."""
        for mask in range(0, 1 << len(ALL_EDGES), 16):
            graph, edge_set = graph_of(mask)
            if graph.num_edges == 0:
                continue
            result = triangulate_disk(graph, plugin=plugin, page_size=128,
                                      buffer_pages=2)
            assert result.triangles == brute_force_triangles(edge_set), (
                mask, plugin,
            )

    def test_k4_cliques_sample(self):
        """4-clique counts on every 16th graph vs brute force."""
        for mask in range(0, 1 << len(ALL_EDGES), 16):
            graph, edge_set = graph_of(mask)
            expected = sum(
                1
                for quad in combinations(range(VERTICES), 4)
                if all(
                    (a, b) in edge_set
                    for a, b in combinations(quad, 2)
                )
            )
            assert count_cliques(graph, 4).triangles == expected, mask


class TestExhaustiveParallel:
    """The process-parallel engine over every graph on up to 6 vertices.

    ``workers=1`` takes the inline path (no fork), so the full 2^15
    sweep on 6 vertices stays cheap while covering every chunk-plan
    boundary the planner can produce at this scale.  Real forked
    workers are exercised on a deterministic stride — process spawn
    costs ~10ms each, so exhaustive forking would dominate the suite.
    """

    @pytest.mark.parametrize("vertices", [5, 6])
    def test_all_graphs_inline(self, vertices):
        universe = possible_edges(vertices)
        for mask in range(1 << len(universe)):
            graph, edge_set = graph_of(mask, vertices)
            expected = brute_force_triangles(edge_set, vertices)
            result = triangulate_parallel(graph, workers=1)
            assert result.triangles == expected, (vertices, mask)

    @pytest.mark.parametrize("vertices", [5, 6])
    def test_forked_workers_sample(self, vertices):
        """Every 512th graph through real processes and shared memory."""
        universe = possible_edges(vertices)
        span = 1 << len(universe)
        masks = list(range(0, span, 512)) + [span - 1]
        for mask in masks:
            graph, edge_set = graph_of(mask, vertices)
            expected = brute_force_triangles(edge_set, vertices)
            serial = edge_iterator(graph)
            result = triangulate_parallel(graph, workers=2)
            assert result.triangles == expected, (vertices, mask)
            assert result.cpu_ops == serial.cpu_ops, (vertices, mask)
