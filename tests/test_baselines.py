"""Tests for MGT, CC-Seq, CC-DS, and GraphChi-Tri."""

from __future__ import annotations

import pytest

from repro.baselines import cc_ds, cc_seq, graphchi_tri, mgt
from repro.baselines.common import induced_pages, partition_ranges, range_triangle_pass
from repro.core import buffer_pages_for_ratio, make_store, triangulate_disk
from repro.errors import ConfigurationError
from repro.graph import generators
from repro.memory import CollectSink, canonical_triangles, edge_iterator
from repro.sim import CostModel

COST = CostModel()
BASELINES = [
    pytest.param(lambda g, bp, ps: mgt(g, buffer_pages=bp, page_size=ps, cost=COST), id="mgt"),
    pytest.param(lambda g, bp, ps: cc_seq(g, buffer_pages=bp, page_size=ps, cost=COST), id="cc-seq"),
    pytest.param(lambda g, bp, ps: cc_ds(g, buffer_pages=bp, page_size=ps, cost=COST), id="cc-ds"),
    pytest.param(lambda g, bp, ps: graphchi_tri(g, buffer_pages=bp, page_size=ps, cost=COST), id="graphchi"),
]


class TestCorrectness:
    @pytest.mark.parametrize("method", BASELINES)
    def test_figure1(self, figure1, method):
        assert method(figure1, 2, 128).triangles == 5

    @pytest.mark.parametrize("method", BASELINES)
    @pytest.mark.parametrize("buffer_pages", [2, 6, 20])
    def test_rmat_counts(self, small_rmat_ordered, method, buffer_pages):
        expected = edge_iterator(small_rmat_ordered).triangles
        assert method(small_rmat_ordered, buffer_pages, 256).triangles == expected

    def test_cc_seq_lists_exactly(self, small_rmat_ordered):
        reference = CollectSink()
        edge_iterator(small_rmat_ordered, reference)
        sink = CollectSink()
        cc_seq(small_rmat_ordered, buffer_pages=4, page_size=256, cost=COST,
               sink=sink)
        assert canonical_triangles(sink) == canonical_triangles(reference)

    @pytest.mark.parametrize("method", BASELINES)
    def test_triangle_free(self, method):
        assert method(generators.cycle_graph(60), 3, 128).triangles == 0


class TestPartitioning:
    def test_partition_ranges_cover_all(self, small_rmat_ordered):
        ranges = partition_ranges(small_rmat_ordered, 4, 256)
        flattened = [v for lo, hi in ranges for v in range(lo, hi + 1)]
        assert flattened == list(range(small_rmat_ordered.num_vertices))

    def test_budget_respected_up_to_one_vertex(self, small_rmat_ordered):
        ranges = partition_ranges(small_rmat_ordered, 2, 256)
        assert len(ranges) >= 2

    def test_range_pass_partition_sums_to_total(self, small_rmat_ordered):
        expected = edge_iterator(small_rmat_ordered).triangles
        ranges = partition_ranges(small_rmat_ordered, 3, 256)
        total = sum(
            range_triangle_pass(small_rmat_ordered, lo, hi)[0] for lo, hi in ranges
        )
        assert total == expected

    def test_induced_pages_monotone(self, small_rmat_ordered):
        pages = [induced_pages(small_rmat_ordered, lo, 256)
                 for lo in range(0, small_rmat_ordered.num_vertices, 50)]
        assert pages == sorted(pages, reverse=True)
        assert induced_pages(small_rmat_ordered, small_rmat_ordered.num_vertices) == 0


class TestCostShapes:
    def test_slow_group_writes_fast_group_does_not(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        bp = buffer_pages_for_ratio(store, 0.15)
        opt = triangulate_disk(store, buffer_pages=bp, cost=COST)
        slow = cc_seq(small_rmat_ordered, buffer_pages=bp, page_size=256, cost=COST)
        assert opt.pages_written == 0
        assert slow.pages_written > 0

    def test_opt_fastest(self, small_rmat_ordered):
        store = make_store(small_rmat_ordered, 256)
        bp = buffer_pages_for_ratio(store, 0.15)
        opt = triangulate_disk(store, buffer_pages=bp, cost=COST)
        for method in (
            mgt(store, buffer_pages=bp, page_size=256, cost=COST),
            cc_seq(small_rmat_ordered, buffer_pages=bp, page_size=256, cost=COST),
            cc_ds(small_rmat_ordered, buffer_pages=bp, page_size=256, cost=COST),
            graphchi_tri(small_rmat_ordered, buffer_pages=bp, page_size=256, cost=COST),
        ):
            assert opt.elapsed < method.elapsed

    def test_slow_group_buffer_sensitive(self, small_rmat_ordered):
        tight = cc_seq(small_rmat_ordered, buffer_pages=2, page_size=256, cost=COST)
        roomy = cc_seq(small_rmat_ordered, buffer_pages=30, page_size=256, cost=COST)
        assert tight.elapsed > roomy.elapsed

    def test_graphchi_speedup_saturates(self, small_rmat_ordered):
        one = graphchi_tri(small_rmat_ordered, buffer_pages=6, page_size=256,
                           cost=COST, cores=1)
        six = graphchi_tri(small_rmat_ordered, buffer_pages=6, page_size=256,
                           cost=COST, cores=6)
        speedup = one.elapsed / six.elapsed
        assert 1.0 <= speedup < 2.5  # the paper's Figure 6 ceiling

    def test_graphchi_parallel_fraction_reported(self, small_rmat_ordered):
        result = graphchi_tri(small_rmat_ordered, buffer_pages=6, page_size=256,
                              cost=COST)
        assert 0.0 < result.extra["parallel_fraction"] < 1.0


class TestValidation:
    def test_bad_buffer(self, figure1):
        with pytest.raises(ConfigurationError):
            cc_seq(figure1, buffer_pages=0, page_size=128, cost=COST)
        with pytest.raises(ConfigurationError):
            graphchi_tri(figure1, buffer_pages=0, page_size=128, cost=COST)

    def test_bad_cores(self, figure1):
        with pytest.raises(ConfigurationError):
            graphchi_tri(figure1, buffer_pages=2, page_size=128, cost=COST, cores=0)
