"""Tier-1 guard for the benchmark regression differ.

``benchmarks/compare_reports.py`` is the gate that fails CI when a fresh
``BENCH_*.json`` headline time regresses past the threshold; these tests
run it against the two committed baselines (self-diff must be clean) and
against synthetic regressed / improved / missing counterparts.
"""

from __future__ import annotations

import importlib.util
import json
import shutil
from pathlib import Path

import pytest

BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
RESULTS_DIR = BENCHMARKS_DIR / "results"


@pytest.fixture(scope="module")
def differ():
    spec = importlib.util.spec_from_file_location(
        "compare_reports", BENCHMARKS_DIR / "compare_reports.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _scaled_copy(src: Path, dst: Path, factor: float) -> None:
    payload = json.loads(src.read_text(encoding="utf-8"))
    payload["derived"]["elapsed_simulated"] *= factor
    gauges = payload["metrics"]["gauges"]
    for key in ("run.elapsed_simulated", "sim.elapsed"):
        if key in gauges:
            gauges[key] *= factor
    dst.write_text(json.dumps(payload), encoding="utf-8")


def test_committed_baselines_self_diff_clean(differ):
    rows = differ.compare_dirs(RESULTS_DIR, RESULTS_DIR)
    assert rows, "no committed BENCH_*.json baselines found"
    assert {"BENCH_fig3a.json", "BENCH_fault_overhead.json"} <= set(rows)
    assert all(row["status"] == "ok" for row in rows.values()), rows
    assert all(row["ratio"] == pytest.approx(1.0) for row in rows.values())


def test_main_exit_zero_on_committed_baselines(differ, capsys):
    assert differ.main([str(RESULTS_DIR), str(RESULTS_DIR)]) == 0
    out = capsys.readouterr().out
    assert "BENCH_fig3a.json" in out


def test_regression_beyond_threshold_fails(differ, tmp_path, capsys):
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    for src in RESULTS_DIR.glob("BENCH_*.json"):
        shutil.copy(src, fresh / src.name)
    _scaled_copy(RESULTS_DIR / "BENCH_fig3a.json",
                 fresh / "BENCH_fig3a.json", factor=1.5)
    assert differ.main([str(RESULTS_DIR), str(fresh)]) == 1
    captured = capsys.readouterr()
    assert "regressed" in captured.out
    assert "regression(s)" in captured.err


def test_slowdown_within_threshold_passes(differ, tmp_path):
    fresh = tmp_path / "BENCH_fig3a.json"
    _scaled_copy(RESULTS_DIR / "BENCH_fig3a.json", fresh, factor=1.1)
    row = differ.compare_files(RESULTS_DIR / "BENCH_fig3a.json", fresh)
    assert row["status"] == "ok"
    assert row["ratio"] == pytest.approx(1.1)


def test_speedup_never_regresses(differ, tmp_path):
    fresh = tmp_path / "BENCH_fig3a.json"
    _scaled_copy(RESULTS_DIR / "BENCH_fig3a.json", fresh, factor=0.5)
    row = differ.compare_files(RESULTS_DIR / "BENCH_fig3a.json", fresh)
    assert row["status"] == "ok"


def test_missing_counterparts_reported_not_fatal(differ, tmp_path):
    fresh = tmp_path / "fresh"
    fresh.mkdir()
    shutil.copy(RESULTS_DIR / "BENCH_fig3a.json",
                fresh / "BENCH_fig3a.json")
    shutil.copy(RESULTS_DIR / "BENCH_fig3a.json",
                fresh / "BENCH_only_fresh.json")
    rows = differ.compare_dirs(RESULTS_DIR, fresh)
    assert rows["BENCH_fault_overhead.json"]["status"] == "fresh-missing"
    assert rows["BENCH_only_fresh.json"]["status"] == "baseline-missing"
    assert differ.main([str(RESULTS_DIR), str(fresh)]) == 0


def test_wall_clock_headline_fallback(differ, tmp_path):
    base = tmp_path / "base.json"
    fresh = tmp_path / "fresh.json"
    payload = {"metrics": {"gauges": {"run.elapsed_wall": 1.0}}}
    base.write_text(json.dumps(payload), encoding="utf-8")
    payload = {"metrics": {"gauges": {"run.elapsed_wall": 1.3}}}
    fresh.write_text(json.dumps(payload), encoding="utf-8")
    row = differ.compare_files(base, fresh)
    assert row["metric"] == "run.elapsed_wall"
    assert row["status"] == "regressed"


def test_headline_resolution_prefers_derived(differ):
    payload = {
        "derived": {"elapsed_simulated": 2.0},
        "metrics": {"gauges": {"sim.elapsed": 1.0}},
    }
    assert differ.headline_elapsed(payload) == ("elapsed_simulated", 2.0)
