"""Live telemetry pipeline: sampler, determinism, heartbeats, exposition.

Four concerns, mirroring the tentpole's structure:

* :class:`TestSampler` — the :class:`~repro.obs.TelemetrySampler` unit
  contract (sim mode needs explicit timestamps, disabled samplers are
  inert, ring buffers stay bounded, rates derive from counter deltas).
* :class:`TestSimDeterminism` — the headline guarantee: a sim-clock tick
  stream is byte-identical across repeat runs, and (for the parallel
  engine's merge-replay sampling) across worker counts.
* :class:`TestHeartbeats` / :class:`TestFaultMatrix` — worker heartbeats
  fold into per-worker series; an injected slow worker is flagged as a
  straggler but the run completes; an injected *stalled* worker raises
  :class:`~repro.errors.ParallelError` well before the run would have
  hung at join.  Plus the resource-hygiene gates: no fd and no /dev/shm
  growth with the heartbeat channel enabled.
* :class:`TestExposition` — Prometheus text, ``repro top`` frames,
  sparklines, JSONL round-trips, and the CLI surface.
"""

from __future__ import annotations

import gc
import json
import os

import pytest

from repro.analysis.ascii_chart import sparkline
from repro.errors import ConfigurationError, ParallelError
from repro.obs import (
    MetricsRegistry,
    RunReport,
    TelemetrySampler,
    expose_text,
    fold_telemetry,
    read_telemetry_jsonl,
    render_top,
)
from repro.parallel import StragglerPolicy, triangulate_parallel

WORKER_COUNTS = (1, 2, 4)


def _sampled_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("parallel.ops").inc(10)
    registry.gauge("buffer.resident").set(4.0)
    registry.histogram("parallel.chunk.elapsed").observe(0.5)
    return registry


class TestSampler:
    def test_sim_clock_requires_explicit_now(self):
        sampler = TelemetrySampler(_sampled_registry(), clock="sim")
        with pytest.raises(ValueError, match="explicit sample time"):
            sampler.sample()
        tick = sampler.sample(0.0)
        assert tick["t"] == 0.0 and tick["seq"] == 0

    def test_sim_clock_refuses_background_thread(self):
        sampler = TelemetrySampler(_sampled_registry(), clock="sim")
        with pytest.raises(ValueError, match="wall-clock"):
            sampler.start()

    def test_unbound_sampler_raises(self):
        with pytest.raises(ValueError, match="no registry"):
            TelemetrySampler(clock="wall").sample()

    def test_disabled_sampler_is_inert(self):
        sampler = TelemetrySampler(_sampled_registry(), clock="sim",
                                   enabled=False)
        assert sampler.sample(0.0) == {}
        assert sampler.maybe_sample(1.0) is None
        assert len(sampler) == 0
        assert sampler.to_jsonl() == ""

    def test_ring_buffers_stay_bounded(self):
        registry = _sampled_registry()
        sampler = TelemetrySampler(registry, clock="sim", capacity=8)
        for i in range(50):
            sampler.sample(float(i))
        assert len(sampler) == 8
        assert sampler.ticks()[0]["t"] == 42.0  # oldest retained
        assert all(len(series) <= 8
                   for _name, series in sampler.bank.items())

    def test_counter_rates_from_deltas(self):
        registry = MetricsRegistry()
        ops = registry.counter("parallel.ops")
        sampler = TelemetrySampler(registry, clock="sim")
        ops.inc(10)
        sampler.sample(0.0)
        ops.inc(30)
        tick = sampler.sample(2.0)
        assert tick["counters"]["parallel.ops"] == 40
        assert tick["rates"]["parallel.ops"] == pytest.approx(15.0)

    def test_maybe_sample_rate_limits(self):
        sampler = TelemetrySampler(_sampled_registry(), clock="sim",
                                   interval=1.0)
        assert sampler.maybe_sample(0.0) is not None
        assert sampler.maybe_sample(0.5) is None  # under the interval
        assert sampler.maybe_sample(1.5) is not None

    def test_histogram_percentiles_on_ticks(self):
        registry = MetricsRegistry()
        hist = registry.histogram("parallel.chunk.elapsed")
        for value in range(100):
            hist.observe(float(value))
        tick = TelemetrySampler(registry, clock="sim").sample(0.0)
        summary = tick["histograms"]["parallel.chunk.elapsed"]
        assert summary["count"] == 100
        assert summary["p50"] == 50.0  # nearest-rank over 0..99
        assert summary["p99"] == 98.0

    def test_finish_emits_final_marker(self):
        sampler = TelemetrySampler(_sampled_registry(), clock="sim")
        sampler.sample(0.0)
        sampler.sample(1.0)
        tick = sampler.finish()
        assert tick["final"] is True
        assert tick["t"] == 2.0  # one ordinal past the last sample

    def test_fold_telemetry_lands_in_derived(self):
        report = RunReport("telemetry-fold")
        sampler = TelemetrySampler(report.registry, clock="sim")
        report.registry.counter("parallel.ops").inc(3)
        sampler.sample(0.0)
        payload = fold_telemetry(report, sampler)
        assert report.to_dict()["derived"]["telemetry"] == payload
        assert payload["samples"] == 1
        assert payload["series"]["parallel.ops"] == 3.0


class TestSimDeterminism:
    """Byte-identical JSONL: the sim-clock stream is a pure function of
    the workload — across repeat runs and across worker counts."""

    @staticmethod
    def _disk_jsonl(graph) -> str:
        from repro.core import make_store, triangulate_disk

        sampler = TelemetrySampler(clock="sim")
        triangulate_disk(make_store(graph, 1024), buffer_ratio=0.2,
                         telemetry=sampler)
        sampler.finish()
        return sampler.to_jsonl()

    def test_disk_stream_identical_across_repeat_runs(self, small_rmat_ordered):
        first = self._disk_jsonl(small_rmat_ordered)
        second = self._disk_jsonl(small_rmat_ordered)
        assert first and first == second
        # One opening tick, one per iteration, one final marker.
        ticks = [json.loads(line) for line in first.splitlines()]
        assert ticks[0]["t"] == 0.0
        assert ticks[-1]["final"] is True

    @staticmethod
    def _parallel_jsonl(graph, workers: int) -> str:
        sampler = TelemetrySampler(clock="sim")
        triangulate_parallel(graph, workers=workers, chunks=8,
                             telemetry=sampler)
        sampler.finish()
        return sampler.to_jsonl()

    def test_parallel_stream_identical_across_worker_counts(self, clustered_graph):
        streams = {w: self._parallel_jsonl(clustered_graph, w)
                   for w in WORKER_COUNTS}
        assert len(set(streams.values())) == 1
        assert streams[1]  # non-empty

    def test_parallel_stream_identical_across_repeat_runs(self, clustered_graph):
        first = self._parallel_jsonl(clustered_graph, 2)
        second = self._parallel_jsonl(clustered_graph, 2)
        assert first == second


class TestHeartbeats:
    def test_live_run_folds_worker_sections(self, clustered_graph):
        """A wall-clock sampler on the parallel engine yields ticks with
        a per-worker ``workers`` section and heartbeat counters."""
        report = RunReport("heartbeat-live")
        sampler = TelemetrySampler(clock="wall", interval=0.01)
        triangulate_parallel(clustered_graph, workers=2, chunks=8,
                             report=report, telemetry=sampler)
        sampler.finish()
        ticks = sampler.ticks()
        assert ticks, "wall sampler recorded nothing"
        last = ticks[-1]
        workers = last["workers"]
        assert set(workers["per"]) == {"0", "1"}
        assert workers["total_chunks"] == 8
        assert workers["chunks_done"] == 8
        assert all(state["status"] == "done"
                   for state in workers["per"].values())
        assert report.registry.value("parallel.heartbeats") > 0

    def test_plain_run_has_no_heartbeat_counters(self, clustered_graph):
        """Without telemetry or a straggler policy the heartbeat channel
        stays out of the run entirely (the determinism-critical path)."""
        report = RunReport("heartbeat-off")
        triangulate_parallel(clustered_graph, workers=2, report=report)
        assert report.registry.value("parallel.heartbeats") == 0

    @pytest.mark.parametrize("workers", (1, 4))
    def test_no_fd_leak_with_heartbeats(self, clustered_graph, workers):
        """The heartbeat queue and telemetry add no lingering fds."""
        policy = StragglerPolicy(poll_interval=0.01)
        sampler = TelemetrySampler(clock="wall", interval=0.01)
        triangulate_parallel(clustered_graph, workers=workers, chunks=8,
                             telemetry=sampler, straggler=policy)  # warm-up
        gc.collect()
        before = len(os.listdir("/proc/self/fd"))
        for _ in range(3):
            sampler = TelemetrySampler(clock="wall", interval=0.01)
            triangulate_parallel(clustered_graph, workers=workers, chunks=8,
                                 telemetry=sampler, straggler=policy)
        gc.collect()
        assert len(os.listdir("/proc/self/fd")) <= before

    def test_no_dev_shm_leak_with_heartbeats(self, clustered_graph):
        before = set(os.listdir("/dev/shm"))
        policy = StragglerPolicy(poll_interval=0.01)
        for _ in range(2):
            triangulate_parallel(clustered_graph, workers=2, chunks=8,
                                 straggler=policy)
        assert set(os.listdir("/dev/shm")) <= before


class TestFaultMatrix:
    def test_slow_worker_flagged_but_run_completes(self, clustered_graph):
        """A worker made modestly slow is flagged as a straggler while
        the run still finishes with the right answer."""
        policy = StragglerPolicy(poll_interval=0.02, fraction=0.6,
                                 min_chunks=1, grace=0.0,
                                 inject_worker=1, inject_chunk_delay=0.05)
        report = RunReport("fault-slow")
        result = triangulate_parallel(clustered_graph, workers=3, chunks=12,
                                      straggler=policy, report=report)
        reference = triangulate_parallel(clustered_graph, workers=3, chunks=12)
        assert result.triangles == reference.triangles
        assert report.registry.value("parallel.straggler") >= 1

    def test_stalled_worker_raises_before_join(self, clustered_graph):
        """A worker stalled far past the deadline surfaces a timely
        ParallelError instead of hanging the parent at join."""
        import time

        policy = StragglerPolicy(poll_interval=0.02, deadline=0.25,
                                 inject_worker=0, inject_chunk_delay=30.0)
        report = RunReport("fault-stall")
        start = time.perf_counter()
        with pytest.raises(ParallelError, match="no heartbeat"):
            triangulate_parallel(clustered_graph, workers=3, chunks=12,
                                 straggler=policy, report=report)
        elapsed = time.perf_counter() - start
        assert elapsed < 10.0, f"detection took {elapsed:.1f}s"
        assert report.registry.value("parallel.straggler") >= 1

    def test_stalled_worker_leaves_no_shm(self, clustered_graph):
        before = set(os.listdir("/dev/shm"))
        policy = StragglerPolicy(poll_interval=0.02, deadline=0.2,
                                 inject_worker=0, inject_chunk_delay=30.0)
        with pytest.raises(ParallelError):
            triangulate_parallel(clustered_graph, workers=2, chunks=8,
                                 straggler=policy)
        assert set(os.listdir("/dev/shm")) <= before


class TestThreadedTelemetry:
    def test_threaded_engine_samples_wall_ticks(self, small_rmat_ordered, tmp_path):
        from repro.core import make_store, triangulate_threaded

        store = make_store(small_rmat_ordered, 1024)
        sampler = TelemetrySampler(clock="wall", interval=0.0001)
        triangulate_threaded(store, tmp_path / "pages", buffer_pages=8,
                             page_size=1024, telemetry=sampler)
        sampler.finish()
        assert len(sampler) >= 2
        assert sampler.ticks()[-1]["final"] is True

    def test_threaded_engine_rejects_sim_sampler(self, small_rmat_ordered, tmp_path):
        from repro.core import make_store, triangulate_threaded

        store = make_store(small_rmat_ordered, 1024)
        with pytest.raises(ConfigurationError, match="wall"):
            triangulate_threaded(store, tmp_path / "pages", buffer_pages=8,
                                 page_size=1024,
                                 telemetry=TelemetrySampler(clock="sim"))


class TestExposition:
    def test_expose_text_families(self):
        registry = _sampled_registry()
        registry.counter("triangles", phase="parallel").inc(7)
        text = expose_text(registry)
        assert "# TYPE repro_parallel_ops counter" in text
        assert "repro_parallel_ops 10" in text
        assert "repro_buffer_resident 4.0" in text
        assert 'repro_triangles{phase="parallel"} 7' in text
        assert 'repro_parallel_chunk_elapsed{quantile="0.5"} 0.5' in text
        assert "repro_parallel_chunk_elapsed_count 1" in text

    def test_expose_text_accepts_tick_records(self):
        sampler = TelemetrySampler(_sampled_registry(), clock="sim")
        tick = sampler.sample(0.0)
        text = expose_text(tick)
        assert "repro_parallel_ops 10" in text

    def test_expose_text_empty_registry(self):
        from repro.obs import MetricsRegistry

        assert expose_text(MetricsRegistry()) == ""
        assert expose_text({"counters": {}, "gauges": {},
                            "histograms": {}}) == ""

    def test_expose_text_unicode_name_folds_to_ascii(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("triångles.τotal").inc(3)
        text = expose_text(registry)
        # Outside-alphabet characters fold to underscores; the exposed
        # name stays within [a-zA-Z0-9_:].
        assert "repro_tri_ngles__otal 3" in text
        for line in text.splitlines():
            name = line.split("{")[0].split(" ")[-2 if line.startswith("#")
                                                 else 0]
            assert all(ch.isascii() for ch in name)

    def test_expose_text_escapes_label_values_and_help(self):
        text = expose_text({"counters": {
            'io.pages_read{path=a\\b\nc"d}': 1}},
            help_text={"io.pages_read": 'pages \\ read\n"raw"'})
        assert r'path="a\\b\nc\"d"' in text
        assert '# HELP repro_io_pages_read pages \\\\ read\\n"raw"' in text
        assert "\n\n" not in text  # escaped newlines never split a line

    def test_expose_text_help_and_sorted_series(self):
        text = expose_text({"counters": {
            "triangles{phase=total}": 9,
            "triangles{phase=external}": 4,
        }})
        lines = text.splitlines()
        assert lines[0] == "# HELP repro_triangles repro metric 'triangles'"
        assert lines[1] == "# TYPE repro_triangles counter"
        # Series within the family sort by label set regardless of
        # registry insertion order.
        assert lines[2] == 'repro_triangles{phase="external"} 4'
        assert lines[3] == 'repro_triangles{phase="total"} 9'

    def test_sparkline_shapes(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        ramp = sparkline([0.0, 1.0, 2.0, 3.0])
        assert ramp[0] == "▁" and ramp[-1] == "█"
        assert sparkline(list(range(100)), width=10) == sparkline(
            list(range(90, 100)))
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

    def test_sparkline_edge_cases(self):
        # Constant and single-point series are flat, not empty.
        assert sparkline([5.0]) == "▁"
        assert sparkline([5.0] * 4) == "▁▁▁▁"
        # Non-finite values render as dots and don't poison the scale.
        nan = float("nan")
        inf = float("inf")
        assert sparkline([nan, nan]) == "··"
        assert sparkline([inf, -inf]) == "··"
        mixed = sparkline([0.0, nan, 1.0, inf, 2.0])
        assert mixed[0] == "▁" and mixed[-1] == "█"
        assert mixed[1] == "·" and mixed[3] == "·"
        # The window trim happens before the finite scan.
        assert sparkline([nan, 1.0, 2.0], width=2) == sparkline([1.0, 2.0])

    def test_render_top_finish_only_tick(self):
        # A run short enough to emit only its finish() tick still renders
        # a frame (header + [final] marker), with every optional section
        # skipped.
        frame = render_top([{"t": 0.25, "seq": 0, "final": True,
                             "counters": {}, "rates": {}}])
        assert "[final]" in frame
        assert "t=0.250" in frame
        assert "eta" not in frame and "w0" not in frame
        assert "hottest rates" not in frame

    def test_jsonl_round_trip_tolerates_torn_tail(self, tmp_path):
        sampler = TelemetrySampler(_sampled_registry(), clock="sim")
        sampler.sample(0.0)
        sampler.sample(1.0)
        path = tmp_path / "ticks.jsonl"
        path.write_text(sampler.to_jsonl() + '{"t":2.0,"seq":2,"cou',
                        encoding="utf-8")
        ticks = read_telemetry_jsonl(path)
        assert [tick["t"] for tick in ticks] == [0.0, 1.0]

    def test_render_top_empty(self):
        assert render_top([]) == "(no telemetry samples)"

    def test_render_top_worker_frame(self):
        ticks = [
            {"t": float(i), "seq": i,
             "counters": {"buffer.hits": i * 8, "buffer.misses": i * 2,
                          "parallel.ops": i * 100},
             "rates": {"parallel.ops": 100.0},
             "workers": {
                 "per": {"0": {"chunks": i, "ops": i * 50, "steals": 0,
                               "age": 0.01, "status": "run"},
                         "1": {"chunks": i // 2, "ops": i * 25, "steals": 1,
                               "age": 0.02, "status": "straggler"}},
                 "chunks_done": i + i // 2, "total_chunks": 12,
                 "stragglers": 1}}
            for i in range(1, 5)
        ]
        frame = render_top(ticks)
        assert "w0" in frame and "w1" in frame
        assert "straggler" in frame
        assert "stragglers 1" in frame
        assert "eta" in frame
        assert "buffer hit rate" in frame
        assert "80.0% last" in frame  # 8 hits per 2 misses per tick

    def test_render_top_skips_absent_sections(self):
        frame = render_top([{"t": 0.0, "seq": 0, "counters": {},
                             "rates": {}}])
        assert "buffer hit rate" not in frame
        assert "w0" not in frame


class TestCli:
    def test_triangulate_telemetry_then_top(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list
        from repro.graph import generators

        graph = generators.erdos_renyi(120, 600, seed=3)
        graph_path = tmp_path / "g.txt"
        write_edge_list(graph, graph_path)
        out = tmp_path / "ticks.jsonl"
        assert main(["triangulate", "--input", str(graph_path),
                     "--method", "opt", "--telemetry", str(out)]) == 0
        ticks = read_telemetry_jsonl(out)
        assert ticks and ticks[-1]["final"] is True
        capsys.readouterr()
        assert main(["top", str(out), "--once"]) == 0
        frame = capsys.readouterr().out
        assert "repro top" in frame and "[final]" in frame
        assert main(["top", str(out), "--once", "--format", "prom"]) == 0
        assert "# TYPE" in capsys.readouterr().out

    def test_telemetry_rejects_in_memory_methods(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list
        from repro.graph import generators

        graph_path = tmp_path / "g.txt"
        write_edge_list(generators.erdos_renyi(50, 200, seed=1), graph_path)
        code = main(["triangulate", "--input", str(graph_path),
                     "--method", "forward",
                     "--telemetry", str(tmp_path / "t.jsonl")])
        assert code == 1
        assert "--telemetry applies" in capsys.readouterr().err
