"""Tests for slotted pages and page files."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PageFormatError, PageFullError, StorageError
from repro.storage.page import DEFAULT_PAGE_SIZE, SlottedPage, record_capacity
from repro.storage.pagefile import PageFile


class TestSlottedPage:
    def test_empty_round_trip(self):
        page = SlottedPage(256)
        decoded = SlottedPage.from_bytes(page.to_bytes())
        assert decoded.num_records == 0

    def test_single_record_round_trip(self):
        page = SlottedPage(256)
        page.add_record(7, np.array([1, 2, 9]), is_last=True)
        decoded = SlottedPage.from_bytes(page.to_bytes())
        records = decoded.records()
        assert len(records) == 1
        assert records[0].vertex == 7
        assert records[0].neighbors.tolist() == [1, 2, 9]
        assert records[0].is_last

    def test_continuation_flag_round_trip(self):
        page = SlottedPage(256)
        page.add_record(3, np.array([4, 5]), is_last=False)
        decoded = SlottedPage.from_bytes(page.to_bytes())
        assert not decoded.records()[0].is_last

    def test_page_full(self):
        page = SlottedPage(64)
        page.add_record(0, np.arange(1, record_capacity(64) + 1))
        with pytest.raises(PageFullError):
            page.add_record(1, np.array([2]))

    def test_serialized_size_exact(self):
        page = SlottedPage(512)
        page.add_record(0, np.array([1]))
        assert len(page.to_bytes()) == 512

    def test_rejects_too_small_page(self):
        with pytest.raises(PageFormatError):
            SlottedPage(8)

    def test_rejects_huge_neighbor_ids(self):
        page = SlottedPage(256)
        with pytest.raises(PageFormatError):
            page.add_record(0, np.array([2**33]))

    def test_empty_neighbor_record(self):
        page = SlottedPage(256)
        page.add_record(5, np.array([], dtype=np.int64))
        decoded = SlottedPage.from_bytes(page.to_bytes())
        assert decoded.records()[0].vertex == 5
        assert len(decoded.records()[0].neighbors) == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1000),
                st.lists(st.integers(0, 100000), max_size=8),
                st.booleans(),
            ),
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, specs):
        page = SlottedPage(DEFAULT_PAGE_SIZE)
        for vertex, neighbors, is_last in specs:
            page.add_record(vertex, np.array(sorted(set(neighbors)), dtype=np.int64),
                            is_last=is_last)
        decoded = SlottedPage.from_bytes(page.to_bytes())
        assert decoded.num_records == len(specs)
        for record, (vertex, neighbors, is_last) in zip(decoded.records(), specs):
            assert record.vertex == vertex
            assert record.neighbors.tolist() == sorted(set(neighbors))
            assert record.is_last == is_last

    def test_capacity_matches_fits(self):
        page = SlottedPage(128)
        cap = page.max_neighbors_fitting()
        assert page.fits(cap)
        assert not page.fits(cap + 1)


class TestPageFile:
    def test_round_trip(self, tmp_path):
        pages = [bytes([i]) * 128 for i in range(5)]
        path = tmp_path / "data.pages"
        with PageFile.create(path, pages, 128) as page_file:
            assert page_file.num_pages == 5
            for pid in range(5):
                assert page_file.read_page(pid) == pages[pid]

    def test_out_of_range(self, tmp_path):
        path = tmp_path / "d.pages"
        with PageFile.create(path, [b"x" * 64], 64) as page_file:
            with pytest.raises(StorageError):
                page_file.read_page(1)
            with pytest.raises(StorageError):
                page_file.read_page(-1)

    def test_wrong_page_size_rejected(self, tmp_path):
        with pytest.raises(StorageError):
            PageFile.create(tmp_path / "bad.pages", [b"xx"], 64)

    def test_corrupt_header_rejected(self, tmp_path):
        path = tmp_path / "c.pages"
        path.write_bytes(b"NOPE" + b"\x00" * 100)
        with pytest.raises(StorageError):
            PageFile.open(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = tmp_path / "t.pages"
        PageFile.create(path, [b"y" * 64] * 3, 64).close()
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(StorageError):
            PageFile.open(path)

    def test_read_after_close(self, tmp_path):
        path = tmp_path / "r.pages"
        page_file = PageFile.create(path, [b"z" * 64], 64)
        page_file.close()
        with pytest.raises(StorageError):
            page_file.read_page(0)
