"""Tests for the additional I/O formats: gzip and adjacency lists."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import GraphFormatError
from repro.graph.builder import from_edges
from repro.graph.io import (
    read_adjacency,
    read_edge_list,
    write_adjacency,
    write_edge_list,
)


class TestGzip:
    def test_edge_list_round_trip_gz(self, tmp_path, small_rmat):
        path = tmp_path / "graph.txt.gz"
        write_edge_list(small_rmat, path)
        # File must actually be gzip-compressed.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        loaded = read_edge_list(path, num_vertices=small_rmat.num_vertices)
        assert loaded == small_rmat

    def test_gz_smaller_than_plain(self, tmp_path, small_rmat):
        plain = tmp_path / "g.txt"
        packed = tmp_path / "g.txt.gz"
        write_edge_list(small_rmat, plain)
        write_edge_list(small_rmat, packed)
        assert packed.stat().st_size < plain.stat().st_size

    def test_external_gzip_readable(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("0 1\n1 2\n")
        assert read_edge_list(path).num_edges == 2


class TestAdjacency:
    def test_round_trip(self, tmp_path, small_rmat):
        path = tmp_path / "graph.adj"
        write_adjacency(small_rmat, path)
        assert read_adjacency(path) == small_rmat

    def test_round_trip_gz(self, tmp_path, clustered_graph):
        path = tmp_path / "graph.adj.gz"
        write_adjacency(clustered_graph, path)
        assert read_adjacency(path) == clustered_graph

    def test_isolated_vertices_preserved(self, tmp_path):
        graph = from_edges([(0, 1)], num_vertices=4)
        path = tmp_path / "g.adj"
        write_adjacency(graph, path)
        loaded = read_adjacency(path)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 1

    def test_missing_separator(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphFormatError):
            read_adjacency(path)

    def test_non_integer(self, tmp_path):
        path = tmp_path / "bad.adj"
        path.write_text("0: a b\n")
        with pytest.raises(GraphFormatError):
            read_adjacency(path)

    def test_empty_neighbor_lines(self, tmp_path):
        path = tmp_path / "g.adj"
        path.write_text("0: 1\n1: 0\n2:\n")
        loaded = read_adjacency(path)
        assert loaded.num_vertices == 3
        assert loaded.num_edges == 1
