"""Tests for the library extensions: compact-forward, k-cliques, kernels."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TriangulationError
from repro.graph import generators
from repro.graph.builder import from_edges
from repro.memory import (
    CollectSink,
    canonical_triangles,
    compact_forward,
    count_cliques,
    edge_iterator,
    list_cliques,
)
from repro.util.intersect import IntersectionKernel
from tests.conftest import nx_triangle_count


class TestCompactForward:
    def test_figure1(self, figure1):
        assert compact_forward(figure1).triangles == 5

    def test_matches_networkx(self, small_rmat):
        assert compact_forward(small_rmat).triangles == nx_triangle_count(small_rmat)

    def test_lists_same_triangles(self, small_rmat_ordered):
        reference = CollectSink()
        edge_iterator(small_rmat_ordered, reference)
        sink = CollectSink()
        compact_forward(small_rmat_ordered, sink)
        assert canonical_triangles(sink) == canonical_triangles(reference)

    def test_counts_merge_steps(self, small_rmat_ordered):
        result = compact_forward(small_rmat_ordered)
        merge = edge_iterator(small_rmat_ordered, kernel="merge")
        # Truncated merges can never cost more than full succ-list merges.
        assert 0 < result.cpu_ops <= merge.cpu_ops

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)), max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_property_agrees(self, edges):
        graph = from_edges(edges)
        assert compact_forward(graph).triangles == edge_iterator(graph).triangles


class TestCliques:
    def test_k1_is_vertices(self, figure1):
        assert count_cliques(figure1, 1).triangles == 8
        assert len(list(list_cliques(figure1, 1))) == 8

    def test_k2_is_edges(self, figure1):
        assert count_cliques(figure1, 2).triangles == figure1.num_edges

    def test_k3_is_triangles(self, figure1, small_rmat):
        assert count_cliques(figure1, 3).triangles == 5
        assert count_cliques(small_rmat, 3).triangles == nx_triangle_count(small_rmat)

    def test_k4_complete_graph(self):
        graph = generators.complete_graph(8)
        assert count_cliques(graph, 4).triangles == 70  # C(8, 4)
        assert count_cliques(graph, 8).triangles == 1
        assert count_cliques(graph, 9).triangles == 0

    def test_k4_figure1(self, figure1):
        # Figure 1 has no 4-cliques (no vertex pair shares two triangles
        # whose apexes are adjacent).
        assert count_cliques(figure1, 4).triangles == 0

    def test_listing_matches_count(self, clustered_graph):
        for k in (3, 4):
            listed = list(list_cliques(clustered_graph, k))
            assert len(listed) == count_cliques(clustered_graph, k).triangles
            assert len(set(listed)) == len(listed)
            for clique in listed[:50]:
                assert list(clique) == sorted(clique)
                for i in range(k):
                    for j in range(i + 1, k):
                        assert clustered_graph.has_edge(clique[i], clique[j])

    def test_k4_matches_networkx(self, clustered_graph):
        import networkx as nx

        nxg = nx.Graph(list(clustered_graph.edges()))
        expected = sum(1 for c in nx.enumerate_all_cliques(nxg) if len(c) == 4)
        assert count_cliques(clustered_graph, 4).triangles == expected

    def test_validation(self, figure1):
        with pytest.raises(TriangulationError):
            count_cliques(figure1, 0)
        with pytest.raises(TriangulationError):
            list(list_cliques(figure1, -1))


class TestKernelParameter:
    @pytest.mark.parametrize("kernel", list(IntersectionKernel))
    def test_all_kernels_agree(self, small_rmat_ordered, kernel):
        expected = edge_iterator(small_rmat_ordered).triangles
        assert edge_iterator(small_rmat_ordered, kernel=kernel).triangles == expected

    def test_kernel_listing_identical(self, clustered_graph):
        reference = CollectSink()
        edge_iterator(clustered_graph, reference)
        for kernel in IntersectionKernel:
            sink = CollectSink()
            edge_iterator(clustered_graph, sink, kernel=kernel)
            assert canonical_triangles(sink) == canonical_triangles(reference)

    def test_hash_kernel_matches_analytic_ops(self, small_rmat_ordered):
        analytic = edge_iterator(small_rmat_ordered).cpu_ops
        hashed = edge_iterator(small_rmat_ordered, kernel="hash").cpu_ops
        assert hashed == analytic
