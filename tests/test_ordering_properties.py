"""Hypothesis properties of the vertex-ordering catalogue.

Orderings silently corrupt results when a mapping is not a permutation
or when a relabeled run lists different triangles; they silently corrupt
*costs* when the measured-op heuristic disagrees with what the engine
actually charges.  These properties pin all of it, over arbitrary simple
graphs:

* every ordering mapping is a valid permutation of the vertex ids;
* triangle listings are isomorphic under relabeling — same count, and
  the oracle's triangles map exactly onto the relabeled oracle's;
* the degeneracy order respects core numbers (non-decreasing along the
  peel sequence);
* :func:`~repro.graph.ordering.ordering_op_cost` equals the relabeled
  engine's measured Eq. 3 bill exactly;
* :func:`~repro.graph.ordering.choose_ordering` is deterministic per
  graph seed and actually picks the measured minimum.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import from_edges
from repro.graph.cores import core_numbers, peeling_order
from repro.graph.generators import rmat
from repro.graph.ordering import (
    AUTO_CANDIDATES,
    Ordering,
    apply_ordering,
    choose_ordering,
    ordering_costs,
    ordering_op_cost,
)
from repro.memory import edge_iterator
from repro.verify import oracle_triangles

#: An arbitrary simple graph as (num_vertices, edge list) — same shape
#: as the chunk-planning property suite.
graphs = st.integers(min_value=0, max_value=40).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(
            st.tuples(st.integers(0, max(0, n - 1)),
                      st.integers(0, max(0, n - 1))),
            max_size=120,
        ) if n > 0 else st.just([]),
    )
)

#: Every ordering with a direct mapping (AUTO resolves to one of these).
DIRECT_ORDERINGS = [ordering for ordering in Ordering
                    if ordering is not Ordering.AUTO]


def _build(spec):
    num_vertices, edges = spec
    return from_edges([(u, v) for u, v in edges if u != v],
                      num_vertices=num_vertices)


@settings(max_examples=60, deadline=None)
@given(spec=graphs, ordering=st.sampled_from(DIRECT_ORDERINGS))
def test_every_mapping_is_a_permutation(spec, ordering):
    graph = _build(spec)
    _, mapping = apply_ordering(graph, ordering, seed=7)
    n = graph.num_vertices
    assert len(mapping) == n
    assert sorted(mapping.tolist()) == list(range(n))


@settings(max_examples=40, deadline=None)
@given(spec=graphs, ordering=st.sampled_from(DIRECT_ORDERINGS))
def test_listings_are_isomorphic_under_relabeling(spec, ordering):
    graph = _build(spec)
    relabeled, mapping = apply_ordering(graph, ordering, seed=7)
    original = oracle_triangles(graph)
    remapped = sorted(
        tuple(sorted((int(mapping[u]), int(mapping[v]), int(mapping[w]))))
        for u, v, w in original
    )
    assert remapped == [tuple(t) for t in oracle_triangles(relabeled)]


@settings(max_examples=60, deadline=None)
@given(spec=graphs)
def test_degeneracy_order_respects_core_numbers(spec):
    graph = _build(spec)
    core = core_numbers(graph)
    order = peeling_order(graph)
    assert sorted(order.tolist()) == list(range(graph.num_vertices))
    along_peel = core[order]
    assert (np.diff(along_peel) >= 0).all(), (
        "core numbers must be non-decreasing along the peel sequence")


@settings(max_examples=40, deadline=None)
@given(spec=graphs, ordering=st.sampled_from(DIRECT_ORDERINGS))
def test_op_cost_formula_matches_measured_engine_bill(spec, ordering):
    graph = _build(spec)
    relabeled, mapping = apply_ordering(graph, ordering, seed=7)
    assert ordering_op_cost(graph, mapping) == edge_iterator(relabeled).cpu_ops


@settings(max_examples=30, deadline=None)
@given(spec=graphs)
def test_choose_ordering_picks_the_measured_minimum(spec):
    graph = _build(spec)
    chosen = choose_ordering(graph)
    costs = ordering_costs(graph)
    assert chosen in AUTO_CANDIDATES
    assert costs[chosen] == min(costs.values())
    # Deterministic tie-break: the earliest candidate at the minimum.
    assert chosen == next(ordering for ordering in AUTO_CANDIDATES
                          if costs[ordering] == costs[chosen])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 50))
def test_choose_ordering_is_deterministic_per_graph_seed(seed):
    first = choose_ordering(rmat(64, 300, seed=seed))
    second = choose_ordering(rmat(64, 300, seed=seed))
    assert first == second
    # AUTO resolves to the same relabeled graph both times.
    graph_a, map_a = apply_ordering(rmat(64, 300, seed=seed), Ordering.AUTO)
    graph_b, map_b = apply_ordering(rmat(64, 300, seed=seed), Ordering.AUTO)
    assert (map_a == map_b).all()
    assert (graph_a.indptr == graph_b.indptr).all()
    assert (graph_a.indices == graph_b.indices).all()
