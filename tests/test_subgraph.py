"""Tests for the disk-based 4-clique join."""

from __future__ import annotations

import pytest

from repro.core import make_store, triangulate_disk
from repro.graph import generators
from repro.graph.ordering import apply_ordering
from repro.memory import CollectSink, count_cliques
from repro.subgraph import four_cliques_disk


class GroupSink:
    """Collects nested groups as the join's input."""

    def __init__(self):
        self.groups: list[tuple[int, int, list[int]]] = []
        self.count = 0

    def emit(self, u, v, ws):
        self.groups.append((int(u), int(v), [int(w) for w in ws]))
        self.count += len(ws)


def run_join(graph, *, page_size=256, buffer_pages=4, collect=False):
    store = make_store(graph, page_size)
    sink = GroupSink()
    triangulate_disk(store, buffer_pages=buffer_pages, sink=sink)
    return four_cliques_disk(store, sink.groups, buffer_pages=6,
                             collect=collect)


class TestFourCliques:
    def test_complete_graph(self):
        result = run_join(generators.complete_graph(9))
        assert result.cliques == 126  # C(9, 4)

    def test_figure1_has_none(self, figure1):
        assert run_join(figure1).cliques == 0

    def test_triangle_free(self):
        assert run_join(generators.cycle_graph(30)).cliques == 0

    @pytest.mark.parametrize("seed", [6, 7])
    def test_matches_in_memory_cliques(self, seed):
        graph, _ = apply_ordering(
            generators.holme_kim(250, 6, 0.5, seed=seed), "degree"
        )
        result = run_join(graph)
        assert result.cliques == count_cliques(graph, 4).triangles

    def test_collected_cliques_are_real(self):
        graph, _ = apply_ordering(
            generators.holme_kim(150, 5, 0.6, seed=9), "degree"
        )
        result = run_join(graph, collect=True)
        assert len(result.listed) == result.cliques
        assert len(set(result.listed)) == result.cliques
        for u, v, w, x in result.listed:
            assert u < v < w < x
            for a, b in [(u, v), (u, w), (u, x), (v, w), (v, x), (w, x)]:
                assert graph.has_edge(a, b)

    def test_chunked_groups_merged(self):
        """Split groups for one (u, v) prefix must not lose pairs."""
        graph = generators.complete_graph(10)
        store = make_store(graph, 256)
        sink = GroupSink()
        triangulate_disk(store, buffer_pages=4, sink=sink)
        # Artificially split every group into singleton chunks.
        shredded = [(u, v, [w]) for u, v, ws in sink.groups for w in ws]
        whole = four_cliques_disk(store, sink.groups, buffer_pages=6)
        split = four_cliques_disk(store, shredded, buffer_pages=6)
        assert whole.cliques == split.cliques == 210  # C(10, 4)

    def test_buffer_pool_absorbs_reuse(self):
        graph = generators.complete_graph(16)
        result = run_join(graph, buffer_pages=8)
        assert result.buffer_hits > 0
        assert result.pages_read > 0
        assert result.elapsed > 0
