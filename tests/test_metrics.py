"""Tests for graph metrics against networkx ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import generators
from repro.graph.metrics import (
    clustering_coefficients,
    global_clustering_coefficient,
    per_vertex_triangles,
    transitivity,
    trigonal_connectivity,
)


def _nx_graph(graph):
    import networkx as nx

    nxg = nx.Graph(list(graph.edges()))
    nxg.add_nodes_from(range(graph.num_vertices))
    return nxg


class TestPerVertexTriangles:
    def test_figure1(self, figure1):
        counts = per_vertex_triangles(figure1)
        # c (vertex 2) participates in 4 of the 5 triangles.
        assert counts[2] == 4
        assert counts.sum() == 3 * 5

    def test_matches_networkx(self, clustered_graph):
        import networkx as nx

        expected = nx.triangles(_nx_graph(clustered_graph))
        counts = per_vertex_triangles(clustered_graph)
        assert all(counts[v] == expected[v] for v in range(clustered_graph.num_vertices))


class TestClustering:
    def test_complete_graph_is_one(self):
        graph = generators.complete_graph(6)
        assert np.allclose(clustering_coefficients(graph), 1.0)
        assert global_clustering_coefficient(graph) == pytest.approx(1.0)

    def test_triangle_free_is_zero(self):
        graph = generators.cycle_graph(12)
        assert global_clustering_coefficient(graph) == 0.0

    def test_matches_networkx(self, clustered_graph):
        import networkx as nx

        expected = nx.average_clustering(_nx_graph(clustered_graph))
        assert global_clustering_coefficient(clustered_graph) == pytest.approx(expected)

    def test_transitivity_matches_networkx(self, clustered_graph):
        import networkx as nx

        expected = nx.transitivity(_nx_graph(clustered_graph))
        assert transitivity(clustered_graph) == pytest.approx(expected)

    def test_empty_graph(self):
        from repro.graph.builder import GraphBuilder

        graph = GraphBuilder(0).build()
        assert global_clustering_coefficient(graph) == 0.0
        assert transitivity(graph) == 0.0


class TestTrigonalConnectivity:
    def test_figure1_edges(self, figure1):
        # edge (c=2, f=5) participates in triangles (c,d,f) and (c,f,g).
        assert trigonal_connectivity(figure1, 2, 5) == 2
        # edge (a=0, b=1) participates only in (a,b,c).
        assert trigonal_connectivity(figure1, 0, 1) == 1

    def test_missing_edge_is_zero(self, figure1):
        assert trigonal_connectivity(figure1, 0, 7) == 0
