"""Tests for the nested-output reader and TriangleStore queries."""

from __future__ import annotations

import io

import pytest

from repro.core import NestedOutputWriter, triangulate_disk
from repro.core.result_store import TriangleStore, read_nested_groups
from repro.errors import GraphFormatError
from repro.graph.metrics import per_vertex_triangles, trigonal_connectivity
from repro.memory import edge_iterator


class TestReader:
    def test_round_trip_stream(self):
        stream = io.BytesIO()
        writer = NestedOutputWriter(stream, page_size=64)
        writer.emit(0, 1, [2, 3])
        writer.emit(4, 5, [9])
        writer.close()
        stream.seek(0)
        groups = list(read_nested_groups(stream))
        assert groups == [(0, 1, [2, 3]), (4, 5, [9])]

    def test_round_trip_file(self, tmp_path, small_rmat_ordered):
        path = tmp_path / "triangles.nested"
        with NestedOutputWriter(path) as writer:
            result = triangulate_disk(small_rmat_ordered, page_size=256,
                                      buffer_pages=6, sink=writer)
        total = sum(len(ws) for _, _, ws in read_nested_groups(path))
        assert total == result.triangles

    def test_truncated_header_rejected(self):
        stream = io.BytesIO(b"\x01\x02\x03")
        with pytest.raises(GraphFormatError):
            list(read_nested_groups(stream))

    def test_truncated_body_rejected(self):
        stream = io.BytesIO()
        writer = NestedOutputWriter(stream)
        writer.emit(0, 1, [2, 3, 4])
        writer.close()
        data = stream.getvalue()[:-2]
        with pytest.raises(GraphFormatError):
            list(read_nested_groups(io.BytesIO(data)))

    def test_empty_file(self):
        assert list(read_nested_groups(io.BytesIO())) == []


class TestTriangleStore:
    @pytest.fixture()
    def store(self, tmp_path, clustered_graph):
        path = tmp_path / "t.nested"
        with NestedOutputWriter(path) as writer:
            edge_iterator(clustered_graph, writer)
        return TriangleStore.from_file(path), clustered_graph

    def test_total_count(self, store):
        triangle_store, graph = store
        assert len(triangle_store) == edge_iterator(graph).triangles

    def test_per_vertex_matches_metrics(self, store):
        triangle_store, graph = store
        expected = per_vertex_triangles(graph)
        for v in range(graph.num_vertices):
            assert triangle_store.triangle_count_of_vertex(v) == expected[v]

    def test_edge_query_matches_trigonal_connectivity(self, store):
        triangle_store, graph = store
        for u, v in list(graph.edges())[:100]:
            assert (
                triangle_store.trigonal_connectivity(u, v)
                == trigonal_connectivity(graph, u, v)
            )

    def test_edge_query_symmetric(self, store):
        triangle_store, graph = store
        u, v = next(iter(graph.edges()))
        assert (triangle_store.triangles_of_edge(u, v)
                == triangle_store.triangles_of_edge(v, u))

    def test_top_vertices_sorted(self, store):
        triangle_store, _graph = store
        top = triangle_store.top_vertices(5)
        counts = [count for _, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_triangles_canonical(self, store):
        triangle_store, _graph = store
        for triangle in triangle_store:
            assert list(triangle) == sorted(triangle)

    def test_missing_vertex(self, store):
        triangle_store, _graph = store
        assert triangle_store.triangles_of_vertex(10**6) == []
        assert triangle_store.trigonal_connectivity(10**6, 0) == 0


class TestRunCheckpoint:
    """Iteration-level checkpoint/resume (see docs/robustness.md)."""

    def _checkpointed_run(self, graph, checkpoint):
        from repro.memory.base import CollectSink

        sink = CollectSink()
        triangulate_disk(graph, page_size=256, buffer_pages=4, sink=sink,
                         checkpoint=checkpoint)
        return sorted(sink.triangles)

    def test_resume_replays_exact_output(self, small_rmat_ordered, tmp_path):
        from repro.core import RunCheckpoint

        first = RunCheckpoint()
        expected = self._checkpointed_run(small_rmat_ordered, first)
        assert len(first.committed()) > 1
        path = first.save(tmp_path / "run.ckpt.json")
        resumed = RunCheckpoint.load(path)
        replayed = self._checkpointed_run(small_rmat_ordered, resumed)
        assert replayed == expected

    def test_partial_checkpoint_resumes_midway(self, small_rmat_ordered):
        from repro.core import RunCheckpoint

        full = RunCheckpoint()
        expected = self._checkpointed_run(small_rmat_ordered, full)
        # Drop the tail half of the committed iterations: the resumed run
        # replays the head and re-triangulates only the tail.
        partial = RunCheckpoint.from_dict(full.to_dict())
        committed = partial.committed()
        for index in committed[len(committed) // 2:]:
            del partial._iterations[index]
        replayed = self._checkpointed_run(small_rmat_ordered, partial)
        assert replayed == expected
        assert partial.committed() == committed

    def test_geometry_mismatch_rejected(self, small_rmat_ordered, figure1):
        from repro.core import RunCheckpoint
        from repro.errors import CheckpointError

        checkpoint = RunCheckpoint()
        self._checkpointed_run(small_rmat_ordered, checkpoint)
        with pytest.raises(CheckpointError):
            self._checkpointed_run(figure1, checkpoint)

    def test_double_commit_rejected(self):
        from repro.core import RunCheckpoint
        from repro.errors import CheckpointError

        checkpoint = RunCheckpoint()
        checkpoint.record(0, 0, 3, [(0, 1, [2])])
        with pytest.raises(CheckpointError):
            checkpoint.record(0, 0, 3, [(0, 1, [2])])

    def test_bad_payload_rejected(self):
        from repro.core import RunCheckpoint
        from repro.errors import CheckpointError

        with pytest.raises(CheckpointError):
            RunCheckpoint.from_dict({"schema": "something/else"})
        with pytest.raises(CheckpointError):
            RunCheckpoint.from_dict({
                "schema": "repro.core/run-checkpoint", "version": 99,
            })

    def test_threaded_engine_checkpoints_too(self, small_rmat_ordered,
                                             tmp_path):
        from repro.core import RunCheckpoint
        from repro.core.threaded import triangulate_threaded
        from repro.memory.base import CollectSink

        first = RunCheckpoint()
        sink = CollectSink()
        triangulate_threaded(small_rmat_ordered, tmp_path / "a",
                             buffer_pages=4, page_size=256, sink=sink,
                             checkpoint=first)
        expected = sorted(sink.triangles)
        resumed = RunCheckpoint.from_dict(first.to_dict())
        sink2 = CollectSink()
        result = triangulate_threaded(small_rmat_ordered, tmp_path / "b",
                                      buffer_pages=4, page_size=256,
                                      sink=sink2, checkpoint=resumed)
        assert sorted(sink2.triangles) == expected
        assert result.pages_read == 0  # everything replayed, nothing read
