"""Command-line interface: ``opt-repro`` / ``python -m repro``.

Subcommands
-----------
``generate``
    Produce a synthetic graph (R-MAT, Erdős–Rényi, Holme–Kim, BA) as an
    edge-list or binary file.
``triangulate``
    Run any method — disk-based OPT variants, baselines, or in-memory
    iterators — over an input file or a named dataset stand-in and print
    the result summary.
``datasets``
    List the built-in dataset stand-ins with their (generated) statistics.
``metrics``
    Compute triangle-derived network metrics for a graph.

Observability: ``triangulate --report out.json`` captures the run as a
:class:`~repro.obs.RunReport` (phase spans, SSD/buffer counters, and the
derived ``overhead_vs_ideal``); ``report --run out.json`` pretty-prints
one.  ``triangulate --trace out.trace.json`` additionally records the
run's causal event timeline (Chrome trace_event JSON — load it in
Perfetto or ``chrome://tracing``): simulated time for the disk-based
methods, wall time for ``--method opt-threaded``.  ``trace
out.trace.json`` summarizes a saved trace as overlap analytics plus an
ASCII Gantt chart.  ``triangulate --telemetry out.jsonl`` streams live
tick records (counter rates, gauges, histogram percentiles, per-worker
heartbeats) to a JSONL file while the run is going — simulated clock for
the disk-based methods (byte-deterministic), wall clock for
``opt-threaded`` / ``opt-parallel`` — and ``top out.jsonl`` renders that
stream as a live ASCII dashboard (``--once`` for a single frame,
``--format prom`` for Prometheus text exposition).  The global
``--verbose`` / ``--quiet`` flags configure the ``repro.*`` logger
hierarchy.

Robustness: ``triangulate --fault-kind transient --fault-rate 0.2``
injects a seeded :class:`~repro.storage.faults.FaultPlan` into the
disk-based methods (recovery per ``--max-retries``), and
``--checkpoint ckpt.json`` commits each completed iteration so an
interrupted run resumes without re-listing triangles — see
``docs/robustness.md``.

Static analysis: ``lint`` runs the project-specific AST rules (lockset
checker, sim-purity, obs-vocabulary conformance, ...) over the tree —
the same gate as ``python -m repro.lint``; see
``docs/static-analysis.md``.

Performance attribution: ``profile`` runs a method with the
cost-attribution table enabled and renders where the Eq. 3 operations go
— ``--format table`` (ASCII, ops share per ``(phase, kernel, source,
degree-bucket)`` cell), ``collapsed`` (flame-graph collapsed stacks), or
``speedscope`` (a speedscope.app-loadable JSON document).  ``--sample``
additionally runs the wall stack sampler and reports its overhead.
``perf`` maintains the cross-run history index: ``perf ingest`` appends
``BENCH_*.json`` headlines, ``perf trend`` prints sparkline
trajectories, ``perf check`` exits non-zero on a regression against the
best-of-history baseline — see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ReproError
from repro.obs import configure_logging
from repro.graph import datasets, generators
from repro.graph.io import (
    read_adjacency,
    read_binary,
    read_edge_list,
    write_binary,
    write_edge_list,
)
from repro.graph.ordering import apply_ordering
from repro.util.tables import format_table

__all__ = ["main"]


def _load_graph(args) -> "object":
    if args.dataset:
        graph = datasets.load(args.dataset)
    else:
        path = Path(args.input)
        suffixes = "".join(path.suffixes)
        if path.suffix == ".bin":
            graph = read_binary(path)
        elif ".adj" in suffixes:
            graph = read_adjacency(path)
        else:
            graph = read_edge_list(path)
    if getattr(args, "ordering", "degree") != "natural":
        graph, _ = apply_ordering(graph, args.ordering)
    return graph


def _cmd_generate(args) -> int:
    if args.model == "rmat":
        graph = generators.rmat(args.vertices, args.edges, seed=args.seed)
    elif args.model == "erdos-renyi":
        graph = generators.erdos_renyi(args.vertices, args.edges, seed=args.seed)
    elif args.model == "holme-kim":
        graph = generators.holme_kim(args.vertices, args.attach, args.triad,
                                     seed=args.seed)
    else:
        graph = generators.barabasi_albert(args.vertices, args.attach,
                                           seed=args.seed)
    path = Path(args.output)
    if path.suffix == ".bin":
        write_binary(graph, path)
    else:
        write_edge_list(graph, path)
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges to {path}")
    return 0


def _build_fault_plan(args):
    """A (plan, policy) pair from the triangulate fault flags, or Nones."""
    from repro.storage.faults import FaultPlan, FaultSpec, RetryPolicy

    if not args.fault_kind:
        return None, None
    specs = [
        FaultSpec(kind, rate=args.fault_rate, delay=args.fault_delay)
        for kind in args.fault_kind
    ]
    plan = FaultPlan(specs, seed=args.fault_seed)
    policy = RetryPolicy(max_retries=args.max_retries)
    return plan, policy


def _cmd_triangulate(args) -> int:
    from repro.baselines import cc_ds, cc_seq, graphchi_tri, mgt
    from repro.core import RunCheckpoint, make_store, triangulate_disk
    from repro.memory import edge_iterator, forward, matrix_count, vertex_iterator
    from repro.obs import EventTracer, RunReport, write_chrome_trace
    from repro.sim import CostModel

    graph = _load_graph(args)
    cost = CostModel()
    method = args.method
    report = None
    if args.report:
        report = RunReport(method, meta={
            "source": args.dataset or args.input,
            "method": method,
            "ordering": getattr(args, "ordering", "degree"),
        })
    traced_methods = ("opt", "opt-vi", "mgt", "opt-threaded", "opt-parallel")
    fault_methods = ("opt", "opt-vi", "mgt", "opt-threaded")
    tracer = None
    if args.trace:
        if method not in traced_methods:
            print("error: --trace applies to the disk-based and parallel "
                  "methods (opt, opt-vi, mgt, opt-threaded, opt-parallel) "
                  "only", file=sys.stderr)
            return 1
        # Disk methods replay on the deterministic simulated clock; the
        # threaded and process-parallel engines record real timelines in
        # wall time.
        tracer = (EventTracer.wall()
                  if method in ("opt-threaded", "opt-parallel")
                  else EventTracer.sim())
    telemetry = None
    telemetry_stream = None
    if args.telemetry:
        if method not in traced_methods:
            print("error: --telemetry applies to the disk-based and parallel "
                  "methods (opt, opt-vi, mgt, opt-threaded, opt-parallel) "
                  "only", file=sys.stderr)
            return 1
        from repro.obs import TelemetrySampler

        telemetry_path = Path(args.telemetry)
        if str(telemetry_path.parent) not in ("", "."):
            telemetry_path.parent.mkdir(parents=True, exist_ok=True)
        # Stream ticks live (one flushed JSON line each) so a concurrent
        # `opt-repro top out.jsonl` can follow the run as it goes.  The
        # disk-based methods sample on the simulated clock at iteration
        # boundaries (byte-deterministic stream); the threaded and
        # process-parallel engines sample in wall time.
        telemetry_stream = telemetry_path.open("w", encoding="utf-8")
        telemetry = TelemetrySampler(
            clock=("wall" if method in ("opt-threaded", "opt-parallel")
                   else "sim"),
            stream=telemetry_stream,
        )
    fault_plan, retry_policy = _build_fault_plan(args)
    if fault_plan and method not in fault_methods:
        print("error: --fault-kind applies to the disk-based methods "
              "(opt, opt-vi, mgt, opt-threaded) only", file=sys.stderr)
        return 1
    if args.checkpoint and method not in ("opt", "opt-vi", "mgt"):
        print("error: --checkpoint applies to the disk-based "
              "methods (opt, opt-vi, mgt) only", file=sys.stderr)
        return 1
    checkpoint = None
    if args.checkpoint:
        ckpt_path = Path(args.checkpoint)
        if ckpt_path.exists():
            checkpoint = RunCheckpoint.load(ckpt_path)
            print(f"resuming from checkpoint {ckpt_path} "
                  f"({len(checkpoint.committed())} committed iterations)")
        else:
            checkpoint = RunCheckpoint()
    if method in ("opt", "opt-vi", "mgt"):
        plugin = {"opt": "edge-iterator", "opt-vi": "vertex-iterator",
                  "mgt": "mgt"}[method]
        store = make_store(graph, args.page_size)
        ideal_cpu_ops = None
        if report is not None:
            # The paper's ideal cost uses the in-memory EdgeIterator≻ op
            # count (Fig. 3a's reference), so the report's
            # overhead_vs_ideal is computed against the same baseline.
            ideal_cpu_ops = edge_iterator(graph).cpu_ops
        result = triangulate_disk(store, plugin=plugin,
                                  buffer_ratio=args.buffer_ratio,
                                  cost=cost, cores=args.cores,
                                  report=report, ideal_cpu_ops=ideal_cpu_ops,
                                  fault_plan=fault_plan,
                                  retry_policy=retry_policy,
                                  checkpoint=checkpoint,
                                  trace=tracer, telemetry=telemetry)
        if checkpoint is not None:
            path = checkpoint.save(args.checkpoint)
            print(f"wrote checkpoint to {path}")
    elif method == "opt-threaded":
        import tempfile

        from repro.core import triangulate_threaded

        store = make_store(graph, args.page_size)
        buffer_pages = max(2, int(round(store.num_pages * args.buffer_ratio)))
        with tempfile.TemporaryDirectory(prefix="opt-threaded-") as tmp:
            result = triangulate_threaded(store, tmp,
                                          buffer_pages=buffer_pages,
                                          page_size=args.page_size,
                                          report=report,
                                          fault_plan=fault_plan,
                                          retry_policy=retry_policy,
                                          trace=tracer,
                                          telemetry=telemetry)
    elif method == "opt-parallel":
        from repro.parallel import triangulate_parallel

        result = triangulate_parallel(graph, workers=args.workers,
                                      report=report, trace=tracer,
                                      telemetry=telemetry)
    elif method in ("cc-seq", "cc-ds", "graphchi"):
        from repro.core import buffer_pages_for_ratio, make_store as _ms

        store = _ms(graph, args.page_size)
        pages = buffer_pages_for_ratio(store, args.buffer_ratio)
        if method == "cc-seq":
            result = cc_seq(graph, buffer_pages=pages, page_size=args.page_size,
                            cost=cost)
        elif method == "cc-ds":
            result = cc_ds(graph, buffer_pages=pages, page_size=args.page_size,
                           cost=cost)
        else:
            result = graphchi_tri(graph, buffer_pages=pages,
                                  page_size=args.page_size, cost=cost,
                                  cores=args.cores)
    elif method == "compose":
        from repro.errors import ConfigurationError
        from repro.exec import compose

        try:
            engine = compose(args.source, args.kernel, args.executor,
                             graph=graph, workers=args.workers,
                             page_size=args.page_size)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        result = engine.run(report=report)
        method = f"compose:{engine.describe()}"
    else:
        runner = {"edge-iterator": edge_iterator,
                  "vertex-iterator": vertex_iterator,
                  "forward": forward,
                  "matrix": matrix_count}[method]
        result = runner(graph)

    elapsed_label = ("elapsed (wall s)"
                     if method in ("opt-threaded", "opt-parallel")
                     or method.startswith("compose:")
                     else "elapsed (simulated s)")
    rows = [
        ("triangles", result.triangles),
        ("cpu ops", result.cpu_ops),
        ("pages read", result.pages_read),
        ("pages written", result.pages_written),
        ("iterations", result.iterations),
        (elapsed_label, result.elapsed),
    ]
    print(format_table(["measure", "value"], rows,
                       title=f"{method} on {args.dataset or args.input}"))
    if telemetry is not None:
        telemetry.finish()
        telemetry_stream.close()
        print(f"wrote {len(telemetry)} telemetry samples to {args.telemetry}")
    if tracer is not None:
        path = write_chrome_trace(args.trace, tracer)
        print(f"wrote {len(tracer)} trace events to {path} "
              f"(open in Perfetto / chrome://tracing)")
    if fault_plan is not None:
        counts = fault_plan.log.counts()
        fault_rows = sorted(counts.items()) or [("(no faults fired)", 0)]
        print(format_table(["event", "count"], fault_rows,
                           title="Fault injection summary"))
    if report is not None:
        if "report" not in result.extra:
            # Baselines and in-memory methods don't record internally yet;
            # export their result counters through the same schema.
            report.counter("triangles", phase="total").inc(result.triangles)
            report.counter("cpu.ops").inc(result.cpu_ops)
            report.counter("io.pages_read").inc(result.pages_read)
            report.counter("io.pages_written").inc(result.pages_written)
            report.counter("io.pages_buffered").inc(result.pages_buffered)
            report.gauge("run.elapsed_simulated").set(result.elapsed)
        path = report.write_json(args.report)
        print(f"wrote run report to {path}")
    return 0


def _cmd_layout(args) -> int:
    from repro.preprocess import build_store_external

    work_dir = args.work_dir or str(Path(args.output) / "work")
    store, _mapping, stats = build_store_external(
        args.input,
        work_dir,
        page_size=args.page_size,
        chunk_edges=args.chunk_edges,
        degree_order=not args.natural_order,
    )
    pages_path, index_path = store.save(args.output)
    rows = [
        ("vertices", stats.num_vertices),
        ("edges", stats.num_edges),
        ("phase-1 runs", stats.runs_phase1),
        ("phase-2 runs", stats.runs_phase2),
        ("pages", stats.num_pages),
    ]
    print(format_table(["measure", "value"], rows,
                       title=f"packed {args.input} -> {pages_path}"))
    return 0


def _cmd_cliques(args) -> int:
    from repro.memory import count_cliques

    graph = _load_graph(args)
    result = count_cliques(graph, args.k)
    print(format_table(
        ["measure", "value"],
        [("k", args.k), (f"{args.k}-cliques", result.triangles),
         ("cpu ops", result.cpu_ops)],
        title=f"{args.k}-clique count",
    ))
    return 0


def _cmd_verify(args) -> int:
    from repro.verify import verify_methods

    graph = _load_graph(args)
    report = verify_methods(graph, page_size=args.page_size,
                            buffer_pages=args.buffer_pages,
                            include_threaded=not args.skip_threaded)
    rows = sorted(report.counts.items())
    print(format_table(["method", "triangles"], rows,
                       title="Cross-method verification"))
    if report.consistent:
        print(f"\nall {len(report.counts)} methods agree: "
              f"{report.expected:,} triangles")
        return 0
    print(f"\nDISAGREEMENT: {report.disagreements()}")
    return 1


def _cmd_bench(args) -> int:
    import time

    from repro.experiments import experiment_names, run_experiment

    if args.list:
        for name in experiment_names():
            print(name)
        return 0
    names = args.experiments or experiment_names()
    unknown = [n for n in names if n not in experiment_names()]
    if unknown:
        print(f"error: unknown experiment(s) {', '.join(unknown)}; "
              f"available: {', '.join(experiment_names())}", file=sys.stderr)
        return 1
    results_dir = Path(args.results_dir) if args.results_dir else None
    if results_dir:
        results_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        start = time.perf_counter()
        result = run_experiment(name)
        wall = time.perf_counter() - start
        print(f"\n{'=' * 72}\n{result.text}\n{'-' * 72}")
        print(f"{name}: {len(result.checks)} claims verified in {wall:.1f}s")
        if results_dir:
            (results_dir / f"{name}.txt").write_text(result.text + "\n",
                                                     encoding="utf-8")
    return 0


def _cmd_report(args) -> int:
    if args.run:
        import json

        from repro.obs import RunReport

        try:
            text = Path(args.run).read_text(encoding="utf-8")
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            payloads = [json.loads(text)]  # one report per file
        except json.JSONDecodeError:
            # JSONL trajectory: one report per line.
            try:
                payloads = [json.loads(line)
                            for line in filter(None, map(str.strip,
                                                         text.splitlines()))]
            except json.JSONDecodeError as exc:
                print(f"error: {args.run}: not JSON or JSONL: {exc}",
                      file=sys.stderr)
                return 1
        if not payloads:
            print(f"error: {args.run}: contains no reports", file=sys.stderr)
            return 1
        for payload in payloads:
            try:
                report = RunReport.from_dict(payload)
            except ValueError as exc:
                print(f"error: {args.run}: {exc}", file=sys.stderr)
                return 1
            print(report.summary())
            print()
        return 0
    from repro.analysis.report import build_report

    text = build_report(args.results_dir, args.output)
    if args.output:
        print(f"wrote report to {args.output}")
    else:
        print(text)
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.obs import (
        ascii_gantt,
        from_chrome_trace,
        overlap_analytics,
        validate_chrome_trace,
    )

    try:
        payload = json.loads(Path(args.trace_file).read_text(encoding="utf-8"))
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except json.JSONDecodeError as exc:
        print(f"error: {args.trace_file}: not JSON: {exc}", file=sys.stderr)
        return 1
    errors = validate_chrome_trace(payload)
    if errors:
        print(f"error: {args.trace_file}: not a valid Chrome trace:",
              file=sys.stderr)
        for err in errors[:10]:
            print(f"  - {err}", file=sys.stderr)
        return 1
    events = from_chrome_trace(payload)
    stats = overlap_analytics(events)
    rows = [
        ("events", stats["event_counts"] and sum(stats["event_counts"].values())),
        ("span (s)", stats["span"]),
        ("macro overlap ratio", stats["macro_overlap_ratio"]),
        ("micro overlap ratio", stats["micro_overlap_ratio"]),
        ("I/O outstanding (s)", stats["io_outstanding_time"]),
        ("internal CPU (s)", stats["internal_cpu_time"]),
        ("external CPU (s)", stats["external_cpu_time"]),
    ]
    print(format_table(["measure", "value"], rows,
                       title=f"trace {args.trace_file}"))
    util_rows = sorted(stats["track_utilization"].items())
    if util_rows:
        print(format_table(["track", "busy fraction"], util_rows,
                           title="Per-track utilization"))
    print()
    print(ascii_gantt(events, width=args.width))
    return 0


def _cmd_top(args) -> int:
    import time

    from repro.obs import expose_text, read_telemetry_jsonl, render_top

    path = Path(args.telemetry_file)

    def frame(ticks: list[dict]) -> str:
        if args.format == "prom":
            return expose_text(ticks[-1]) if ticks else ""
        return render_top(ticks, width=args.width)

    if args.once:
        try:
            ticks = read_telemetry_jsonl(path)
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(frame(ticks))
        return 0
    # Follow mode: re-read the stream, redraw when a new tick lands, and
    # exit when the producer writes its final tick (or on Ctrl-C).  The
    # file may not exist yet — the run could still be starting up.
    last_seq = None
    try:
        while True:
            try:
                ticks = read_telemetry_jsonl(path)
            except OSError:
                ticks = []
            if ticks:
                seq = ticks[-1].get("seq")
                if seq != last_seq:
                    last_seq = seq
                    print("\x1b[2J\x1b[H", end="")
                    print(frame(ticks))
                if ticks[-1].get("final"):
                    return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        print()
        return 0


def _cmd_lint(args) -> int:
    from repro.lint.cli import run_lint

    argv = list(args.paths)
    argv += ["--format", args.format]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.write_baseline:
        argv.append("--write-baseline")
    if args.rules:
        argv += ["--rules", args.rules]
    if args.root:
        argv += ["--root", args.root]
    if args.list_rules:
        argv.append("--list-rules")
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.graph:
        argv += ["--graph", args.graph]
    if args.strict_ignores:
        argv.append("--strict-ignores")
    if args.expire_baselines:
        argv.append("--expire-baselines")
    return run_lint(argv)


def _cmd_datasets(args) -> int:
    rows = []
    for name in datasets.dataset_names():
        spec = datasets.DATASETS[name]
        graph = datasets.load(name)
        rows.append((name, graph.num_vertices, graph.num_edges,
                     spec.paper_vertices, spec.paper_edges))
    print(format_table(
        ["dataset", "|V| (stand-in)", "|E| (stand-in)", "|V| (paper)", "|E| (paper)"],
        rows, title="Dataset stand-ins"))
    return 0


def _cmd_metrics(args) -> int:
    from repro.graph.metrics import (
        global_clustering_coefficient,
        per_vertex_triangles,
        transitivity,
    )

    graph = _load_graph(args)
    triangles = int(per_vertex_triangles(graph).sum()) // 3
    rows = [
        ("vertices", graph.num_vertices),
        ("edges", graph.num_edges),
        ("triangles", triangles),
        ("clustering coefficient", global_clustering_coefficient(graph)),
        ("transitivity", transitivity(graph)),
    ]
    print(format_table(["metric", "value"], rows))
    return 0


def _cmd_profile(args) -> int:
    from repro.obs import (
        Attribution,
        StackSampler,
        collapsed_text,
        render_attribution,
        to_speedscope,
        write_speedscope,
    )

    graph = _load_graph(args)
    attribution = Attribution()
    method = args.method
    sampler = None
    if args.sample:
        sampler = StackSampler(interval=args.sample_interval)
        sampler.start()
    try:
        if method in ("opt", "opt-vi", "mgt"):
            from repro.core import make_store, triangulate_disk

            plugin = {"opt": "edge-iterator", "opt-vi": "vertex-iterator",
                      "mgt": "mgt"}[method]
            store = make_store(graph, args.page_size)
            result = triangulate_disk(store, plugin=plugin,
                                      buffer_ratio=args.buffer_ratio,
                                      attribution=attribution)
        elif method == "opt-parallel":
            from repro.parallel import triangulate_parallel

            result = triangulate_parallel(graph, workers=args.workers,
                                          attribution=attribution)
        else:  # compose
            from repro.errors import ConfigurationError
            from repro.exec import compose

            try:
                engine = compose(args.source, args.kernel, args.executor,
                                 graph=graph, workers=args.workers,
                                 page_size=args.page_size)
            except ConfigurationError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
            result = engine.run(attribution=attribution)
            method = f"compose:{engine.describe()}"
    finally:
        if sampler is not None:
            sampler.stop()

    # Without --sample the flame output weights stacks by Eq. 3 op
    # charges (byte-deterministic); with it, by wall stack samples.
    stacks = sampler.collapsed() if sampler is not None \
        else attribution.collapsed()
    unit = "none"
    title = f"{method} on {args.dataset or args.input}"

    def _emit(text: str) -> None:
        if args.output:
            Path(args.output).write_text(text + "\n", encoding="utf-8")
            print(f"wrote {args.format} profile to {args.output}")
        else:
            print(text)

    if args.format == "table":
        _emit(render_attribution(attribution))
        summary = (f"{title}: {result.triangles} triangles, "
                   f"{attribution.total_ops} attributed ops over "
                   f"{len(attribution)} cells")
        if sampler is not None:
            summary += (f"; {sampler.samples} wall samples @ "
                        f"{args.sample_interval * 1000:.1f}ms "
                        f"({sampler.overhead_seconds:.4f}s sampler overhead)")
        print(summary)
    elif args.format == "collapsed":
        _emit(collapsed_text(stacks))
    else:  # speedscope
        doc = to_speedscope(stacks, name=title, unit=unit)
        out = args.output or "profile.speedscope.json"
        path = write_speedscope(out, doc)
        print(f"wrote speedscope profile to {path} "
              f"(open at https://www.speedscope.app)")
    return 0


def _cmd_perf(args) -> int:
    import json as _json
    import subprocess

    from repro.obs import MetricsRegistry, PerfHistory, render_trend
    from repro.obs.history import bench_name_of

    history = PerfHistory(args.index)
    if args.perf_command == "ingest":
        rev = args.rev
        if rev is None:
            try:
                out = subprocess.run(["git", "rev-parse", "--short", "HEAD"],
                                     capture_output=True, text=True,
                                     timeout=10)
                rev = out.stdout.strip() if out.returncode == 0 else ""
            except (OSError, subprocess.TimeoutExpired):
                rev = ""
            rev = rev or "unknown"
        registry = MetricsRegistry()
        ingested = skipped = 0
        for report in args.reports:
            path = Path(report)
            if not path.exists():
                print(f"error: {path}: does not exist", file=sys.stderr)
                return 1
            record = history.ingest_file(path, git_rev=rev,
                                         registry=registry)
            if record is None:
                skipped += 1
                print(f"skipped   {path.name}")
            else:
                ingested += 1
                print(f"ingested  {record.bench}  {record.metric}="
                      f"{record.value:.6f}s @ {record.git_rev}")
        print(f"{ingested} ingested, {skipped} skipped -> {args.index}")
        return 0
    if args.perf_command == "trend":
        benches = args.benches or history.benches()
        if not benches:
            print(f"no history in {args.index}; run `perf ingest` first")
            return 0
        for bench in benches:
            print(render_trend(history, bench))
        return 0
    # check
    fresh = Path(args.fresh)
    if not fresh.exists():
        print(f"error: {fresh}: does not exist", file=sys.stderr)
        return 1
    text = fresh.read_text(encoding="utf-8")
    try:
        payload = _json.loads(text)
    except _json.JSONDecodeError:
        # JSONL trajectory: judge the final report.
        lines = [ln for ln in text.splitlines() if ln.strip()]
        payload = _json.loads(lines[-1])
    verdict = history.check(payload, bench=bench_name_of(fresh),
                            against=args.against, threshold=args.threshold)
    status = verdict["status"]
    if status in ("no-headline", "no-history"):
        print(f"{status}: {verdict['bench']} (nothing to compare)")
        return 0
    print(f"{status:10s}{verdict['bench']}  {verdict['metric']}: "
          f"{verdict['against']}-of-history {verdict['baseline']:.6f}s "
          f"(@ {verdict['baseline_rev']}) -> {verdict['fresh']:.6f}s "
          f"(x{verdict['ratio']:.3f}, limit x{1 + verdict['threshold']:.2f})")
    return 1 if status == "regressed" else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="opt-repro",
        description="OPT overlapped & parallel triangulation (SIGMOD'14 reproduction)",
    )
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="more repro.* logging (-v info, -vv debug)")
    parser.add_argument("-q", "--quiet", action="count", default=0,
                        help="less repro.* logging (errors only)")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic graph")
    gen.add_argument("--model", choices=["rmat", "erdos-renyi", "holme-kim",
                                         "barabasi-albert"], default="rmat")
    gen.add_argument("--vertices", type=int, required=True)
    gen.add_argument("--edges", type=int, default=0)
    gen.add_argument("--attach", type=int, default=4)
    gen.add_argument("--triad", type=float, default=0.3)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--output", required=True)
    gen.set_defaults(func=_cmd_generate)

    def add_input_args(p):
        group = p.add_mutually_exclusive_group(required=True)
        group.add_argument("--input", help="edge-list (.txt) or binary (.bin) graph")
        group.add_argument("--dataset", help="named stand-in (LJ, ORKUT, ...)")
        p.add_argument("--ordering",
                       choices=["natural", "degree", "reverse-degree",
                                "random", "degeneracy", "locality", "auto"],
                       default="degree",
                       help="vertex-id relabeling applied after load; "
                            "'auto' measures the Eq. 3 bill of each "
                            "candidate and picks the cheapest")

    tri = sub.add_parser("triangulate", help="run a triangulation method")
    add_input_args(tri)
    tri.add_argument("--method", default="opt",
                     choices=["opt", "opt-vi", "mgt", "opt-threaded",
                              "opt-parallel", "cc-seq", "cc-ds",
                              "graphchi", "edge-iterator", "vertex-iterator",
                              "forward", "matrix", "compose"])
    # Axis choices mirror repro.exec.registry (SOURCES / KERNELS /
    # EXECUTORS); the scenario matrix asserts they stay in sync so the
    # parser never imports the engine stack just to print --help.
    tri.add_argument("--source", default="memory",
                     choices=["memory", "shm", "disk"],
                     help="graph source for --method compose: heap CSR, "
                          "POSIX shared-memory CSR, or paged disk store")
    tri.add_argument("--kernel", default="hash",
                     choices=["hash", "merge", "gallop", "bitmap",
                              "adaptive"],
                     help="intersection kernel for --method compose "
                          "(hash charges the paper's Eq. 3 probe count; "
                          "adaptive range-prunes and picks a data path "
                          "per pair)")
    tri.add_argument("--executor", default="serial",
                     choices=["serial", "threaded", "process"],
                     help="execution strategy for --method compose; "
                          "'process' requires --source shm")
    tri.add_argument("--buffer-ratio", type=float, default=0.15)
    tri.add_argument("--page-size", type=int, default=4096)
    tri.add_argument("--cores", type=int, default=1)
    tri.add_argument("--workers", type=int, default=2,
                     help="process count for --method opt-parallel (the "
                          "shared-memory work-stealing engine)")
    tri.add_argument("--report", default=None, metavar="OUT.json",
                     help="write the run's observability report (RunReport "
                          "JSON: phase spans, counters, overhead_vs_ideal)")
    tri.add_argument("--trace", default=None, metavar="TRACE.json",
                     help="write the run's causal event timeline as Chrome "
                          "trace_event JSON (Perfetto-loadable); simulated "
                          "clock for opt/opt-vi/mgt, wall clock for "
                          "opt-threaded and opt-parallel")
    tri.add_argument("--telemetry", default=None, metavar="OUT.jsonl",
                     help="stream live telemetry tick records (counter "
                          "rates, gauges, histogram percentiles, worker "
                          "heartbeats) to this JSONL file; follow it with "
                          "'top OUT.jsonl'.  Simulated clock for opt/opt-vi/"
                          "mgt (byte-deterministic), wall clock for "
                          "opt-threaded and opt-parallel")
    tri.add_argument("--fault-kind", action="append", default=[],
                     choices=["latency", "transient", "torn"],
                     help="inject seeded storage faults of this kind into the "
                          "disk-based methods (repeatable)")
    tri.add_argument("--fault-rate", type=float, default=0.1,
                     help="per-page probability of each injected fault kind")
    tri.add_argument("--fault-seed", type=int, default=0,
                     help="seed of the fault plan (same seed, same faults)")
    tri.add_argument("--fault-delay", type=float, default=0.002,
                     help="injected latency in seconds (latency faults)")
    tri.add_argument("--max-retries", type=int, default=3,
                     help="retry budget before a fault becomes terminal")
    tri.add_argument("--checkpoint", default=None, metavar="CKPT.json",
                     help="commit each completed iteration here; an existing "
                          "file resumes the run (replaying committed output)")
    tri.set_defaults(func=_cmd_triangulate)

    lay = sub.add_parser("layout",
                         help="pack an edge-list file into a page store "
                              "(out-of-core, external sort)")
    lay.add_argument("--input", required=True)
    lay.add_argument("--output", required=True,
                     help="directory receiving graph.pages + graph.idx.npz")
    lay.add_argument("--work-dir", default=None)
    lay.add_argument("--page-size", type=int, default=4096)
    lay.add_argument("--chunk-edges", type=int, default=65536)
    lay.add_argument("--natural-order", action="store_true",
                     help="skip the degree-based relabeling")
    lay.set_defaults(func=_cmd_layout)

    clq = sub.add_parser("cliques", help="count k-cliques")
    add_input_args(clq)
    clq.add_argument("--k", type=int, default=4)
    clq.set_defaults(func=_cmd_cliques)

    ver = sub.add_parser("verify", help="cross-check all methods on one graph")
    add_input_args(ver)
    ver.add_argument("--page-size", type=int, default=1024)
    ver.add_argument("--buffer-pages", type=int, default=8)
    ver.add_argument("--skip-threaded", action="store_true")
    ver.set_defaults(func=_cmd_verify)

    ben = sub.add_parser("bench", help="run paper-reproduction experiments")
    ben.add_argument("experiments", nargs="*",
                     help="experiment ids (e.g. fig6 table4); default: all")
    ben.add_argument("--list", action="store_true",
                     help="list available experiments")
    ben.add_argument("--results-dir", default=None,
                     help="also write each table to <dir>/<id>.txt")
    ben.set_defaults(func=_cmd_bench)

    rep = sub.add_parser("report",
                         help="assemble benchmark results into markdown, or "
                              "pretty-print a RunReport JSON (--run)")
    rep.add_argument("--results-dir", default="benchmarks/results")
    rep.add_argument("--output", default=None)
    rep.add_argument("--run", default=None, metavar="REPORT.json",
                     help="pretty-print a RunReport JSON/JSONL file instead")
    rep.set_defaults(func=_cmd_report)

    trc = sub.add_parser("trace",
                         help="summarize a saved event trace: overlap "
                              "analytics and an ASCII Gantt chart")
    trc.add_argument("trace_file", metavar="TRACE.json",
                     help="Chrome trace_event JSON written by "
                          "triangulate --trace")
    trc.add_argument("--width", type=int, default=72,
                     help="Gantt chart width in columns")
    trc.set_defaults(func=_cmd_trace)

    top = sub.add_parser("top",
                         help="live ASCII dashboard over a --telemetry "
                              "JSONL stream (worker progress bars, ETA, "
                              "hit-rate sparkline, hottest counter rates)")
    top.add_argument("telemetry_file", metavar="TELEMETRY.jsonl",
                     help="tick stream written by triangulate --telemetry "
                          "(may still be growing)")
    top.add_argument("--once", action="store_true",
                     help="render a single frame from the current ticks "
                          "and exit (no follow loop)")
    top.add_argument("--format", choices=["live", "prom"], default="live",
                     help="'live' ASCII dashboard or 'prom' Prometheus "
                          "text exposition of the latest tick")
    top.add_argument("--interval", type=float, default=0.5,
                     help="follow-mode poll interval in seconds")
    top.add_argument("--width", type=int, default=72,
                     help="dashboard width in columns")
    top.set_defaults(func=_cmd_top)

    lnt = sub.add_parser("lint",
                         help="project-specific static analysis (lockset, "
                              "sim-purity, obs-vocabulary, ...)")
    lnt.add_argument("paths", nargs="*", default=["src/repro"],
                     help="files or directories to lint (default: src/repro)")
    lnt.add_argument("--format", choices=["text", "json"], default="text")
    lnt.add_argument("--baseline", default=None, metavar="FILE")
    lnt.add_argument("--write-baseline", action="store_true")
    lnt.add_argument("--rules", default=None, metavar="ID[,ID...]")
    lnt.add_argument("--root", default=None, metavar="DIR")
    lnt.add_argument("--list-rules", action="store_true")
    lnt.add_argument("--jobs", type=int, default=1, metavar="N")
    lnt.add_argument("--graph", choices=["json", "dot"], default=None)
    lnt.add_argument("--strict-ignores", action="store_true")
    lnt.add_argument("--expire-baselines", action="store_true")
    lnt.set_defaults(func=_cmd_lint)

    ds = sub.add_parser("datasets", help="list dataset stand-ins")
    ds.set_defaults(func=_cmd_datasets)

    met = sub.add_parser("metrics", help="triangle-derived network metrics")
    add_input_args(met)
    met.set_defaults(func=_cmd_metrics)

    pro = sub.add_parser("profile",
                         help="run a method with cost attribution: where do "
                              "the Eq. 3 ops go, by (phase, kernel, source, "
                              "degree bucket)")
    add_input_args(pro)
    pro.add_argument("--method", default="compose",
                     choices=["opt", "opt-vi", "mgt", "opt-parallel",
                              "compose"],
                     help="attribution-instrumented engine to profile")
    pro.add_argument("--source", default="memory",
                     choices=["memory", "shm", "disk"],
                     help="graph source for --method compose")
    pro.add_argument("--kernel", default="hash",
                     choices=["hash", "merge", "gallop", "bitmap",
                              "adaptive"],
                     help="intersection kernel for --method compose")
    pro.add_argument("--executor", default="serial",
                     choices=["serial", "threaded", "process"],
                     help="execution strategy for --method compose")
    pro.add_argument("--buffer-ratio", type=float, default=0.15)
    pro.add_argument("--page-size", type=int, default=4096)
    pro.add_argument("--workers", type=int, default=2,
                     help="worker count for opt-parallel / threaded / "
                          "process executors")
    pro.add_argument("--format", choices=["table", "collapsed", "speedscope"],
                     default="table",
                     help="ASCII table, flame-graph collapsed stacks, or a "
                          "speedscope.app JSON document")
    pro.add_argument("--output", default=None, metavar="OUT",
                     help="write the rendered profile here instead of stdout "
                          "(speedscope default: profile.speedscope.json)")
    pro.add_argument("--sample", action="store_true",
                     help="also run the wall-clock stack sampler; collapsed/"
                          "speedscope output then weights stacks by wall "
                          "samples instead of op charges")
    pro.add_argument("--sample-interval", type=float, default=0.005,
                     help="sampler period in seconds (default 5ms)")
    pro.set_defaults(func=_cmd_profile)

    perf = sub.add_parser("perf",
                          help="cross-run perf history: ingest BENCH "
                               "reports, print trends, check regressions")
    perf.add_argument("--index", default="perf_history.jsonl",
                      help="append-only history JSONL index path")
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)
    ping = perf_sub.add_parser("ingest",
                               help="append BENCH report headline metrics")
    ping.add_argument("reports", nargs="+", metavar="BENCH.json",
                      help="BENCH_*.json report files")
    ping.add_argument("--rev", default=None,
                      help="git revision label (default: current HEAD)")
    ptre = perf_sub.add_parser("trend",
                               help="sparkline trajectory per bench")
    ptre.add_argument("benches", nargs="*",
                      help="bench names (default: all indexed)")
    pchk = perf_sub.add_parser("check",
                               help="fail on regression vs history baseline")
    pchk.add_argument("fresh", metavar="BENCH.json",
                      help="fresh report to judge")
    pchk.add_argument("--threshold", type=float, default=0.20,
                      help="allowed slowdown fraction (default 0.20)")
    pchk.add_argument("--against", choices=["best", "latest"],
                      default="best",
                      help="baseline: best-of-history or latest ingest")
    perf.set_defaults(func=_cmd_perf)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
