"""Triangle output in the paper's nested representation.

Triangles sharing a prefix ``(u, v)`` are written as one group
``<u, v, {w1..wk}>`` (Section 3.2), which compresses the result
substantially when many triangles share an edge.  The writer buffers
groups in memory and flushes page-sized batches, mirroring the paper's
asynchronous bulk writes; byte and page counts feed the Table 3
(output-writing cost) benchmark.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import IO, Sequence

from repro.storage.page import DEFAULT_PAGE_SIZE

__all__ = ["NestedOutputWriter", "nested_group_bytes", "triple_bytes"]

_GROUP_HEADER = struct.Struct("<IIH")  # u, v, completion count
_VERTEX = struct.Struct("<I")


def nested_group_bytes(count: int) -> int:
    """Encoded size of one ``<u, v, {w...}>`` group with *count* completions."""
    return _GROUP_HEADER.size + _VERTEX.size * count


def triple_bytes(count: int) -> int:
    """Encoded size of *count* triangles as flat ``(u, v, w)`` triples.

    The representation methods without prefix sharing (e.g. CC-Seq's
    per-partition output) effectively pay; used for Table 3 comparisons.
    """
    return 3 * _VERTEX.size * count


class NestedOutputWriter:
    """A triangle sink that encodes nested groups and tracks I/O volume.

    Parameters
    ----------
    target:
        ``None`` (count bytes only), a binary file object, or a path.
    page_size:
        Flush granularity; ``pages_written`` counts flushed pages, the
        quantity the simulated output device charges.
    """

    def __init__(
        self,
        target: IO[bytes] | str | Path | None = None,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self._own_handle = False
        if target is None:
            self._handle: IO[bytes] | None = None
        elif isinstance(target, (str, Path)):
            self._handle = open(target, "wb")
            self._own_handle = True
        else:
            self._handle = target
        self._page_size = page_size
        self._buffer = bytearray()
        self.count = 0
        self.groups = 0
        self.bytes_written = 0
        self.pages_written = 0

    def emit(self, u: int, v: int, ws: Sequence[int]) -> None:
        """Write one nested group."""
        if not ws:
            return
        self.count += len(ws)
        self.groups += 1
        self._buffer += _GROUP_HEADER.pack(u, v, len(ws))
        for w in ws:
            self._buffer += _VERTEX.pack(w)
        while len(self._buffer) >= self._page_size:
            self._flush_page()

    def _flush_page(self) -> None:
        page, self._buffer = (
            bytes(self._buffer[: self._page_size]),
            self._buffer[self._page_size:],
        )
        if self._handle is not None:
            self._handle.write(page)
        self.bytes_written += len(page)
        self.pages_written += 1

    def close(self) -> None:
        """Flush the partial final page and close an owned file handle."""
        if self._buffer:
            remainder = bytes(self._buffer)
            if self._handle is not None:
                self._handle.write(remainder)
            self.bytes_written += len(remainder)
            self.pages_written += 1
            self._buffer = bytearray()
        if self._own_handle and self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "NestedOutputWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
