"""Pluggable iterator models for the OPT framework.

OPT is generic: an instance supplies three operations (Section 3.2/3.5) —

* ``internal_ops_for_page``   — InternalTriangleImpl (Algorithms 6 / 11),
* ``candidates_for_record``   — ExternalCandidateVertexImpl (Algorithms 8 / 12),
* ``external_ops_for_record`` — ExternalTriangleImpl (Algorithms 10 / 13).

Each returns the CPU operation count it consumed (the paper's probe
measure) and emits triangles into the context's sink.  Adjacency lists may
arrive chunked across pages; intersections and membership probes
distribute over chunks, so per-record processing remains exact.

:class:`MGTPlugin` realizes the paper's Section 3.5 reduction of MGT
[Hu et al., SIGMOD'13] to an OPT instance: no internal triangulation,
every successor is an external candidate, vertex-iterator external
processing, synchronous I/O (the driver handles the I/O mode).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.context import ChunkContext
from repro.storage.page import PageRecord
from repro.util.intersect import HASH_PROBE_COST, intersect_count_ops, intersect_sorted

__all__ = ["EdgeIteratorPlugin", "IteratorPlugin", "MGTPlugin", "VertexIteratorPlugin"]


class IteratorPlugin(ABC):
    """One iterator-model instantiation of the OPT framework."""

    #: Short identifier used in reports and the CLI.
    name: str = "abstract"
    #: MGT mode: candidates include in-memory vertices and I/O is synchronous.
    rescan_all: bool = False
    sync_external: bool = False

    @abstractmethod
    def candidates_for_record(
        self, ctx: ChunkContext, record: PageRecord
    ) -> tuple[np.ndarray, int]:
        """External candidate vertices contributed by one record chunk.

        Returns ``(candidates, ops)``; the driver files each candidate in
        ``ctx.requesters`` keyed by the record's vertex.
        """

    @abstractmethod
    def internal_ops_for_page(
        self, ctx: ChunkContext, records: list[PageRecord]
    ) -> int:
        """Find internal triangles for one internal-area page; return ops."""

    @abstractmethod
    def external_ops_for_record(
        self, ctx: ChunkContext, record: PageRecord
    ) -> int:
        """Find external triangles for one arrived candidate chunk; return ops."""


class EdgeIteratorPlugin(IteratorPlugin):
    """EdgeIterator≻ instance (Algorithms 6, 8 and 10)."""

    name = "edge-iterator"

    def candidates_for_record(self, ctx, record):
        neighbors = record.neighbors
        candidates = neighbors[neighbors > ctx.v_hi]
        return candidates, len(neighbors)

    def internal_ops_for_page(self, ctx, records):
        ops = 0
        for record in records:
            u = record.vertex
            neighbors = record.neighbors
            internal_succ = neighbors[(neighbors > u) & (neighbors <= ctx.v_hi)]
            if len(internal_succ) == 0:
                continue
            succ_u = ctx.n_succ(u)
            for v in internal_succ:
                v = int(v)
                succ_v = ctx.n_succ(v)
                ops += intersect_count_ops(len(succ_u), len(succ_v))
                common = intersect_sorted(succ_u, succ_v)
                if len(common):
                    ctx.sink.emit(u, v, common.tolist())
        return ops

    def external_ops_for_record(self, ctx, record):
        v = record.vertex
        chunk = record.neighbors
        succ_chunk = chunk[chunk > v]  # this chunk's slice of n_succ(v)
        requesters = ctx.requesters.get(v)
        if not requesters:
            return 0
        ops = 0
        for u in requesters:
            succ_u = ctx.n_succ(u)
            ops += intersect_count_ops(len(succ_u), len(succ_chunk))
            common = intersect_sorted(succ_u, succ_chunk)
            if len(common):
                ctx.sink.emit(u, v, common.tolist())
        return ops


class VertexIteratorPlugin(IteratorPlugin):
    """VertexIterator≻ instance (Algorithms 11, 12 and 13)."""

    name = "vertex-iterator"

    def candidates_for_record(self, ctx, record):
        neighbors = record.neighbors
        candidates = neighbors[neighbors > ctx.v_hi]
        return candidates, len(neighbors)

    def internal_ops_for_page(self, ctx, records):
        ops = 0
        for record in records:
            u = record.vertex
            neighbors = record.neighbors
            internal_succ = neighbors[(neighbors > u) & (neighbors <= ctx.v_hi)]
            if len(internal_succ) == 0:
                continue
            succ_u = ctx.n_succ(u)
            for v in internal_succ:
                v = int(v)
                cut = int(np.searchsorted(succ_u, v, side="right"))
                w_candidates = succ_u[cut:]
                if len(w_candidates) == 0:
                    continue
                ops += HASH_PROBE_COST * len(w_candidates)
                hits = w_candidates[
                    np.isin(w_candidates, ctx.n_full(v), assume_unique=True)
                ]
                if len(hits):
                    ctx.sink.emit(u, v, hits.tolist())
        return ops

    def external_ops_for_record(self, ctx, record):
        v = record.vertex
        chunk = record.neighbors
        requesters = ctx.requesters.get(v)
        if not requesters:
            return 0
        ops = 0
        for u in requesters:
            succ_u = ctx.n_succ(u)
            cut = int(np.searchsorted(succ_u, v, side="right"))
            w_candidates = succ_u[cut:]
            if len(w_candidates) == 0:
                continue
            ops += HASH_PROBE_COST * len(w_candidates)
            hits = w_candidates[np.isin(w_candidates, chunk, assume_unique=True)]
            if len(hits):
                ctx.sink.emit(u, v, hits.tolist())
        return ops


class MGTPlugin(VertexIteratorPlugin):
    """MGT as an OPT instance (Section 3.5).

    No internal triangulation; *every* successor becomes an external
    candidate (so in-memory vertices are re-read through the streaming
    scan); external processing is the vertex-iterator check; the driver
    runs the external reads synchronously with no buffer reuse — giving
    the paper's ``(1 + ceil(P/m)) * c * P(G)`` I/O bound (Eq. 7).
    """

    name = "mgt"
    rescan_all = True
    sync_external = True

    def candidates_for_record(self, ctx, record):
        neighbors = record.neighbors
        candidates = neighbors[neighbors > record.vertex]
        return candidates, len(neighbors)

    def internal_ops_for_page(self, ctx, records):
        return 0
