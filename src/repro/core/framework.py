"""The OPT driver: Algorithm 3 with its callbacks (Algorithms 4, 5, 7, 9).

``run_opt`` executes the *real* algorithm against a page store: it fills
the internal area chunk by chunk, identifies external candidate vertices
while loading (Algorithm 7), builds the descending-ordered request list
(Algorithm 4 — so the pages the *next* chunk needs are the last through
the external area and stay buffered, the paper's ``Δin`` saving), finds
internal triangles per page (Algorithm 5) and external triangles per
arrived candidate chunk (Algorithm 9).

The driver produces exact triangles plus a :class:`~repro.sim.trace.RunTrace`
describing every iteration's I/O and per-page CPU cost; the discrete-event
scheduler replays the trace under any core/morphing configuration.  This
separation is what makes a single execution serve a whole speed-up curve.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.context import ChunkContext
from repro.core.plugins import EdgeIteratorPlugin, IteratorPlugin
from repro.core.result_store import GroupCaptureSink, RunCheckpoint
from repro.errors import ConfigurationError
from repro.memory.base import CountSink, TriangleSink
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    RunReport,
    TelemetrySampler,
    get_logger,
)
from repro.sim.trace import ExternalRead, IterationTrace, RunTrace
from repro.storage.buffer import BufferManager
from repro.storage.faults import FaultPlan, RecoveringLoader, RetryPolicy
from repro.storage.layout import GraphStore

__all__ = ["OPTConfig", "run_opt"]

logger = get_logger(__name__)


class _PhaseSink:
    """Wraps a sink to attribute emitted triangles to the current phase."""

    def __init__(self, inner: TriangleSink, report: RunReport):
        self._inner = inner
        self._report = report
        self.phase = "internal"

    def emit(self, u: int, v: int, ws: Sequence[int]) -> None:
        self._report.counter("triangles", phase=self.phase).inc(len(ws))
        self._inner.emit(u, v, ws)

    def __getattr__(self, name):  # pages_written, count, ...
        return getattr(self._inner, name)


def _span(report: RunReport | None, name: str, **attrs):
    """A report span, or a no-op when observability is off."""
    if report is None:
        return nullcontext()
    return report.span(name, **attrs)


@dataclass
class OPTConfig:
    """Static configuration of one OPT run.

    ``m_in`` / ``m_ex`` are the internal- and external-area sizes in
    pages.  The paper splits the memory budget evenly (``m_in = m_ex =
    m / 2``) to maximize the buffering effect of Algorithm 4's load order;
    :meth:`even_split` builds that configuration from a total budget.
    """

    m_in: int
    m_ex: int
    plugin: IteratorPlugin = field(default_factory=EdgeIteratorPlugin)

    def __post_init__(self) -> None:
        if self.m_in < 1 or self.m_ex < 1:
            raise ConfigurationError("m_in and m_ex must be at least one page")

    @classmethod
    def even_split(cls, total_pages: int, plugin: IteratorPlugin | None = None) -> "OPTConfig":
        """Split a total budget of *total_pages* evenly, as the paper does."""
        if total_pages < 2:
            raise ConfigurationError("memory budget must be at least two pages")
        half = total_pages // 2
        return cls(m_in=half, m_ex=total_pages - half,
                   plugin=plugin or EdgeIteratorPlugin())


def run_opt(
    store: GraphStore,
    config: OPTConfig,
    sink: TriangleSink | None = None,
    report: RunReport | None = None,
    *,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    checkpoint: RunCheckpoint | None = None,
    tracer: EventTracer | None = None,
    telemetry: TelemetrySampler | None = None,
    attribution=None,
) -> RunTrace:
    """Run OPT over *store* and return the trace (with real triangles).

    The buffer manager holds ``m_in + m_ex`` frames; internal-chunk pages
    are pinned for their iteration, external pages cycle through the
    remaining frames under LRU — which is how the saved I/O ``Δin``
    arises rather than being assumed.

    With a :class:`~repro.obs.RunReport` *report*, every phase emits a
    wall-clock span (``fill`` → ``identify-candidates`` →
    ``external-triangulation`` → ``internal-triangulation`` per
    iteration), the buffer manager counts hits/misses/evictions into the
    report's registry, and triangles are attributed to the phase that
    found them (``triangles{phase=internal}`` / ``{phase=external}``).

    With an :class:`~repro.obs.EventTracer` *tracer*, the buffer manager
    and the fault layer mark hits / evictions / injections on the event
    timeline as they happen.  A wall-clock tracer timestamps them in real
    time; a sim-clock tracer silently drops them (the deterministic sim
    timeline comes from replaying the returned trace through
    :func:`repro.sim.schedule.simulate` with the same tracer).

    With a :class:`~repro.storage.faults.FaultPlan`, every page load goes
    through a :class:`~repro.storage.faults.RecoveringLoader`: the plan's
    seeded faults fire in *virtual* time, recoverable ones are retried
    per *retry_policy* (``recovery.retries``), and the injected latency
    plus backoff is charged to the trace (``fill_delay`` /
    ``ExternalRead.delay``) so the discrete-event replay shows the same
    dual-timeline report a clean run would — just slower.  A fault that
    outlasts the retry budget raises the typed
    :class:`~repro.errors.FaultExhaustedError`.

    With a :class:`~repro.core.result_store.RunCheckpoint`, each
    completed iteration commits its emitted groups and measured trace;
    on resume, committed iterations are *replayed* from the checkpoint
    (``recovery.checkpoint.replayed``) and execution restarts at the
    first uncommitted chunk — no already-emitted triangle is listed
    twice.

    With a :class:`~repro.obs.TelemetrySampler` *telemetry*, the driver
    samples at iteration boundaries: one tick before the first chunk and
    one after each completed iteration.  A sim-clock sampler ticks at
    the iteration *ordinal* (``t = 0, 1, 2, ...``) so its JSONL stream
    is byte-deterministic; a wall-clock sampler ticks rate-limited by
    its interval.

    With an :class:`~repro.obs.attribution.Attribution` *attribution*,
    every plugin op charge lands in a ``(phase, plugin, disk,
    degree-bucket)`` cell — phases ``candidate`` / ``external`` /
    ``internal`` (Algorithms 7 / 9 / 5), degree bucketed by the record's
    neighbor-fragment length — and each phase's wall time is attributed
    at phase granularity.  Per-bucket op sums conserve the trace's
    ``candidate_ops`` / ``external_ops`` / ``internal_ops`` exactly.
    """
    if sink is None:
        sink = CountSink()
    if report is not None:
        sink = _PhaseSink(sink, report)
    if tracer is not None and not tracer.enabled:
        tracer = None
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    if telemetry is not None:
        telemetry.bind(report.registry if report is not None
                       else MetricsRegistry())
    plugin = config.plugin
    if attribution is not None:
        attr_candidate = attribution.scope(
            phase="candidate", kernel=plugin.name, source="disk")
        attr_external = attribution.scope(
            phase="external", kernel=plugin.name, source="disk")
        attr_internal = attribution.scope(
            phase="internal", kernel=plugin.name, source="disk")
    else:
        attr_candidate = attr_external = attr_internal = None
    reader: RecoveringLoader | None = None
    loader = store.decode_page
    if fault_plan is not None:
        reader = RecoveringLoader(
            store.decode_page, fault_plan, retry_policy,
            registry=report.registry if report is not None else None,
            tracer=tracer,
        )
        loader = reader
    if checkpoint is not None:
        checkpoint.bind(num_pages=store.num_pages, plugin=plugin.name,
                        m_in=config.m_in)
    trace = RunTrace(num_pages=store.num_pages, m_in=config.m_in,
                     m_ex=1 if plugin.sync_external else config.m_ex,
                     sync_external=plugin.sync_external)
    if store.num_pages == 0:
        return trace

    # Pre-compute the chunk boundaries: a chunk may exceed m_in when a
    # single adjacency list spans more pages (DESIGN.md §2), in which case
    # the frame budget grows to hold it — the paper's "internal area must
    # be large enough to load at least one adjacency list".
    chunks: list[tuple[int, int]] = []
    pid = 0
    while pid < store.num_pages:
        end = store.align_chunk_end(pid, config.m_in)
        chunks.append((pid, end))
        pid = end + 1
    max_chunk = max(end - start + 1 for start, end in chunks)
    capacity = max(config.m_in, max_chunk) + config.m_ex
    buffer = BufferManager(capacity, loader=loader,
                           registry=report.registry if report else None,
                           tracer=tracer)

    output_pages_before = getattr(sink, "pages_written", 0)
    if telemetry is not None:
        # The opening tick: t=0 in sim mode, "now" on the wall clock.
        telemetry.sample(0.0 if telemetry.clock == "sim" else None)
    with _span(report, "run-opt", plugin=plugin.name, m_in=config.m_in,
               m_ex=config.m_ex):
        for index, (pid, end) in enumerate(chunks):
            if checkpoint is not None and checkpoint.has(index):
                # Committed by an earlier (failed) run: replay the stored
                # output instead of re-listing the chunk's triangles.
                replayed = checkpoint.replay_into(index, sink)
                stored = checkpoint.trace_of(index)
                trace.iterations.append(
                    IterationTrace.from_dict(stored) if stored
                    else IterationTrace()
                )
                logger.debug("iteration %d: replayed %d triangles from "
                             "checkpoint", index, replayed)
                if report is not None:
                    report.counter("recovery.checkpoint.replayed").inc()
                    report.counter("opt.iterations").inc()
                _sample_iteration(telemetry, index)
                continue
            iteration = IterationTrace()
            iteration_sink = (GroupCaptureSink(sink) if checkpoint is not None
                              else sink)
            logger.debug("iteration %d: internal pages %d..%d", index, pid, end)

            with _span(report, "iteration", index=index):
                # -- fill the internal area (Algorithm 3 lines 6-8) ----------
                chunk_pages = list(range(pid, end + 1))
                chunk_records = []
                with _span(report, "fill"):
                    for page_id in chunk_pages:
                        hit = page_id in buffer
                        frame = buffer.get(page_id, pin=True)
                        if hit and not plugin.rescan_all:
                            iteration.fill_buffered += 1
                        else:
                            iteration.fill_reads += 1
                        if reader is not None:
                            iteration.fill_delay += reader.take_delay()
                        chunk_records.append(frame.records)

                v_lo, v_hi = store.chunk_vertex_range(pid, end)
                adjacency = _assemble_adjacency(chunk_records)
                ctx = ChunkContext(v_lo, v_hi, adjacency, iteration_sink)

                # -- candidate identification (Algorithm 7 per record) -------
                with _span(report, "identify-candidates"):
                    phase_started = time.perf_counter()
                    for records in chunk_records:
                        for record in records:
                            candidates, ops = plugin.candidates_for_record(
                                ctx, record)
                            iteration.candidate_ops += ops
                            if attr_candidate is not None:
                                attr_candidate.charge(
                                    len(record.neighbors), ops)
                            for candidate in candidates:
                                ctx.add_request(int(candidate), record.vertex)
                    if attr_candidate is not None:
                        attr_candidate.charge_time(
                            time.perf_counter() - phase_started)

                    # -- build the request list (Algorithm 4) ----------------
                    if plugin.rescan_all:
                        # MGT streams the whole input file once per iteration
                        # (its I/O cost bound, Eq. 7); no buffering credit for
                        # re-read pages.
                        ordered = list(range(store.num_pages))
                    else:
                        pages_needed: set[int] = set()
                        for candidate in ctx.requesters:
                            pages_needed.update(
                                store.pages_of_candidate(candidate))
                        # Descending page ids: the next chunk's pages are
                        # loaded last and survive in the external area (the
                        # paper's Δin trick).
                        ordered = sorted(pages_needed - set(chunk_pages),
                                         reverse=True)

                # -- external triangulation (Algorithm 9 per page) -----------
                if report is not None:
                    sink.phase = "external"
                with _span(report, "external-triangulation"):
                    phase_started = time.perf_counter()
                    for page_id in ordered:
                        hit = page_id in buffer
                        frame = buffer.get(page_id, pin=True)
                        delay = reader.take_delay() if reader is not None else 0.0
                        ops = 0
                        for record in frame.records:
                            if record.vertex in ctx.requesters:
                                record_ops = plugin.external_ops_for_record(
                                    ctx, record)
                                ops += record_ops
                                if attr_external is not None:
                                    attr_external.charge(
                                        len(record.neighbors), record_ops)
                        buffer.unpin(page_id)
                        buffered = hit and not plugin.rescan_all
                        iteration.external_reads.append(
                            ExternalRead(pid=page_id, cpu_ops=ops,
                                         buffered=buffered, delay=delay)
                        )
                    if attr_external is not None:
                        attr_external.charge_time(
                            time.perf_counter() - phase_started)

                # -- internal triangulation (Algorithm 5, per page) ----------
                if report is not None:
                    sink.phase = "internal"
                with _span(report, "internal-triangulation"):
                    phase_started = time.perf_counter()
                    for records in chunk_records:
                        if attr_internal is None:
                            page_ops = plugin.internal_ops_for_page(
                                ctx, records)
                        else:
                            # Every plugin processes records independently,
                            # so per-record calls sum to the page call —
                            # same trace, but degree-bucketed attribution.
                            page_ops = 0
                            for record in records:
                                record_ops = plugin.internal_ops_for_page(
                                    ctx, [record])
                                attr_internal.charge(
                                    len(record.neighbors), record_ops)
                                page_ops += record_ops
                        iteration.internal_page_ops.append(page_ops)
                    if attr_internal is not None:
                        attr_internal.charge_time(
                            time.perf_counter() - phase_started)

                # -- unpin the chunk (Algorithm 3 lines 12-13) ---------------
                for page_id in chunk_pages:
                    buffer.unpin(page_id)

            output_pages_now = getattr(sink, "pages_written", 0)
            iteration.output_pages = output_pages_now - output_pages_before
            output_pages_before = output_pages_now

            if report is not None:
                report.counter("opt.fill.reads").inc(iteration.fill_reads)
                report.counter("opt.fill.buffered").inc(iteration.fill_buffered)
                report.counter("opt.candidate.ops").inc(iteration.candidate_ops)
                report.counter("opt.internal.ops").inc(iteration.internal_ops)
                report.counter("opt.external.ops").inc(iteration.external_ops)
                report.counter("opt.external.reads").inc(
                    iteration.external_device_reads)
                report.counter("opt.external.buffered").inc(
                    iteration.external_buffered)
                report.counter("opt.iterations").inc()

            trace.iterations.append(iteration)
            _sample_iteration(telemetry, index)

            if checkpoint is not None:
                checkpoint.record(index, pid, end, iteration_sink.groups,
                                  trace=iteration.to_dict())
                if report is not None:
                    report.counter("recovery.checkpoint.saved").inc()

    trace.triangles = getattr(sink, "count", 0)
    if report is not None:
        report.counter("opt.pages_read").inc(trace.total_device_reads)
        if fault_plan is not None:
            _fold_fault_log(fault_plan, report)
    return trace


def _sample_iteration(telemetry: TelemetrySampler | None, index: int) -> None:
    """One telemetry tick at an iteration boundary.

    Sim clock: the tick's timestamp is the iteration ordinal (``index``
    completing means ``t = index + 1``), the deterministic time axis.
    Wall clock: a rate-limited tick at the sampler's interval.
    """
    if telemetry is None:
        return
    if telemetry.clock == "sim":
        telemetry.sample(float(index + 1), iteration=index)
    else:
        telemetry.maybe_sample()


def _fold_fault_log(fault_plan: FaultPlan, report: RunReport) -> None:
    """Mirror the plan's injection log into the report's registry.

    Each ``inject:<kind>`` tally from the event log becomes the
    ``faults.injected{kind=...}`` counter, so the RunReport alone tells
    what the plan actually did.  FaultPlans are single-run objects: reuse
    one across runs and these counts would double.
    """
    for key, value in fault_plan.log.counts().items():
        if key.startswith("inject:"):
            kind = key.split(":", 1)[1]
            counter = report.counter("faults.injected", kind=kind)
            delta = value - counter.value
            if delta > 0:
                counter.inc(delta)


def _assemble_adjacency(chunk_records) -> dict:
    """Concatenate record chunks into full adjacency lists per vertex."""
    import numpy as np

    partial: dict[int, list] = {}
    for records in chunk_records:
        for record in records:
            partial.setdefault(record.vertex, []).append(record.neighbors)
    return {
        vertex: (parts[0] if len(parts) == 1 else np.concatenate(parts))
        for vertex, parts in partial.items()
    }
