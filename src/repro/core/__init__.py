"""The OPT framework: driver, plugins, engines, output writer."""

from repro.core.context import ChunkContext
from repro.core.engine import (
    PLUGINS,
    buffer_pages_for_ratio,
    ideal_elapsed,
    make_store,
    replay,
    resolve_plugin,
    triangulate_disk,
)
from repro.core.framework import OPTConfig, run_opt
from repro.core.output import NestedOutputWriter
from repro.core.result_store import (
    GroupCaptureSink,
    RunCheckpoint,
    TriangleStore,
    read_nested_groups,
)
from repro.core.plugins import (
    EdgeIteratorPlugin,
    IteratorPlugin,
    MGTPlugin,
    VertexIteratorPlugin,
)
from repro.core.threaded import triangulate_threaded
from repro.parallel.engine import triangulate_parallel

__all__ = [
    "PLUGINS",
    "ChunkContext",
    "EdgeIteratorPlugin",
    "GroupCaptureSink",
    "IteratorPlugin",
    "MGTPlugin",
    "NestedOutputWriter",
    "OPTConfig",
    "RunCheckpoint",
    "TriangleStore",
    "read_nested_groups",
    "VertexIteratorPlugin",
    "triangulate_parallel",
    "triangulate_threaded",
    "buffer_pages_for_ratio",
    "ideal_elapsed",
    "make_store",
    "replay",
    "resolve_plugin",
    "run_opt",
    "triangulate_disk",
]
