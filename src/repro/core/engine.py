"""High-level entry points: run OPT end to end and report results.

``triangulate_disk`` is the main public API of the reproduction: it packs
a graph into slotted pages (or takes a prepared store), runs the real OPT
algorithm, replays the trace on the simulated multi-core/FlashSSD
machine, and returns a :class:`~repro.memory.base.TriangulationResult`
whose ``elapsed`` is simulated seconds.

``ideal_elapsed`` computes the paper's ideal cost — reading the graph
once plus the in-memory CPU cost (Eq. 6) — against which Figure 3a's
relative overhead is measured.
"""

from __future__ import annotations

from repro.core.framework import OPTConfig, run_opt
from repro.core.result_store import RunCheckpoint
from repro.core.plugins import (
    EdgeIteratorPlugin,
    IteratorPlugin,
    MGTPlugin,
    VertexIteratorPlugin,
)
from repro.analysis.costs import cost_conformance
from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.memory.base import TriangleSink, TriangulationResult
from repro.obs import (
    EventTracer,
    RunReport,
    TelemetrySampler,
    fold_trace_analytics,
)
from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.schedule import simulate
from repro.sim.trace import RunTrace
from repro.storage.faults import FaultPlan, RetryPolicy
from repro.storage.layout import GraphStore
from repro.storage.page import DEFAULT_PAGE_SIZE

__all__ = [
    "PLUGINS",
    "buffer_pages_for_ratio",
    "ideal_elapsed",
    "make_store",
    "resolve_plugin",
    "triangulate_disk",
]

PLUGINS: dict[str, type[IteratorPlugin]] = {
    "edge-iterator": EdgeIteratorPlugin,
    "vertex-iterator": VertexIteratorPlugin,
    "mgt": MGTPlugin,
}


def resolve_plugin(plugin: IteratorPlugin | str) -> IteratorPlugin:
    """Instantiate a plugin from its name (or pass an instance through)."""
    if isinstance(plugin, IteratorPlugin):
        return plugin
    try:
        return PLUGINS[plugin]()
    except KeyError:
        raise ConfigurationError(
            f"unknown plugin {plugin!r}; available: {', '.join(PLUGINS)}"
        ) from None


def make_store(graph: Graph, page_size: int = DEFAULT_PAGE_SIZE) -> GraphStore:
    """Pack *graph* into a page store (vertex-id order)."""
    return GraphStore.from_graph(graph, page_size)


def buffer_pages_for_ratio(store: GraphStore, ratio: float) -> int:
    """Memory budget in pages for a buffer of ``ratio * graph size``.

    Clamped to at least 2 pages (one internal + one external frame).
    """
    if ratio <= 0:
        raise ConfigurationError("buffer ratio must be positive")
    return max(2, int(round(store.num_pages * ratio)))


def triangulate_disk(
    source: Graph | GraphStore,
    *,
    plugin: IteratorPlugin | str = "edge-iterator",
    buffer_ratio: float = 0.15,
    buffer_pages: int | None = None,
    page_size: int = DEFAULT_PAGE_SIZE,
    cost: CostModel = DEFAULT_COST_MODEL,
    cores: int = 1,
    morphing: bool = True,
    serial: bool | None = None,
    sink: TriangleSink | None = None,
    report: RunReport | None = None,
    ideal_cpu_ops: int | None = None,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    checkpoint: RunCheckpoint | None = None,
    trace: EventTracer | None = None,
    telemetry: TelemetrySampler | None = None,
    attribution=None,
) -> TriangulationResult:
    """Run disk-based OPT triangulation end to end.

    Parameters
    ----------
    source:
        A :class:`Graph` (packed on the fly) or a prepared
        :class:`GraphStore`.
    plugin:
        Iterator instance: ``"edge-iterator"`` (default, the paper's
        fastest), ``"vertex-iterator"``, or ``"mgt"``.
    buffer_ratio / buffer_pages:
        Memory budget as a fraction of the graph's page count, or an
        explicit page count (overrides the ratio).  Split evenly into
        internal and external areas, as in the paper's experiments.
    cores / morphing / serial:
        Simulated execution configuration.  ``serial=None`` auto-selects
        OPT_serial when ``cores == 1``.
    report / ideal_cpu_ops:
        With a :class:`~repro.obs.RunReport`, the run records phase spans
        (pack → run-opt → replay), SSD/buffer counters, and the derived
        ``overhead_vs_ideal`` figure (Fig. 3a).  The ideal cost uses
        *ideal_cpu_ops* — the in-memory EdgeIterator≻ op count of the
        same graph — when given, else the trace's own intersection ops
        (identical for the edge-iterator plugin).
    fault_plan / retry_policy / checkpoint:
        Fault-injection and recovery knobs, forwarded to
        :func:`~repro.core.framework.run_opt`: page loads go through a
        :class:`~repro.storage.faults.RecoveringLoader` driven by the
        plan (injected latency lands in the simulated timeline), and a
        :class:`~repro.core.result_store.RunCheckpoint` commits each
        completed iteration so a failed run can be resumed.

    trace:
        An :class:`~repro.obs.EventTracer` recording the run's event
        timeline.  Use ``EventTracer.sim()``: the replay emits every
        fill / internal / external / read / morph event on simulated
        time, deterministically per seed, ready for
        :func:`~repro.obs.write_chrome_trace`.  With a ``report``, the
        trace's overlap analytics and the ``Cost_OPTserial`` conformance
        verdict are folded into ``report.derived``.

    telemetry:
        A :class:`~repro.obs.TelemetrySampler`, forwarded to
        :func:`~repro.core.framework.run_opt`, which ticks it at every
        iteration boundary.  A sim-clock sampler produces a
        byte-deterministic JSONL tick stream (``repro triangulate
        --telemetry``); see :mod:`repro.obs.telemetry`.

    attribution:
        An :class:`~repro.obs.attribution.Attribution`, forwarded to
        :func:`~repro.core.framework.run_opt`: candidate / external /
        internal op charges land in degree-bucketed cells under the
        plugin's name and source ``disk`` (``repro profile``).

    Returns a :class:`TriangulationResult` whose ``elapsed`` is the
    simulated wall time and whose ``extra`` carries the trace and the
    scheduler result for deeper analysis.
    """
    tracer = trace if trace is not None and trace.enabled else None
    plugin = resolve_plugin(plugin)
    if isinstance(source, GraphStore):
        store = source
    elif report is not None:
        with report.span("pack", page_size=page_size):
            store = make_store(source, page_size)
    else:
        store = make_store(source, page_size)
    total = buffer_pages if buffer_pages is not None else buffer_pages_for_ratio(
        store, buffer_ratio
    )
    if plugin.rescan_all:
        # MGT has no internal/external split: the whole buffer (minus one
        # streaming frame) holds the memory graph.
        config = OPTConfig(m_in=max(1, total - 1), m_ex=1, plugin=plugin)
    else:
        config = OPTConfig.even_split(total, plugin=plugin)
    if serial is None:
        serial = cores == 1
    if report is not None:
        report.meta.update(
            engine="triangulate_disk", plugin=plugin.name,
            num_pages=store.num_pages, buffer_pages=total,
            m_in=config.m_in, m_ex=config.m_ex, page_size=store.page_size,
            cores=cores, morphing=morphing, serial=serial,
        )
    trace = run_opt(store, config, sink=sink, report=report,
                    fault_plan=fault_plan, retry_policy=retry_policy,
                    checkpoint=checkpoint, tracer=tracer,
                    telemetry=telemetry, attribution=attribution)
    if report is not None:
        with report.span("replay", cores=cores):
            sim = simulate(trace, cost, cores=cores, morphing=morphing,
                           serial=serial, report=report, tracer=tracer)
        ideal_ops = ideal_cpu_ops if ideal_cpu_ops is not None else trace.total_ops
        ideal = ideal_elapsed(store, ideal_ops, cost)
        report.derive("ideal_elapsed", ideal)
        report.derive("elapsed_simulated", sim.elapsed)
        if ideal > 0:
            report.derive("overhead_vs_ideal", sim.elapsed / ideal)
        report.gauge("run.elapsed_simulated").set(sim.elapsed)
        report.counter("triangles", phase="total").inc(trace.triangles)
        report.derive("cost_conformance",
                      cost_conformance(trace, sim.elapsed, cost,
                                       basis="simulated"))
        if tracer is not None:
            fold_trace_analytics(report, tracer)
    else:
        sim = simulate(trace, cost, cores=cores, morphing=morphing,
                       serial=serial, tracer=tracer)
    extra = {"trace": trace, "sim": sim, "config": config, "store": store}
    if tracer is not None:
        extra["tracer"] = tracer
    if report is not None:
        extra["report"] = report
    return TriangulationResult(
        triangles=trace.triangles,
        cpu_ops=trace.total_ops + trace.total_candidate_ops,
        pages_read=trace.total_device_reads,
        pages_buffered=trace.total_fill_buffered,
        elapsed=sim.elapsed,
        iterations=len(trace.iterations),
        extra=extra,
    )


def ideal_elapsed(
    store: GraphStore,
    cpu_ops: int,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """The paper's ideal cost (Eq. 6): read the graph once + CPU.

    *cpu_ops* should be the in-memory EdgeIterator≻ op count of the same
    (relabeled) graph; the read uses the same channel parallelism the
    simulated engines enjoy.
    """
    return cost.read_io(store.num_pages) / cost.channels + cost.cpu(cpu_ops)


def replay(trace: RunTrace, cost: CostModel, **kwargs) -> TriangulationResult:
    """Re-schedule an existing trace under a new configuration.

    Accepts the same keyword arguments as :func:`~repro.sim.schedule.simulate`,
    including ``report=`` to map the replayed timeline into a run report.
    """
    sim = simulate(trace, cost, **kwargs)
    return TriangulationResult(
        triangles=trace.triangles,
        cpu_ops=trace.total_ops + trace.total_candidate_ops,
        pages_read=trace.total_device_reads,
        pages_buffered=trace.total_fill_buffered,
        elapsed=sim.elapsed,
        iterations=len(trace.iterations),
        extra={"trace": trace, "sim": sim},
    )
