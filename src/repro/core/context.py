"""Per-iteration state shared between the OPT driver and its plugins.

A :class:`ChunkContext` represents one internal-area fill: the inclusive
vertex range ``[v_lo, v_hi]`` whose record chains are pinned in the
internal area, their assembled adjacency lists, and the requester map
``V_req`` built during candidate identification (Algorithm 7) and
consumed by the external triangulation (Algorithm 9).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.memory.base import TriangleSink

__all__ = ["ChunkContext"]


class ChunkContext:
    """State of one OPT iteration (one internal chunk)."""

    def __init__(
        self,
        v_lo: int,
        v_hi: int,
        adjacency: dict[int, np.ndarray],
        sink: TriangleSink,
    ):
        self.v_lo = v_lo
        self.v_hi = v_hi
        self._adjacency = adjacency
        self.sink = sink
        #: candidate vertex -> internal vertices that requested it (V_req).
        self.requesters: dict[int, list[int]] = defaultdict(list)
        self._succ_cache: dict[int, np.ndarray] = {}

    def is_internal(self, v: int) -> bool:
        """Whether vertex *v*'s adjacency list is in the internal area."""
        return self.v_lo <= v <= self.v_hi

    def n_full(self, v: int) -> np.ndarray:
        """Full adjacency list of internal vertex *v* (sorted)."""
        return self._adjacency[v]

    def n_succ(self, v: int) -> np.ndarray:
        """``n_succ(v)`` of internal vertex *v*, cached per iteration."""
        cached = self._succ_cache.get(v)
        if cached is None:
            row = self._adjacency[v]
            cut = int(np.searchsorted(row, v, side="right"))
            cached = row[cut:]
            self._succ_cache[v] = cached
        return cached

    def extend_adjacency(self, mapping: dict[int, np.ndarray]) -> None:
        """Install assembled adjacency lists (used by the threaded engine)."""
        self._adjacency.update(mapping)

    def add_request(self, candidate: int, requester: int) -> None:
        """Record that internal *requester* needs external *candidate*."""
        self.requesters[candidate].append(requester)

    @property
    def candidate_vertices(self) -> list[int]:
        """All external candidate vertices recorded so far (``V_ex``)."""
        return list(self.requesters)
