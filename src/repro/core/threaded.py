"""Real-thread OPT execution against an on-disk page file.

Where :func:`repro.core.engine.triangulate_disk` charges costs to the
discrete-event simulator, this engine runs the paper's thread structure
for real: the *main thread* issues asynchronous reads (Algorithm 3),
fills the internal area, and finds internal triangles, while the SSD
reader pool and the *callback thread* concurrently load external pages
and find external triangles (Algorithms 7 and 9).  ``os.pread`` releases
the GIL, so the I/O genuinely overlaps the main thread's Python CPU work;
the two CPU streams interleave under the GIL (real multi-core speed-up is
what the discrete-event engine models).

Triangle counts are exact and wall-clock ``elapsed`` is real time — used
by the correctness tests and the quickstart, not by the paper-figure
benchmarks.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from pathlib import Path

import numpy as np

from repro.analysis.costs import cost_conformance
from repro.core.context import ChunkContext
from repro.core.engine import resolve_plugin
from repro.core.framework import _fold_fault_log
from repro.core.plugins import IteratorPlugin
from repro.core.result_store import GroupCaptureSink, RunCheckpoint
from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.memory.base import CountSink, TriangleSink, TriangulationResult
from repro.obs import (
    EventTracer,
    MetricsRegistry,
    RunReport,
    TelemetrySampler,
    fold_trace_analytics,
    get_logger,
)
from repro.sim.costmodel import DEFAULT_COST_MODEL
from repro.sim.trace import ExternalRead, IterationTrace, RunTrace
from repro.storage.faults import FaultPlan, FaultyPageFile, RetryPolicy
from repro.storage.layout import GraphStore
from repro.storage.page import DEFAULT_PAGE_SIZE, PageRecord
from repro.storage.ssd import ThreadedSSD

__all__ = ["triangulate_threaded"]

logger = get_logger(__name__)


class _LockedSink:
    """Serializes emissions from the main and callback threads."""

    def __init__(self, inner: TriangleSink):
        self._inner = inner
        self._lock = threading.Lock()
        self.count = 0

    def emit(self, u, v, ws):
        with self._lock:
            self.count += len(ws)
            self._inner.emit(u, v, ws)


def triangulate_threaded(
    source: Graph | GraphStore,
    directory: str | Path,
    *,
    plugin: IteratorPlugin | str = "edge-iterator",
    buffer_pages: int = 8,
    page_size: int = DEFAULT_PAGE_SIZE,
    io_workers: int = 4,
    window: int = 4,
    sink: TriangleSink | None = None,
    report: RunReport | None = None,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    checkpoint: RunCheckpoint | None = None,
    trace: EventTracer | None = None,
    telemetry: TelemetrySampler | None = None,
) -> TriangulationResult:
    """Run OPT with real threads and real file I/O.

    *directory* receives the materialized page file; ``buffer_pages`` is
    split evenly into internal and external areas as in the paper, and
    ``window`` bounds the outstanding external read requests (the
    external area's frame count in flight).

    With a :class:`~repro.obs.RunReport` *report*, the SSD counts device
    reads, async-read queue depth, and callback latency into the report's
    registry, and each iteration emits a wall-clock span.

    With a :class:`~repro.storage.faults.FaultPlan`, the page file is
    wrapped in a :class:`~repro.storage.faults.FaultyPageFile` that
    injects the plan's faults *for real* (sleeps, raised errors,
    corrupted bytes), and the SSD recovers per *retry_policy*: failing
    reads retry with backoff, and reads whose completion is lost
    (``dropped_callback`` / ``stall`` faults, which *require* a
    ``retry_policy.timeout``) are reclaimed at the iteration barrier and
    degraded to a synchronous re-read.  A fault that outlasts the policy
    surfaces as :class:`~repro.errors.FaultExhaustedError` from
    ``wait_idle`` — never a silently wrong triangle listing.

    With a :class:`~repro.core.result_store.RunCheckpoint`, each
    completed iteration commits its emitted groups; committed iterations
    are replayed on resume instead of being re-triangulated.

    With a :class:`~repro.obs.TelemetrySampler` *telemetry* (wall clock
    only — this engine's timeline is real time), the run ticks at every
    iteration barrier, rate-limited by the sampler's interval, so
    ``repro top`` can follow buffer hit rates and SSD queue depth live.

    With an :class:`~repro.obs.EventTracer` *trace* (wall clock), both
    timelines land on the event stream: the main thread's ``fill`` /
    ``internal`` / ``iteration`` slices, and the SSD's ``read.submit`` /
    ``read.service`` / ``read.callback`` events on the reader and
    callback threads — one Perfetto track per thread.  With a *report*
    too, the trace's overlap analytics (macro/micro overlap ratios,
    per-thread utilization) and the measured-vs-``Cost_OPTserial``
    conformance check are folded into ``report.derived``.
    """
    if buffer_pages < 2:
        raise ConfigurationError("buffer must hold at least two pages")
    plugin = resolve_plugin(plugin)
    if plugin.rescan_all:
        raise ConfigurationError(
            "the threaded engine implements OPT's overlapped request list; "
            "full-rescan plugins (MGT) use synchronous streaming — run them "
            "through triangulate_disk instead"
        )
    if isinstance(source, GraphStore):
        store = source
    elif report is not None:
        with report.span("pack", page_size=page_size):
            store = GraphStore.from_graph(source, page_size)
    else:
        store = GraphStore.from_graph(source, page_size)
    m_in = buffer_pages // 2
    tracer = trace if trace is not None and trace.enabled else None
    if telemetry is not None and not telemetry.enabled:
        telemetry = None
    if telemetry is not None:
        if telemetry.clock != "wall":
            raise ConfigurationError(
                "triangulate_threaded runs on real time; pass a "
                "clock='wall' telemetry sampler"
            )
        telemetry.bind(report.registry if report is not None
                       else MetricsRegistry())
    base_sink = sink if sink is not None else CountSink()
    locked_sink = _LockedSink(base_sink)
    if checkpoint is not None:
        checkpoint.bind(num_pages=store.num_pages, plugin=plugin.name,
                        m_in=m_in)
    if report is not None:
        report.meta.update(
            engine="triangulate_threaded", plugin=plugin.name,
            num_pages=store.num_pages, buffer_pages=buffer_pages,
            io_workers=io_workers, window=window,
        )

    run_trace = RunTrace(num_pages=store.num_pages, m_in=m_in, m_ex=window,
                         sync_external=False)
    start = time.perf_counter()
    iterations = 0
    page_file = store.open_page_file(directory)
    try:
        device = (FaultyPageFile(page_file, fault_plan, tracer=tracer)
                  if fault_plan is not None else page_file)
        registry = report.registry if report is not None else None
        with ThreadedSSD(device, io_workers=io_workers,
                         registry=registry, retry_policy=retry_policy,
                         tracer=tracer) as ssd:
            pid = 0
            while pid < store.num_pages:
                end = store.align_chunk_end(pid, m_in)
                if checkpoint is not None and checkpoint.has(iterations):
                    replayed = checkpoint.replay_into(iterations, locked_sink)
                    logger.debug("threaded iteration %d: replayed %d "
                                 "triangles from checkpoint",
                                 iterations, replayed)
                    run_trace.iterations.append(IterationTrace())
                    if report is not None:
                        report.counter("recovery.checkpoint.replayed").inc()
                    iterations += 1
                    pid = end + 1
                    continue
                iteration_sink = (GroupCaptureSink(locked_sink)
                                  if checkpoint is not None else locked_sink)
                logger.debug("threaded iteration %d: pages %d..%d",
                             iterations, pid, end)
                if report is not None:
                    with report.span("iteration", index=iterations):
                        itrace = _run_iteration(store, ssd, plugin,
                                                iteration_sink, pid, end,
                                                window, tracer, iterations)
                else:
                    itrace = _run_iteration(store, ssd, plugin,
                                            iteration_sink, pid, end,
                                            window, tracer, iterations)
                run_trace.iterations.append(itrace)
                if checkpoint is not None:
                    checkpoint.record(iterations, pid, end,
                                      iteration_sink.groups)
                    if report is not None:
                        report.counter("recovery.checkpoint.saved").inc()
                iterations += 1
                pid = end + 1
                if telemetry is not None:
                    telemetry.maybe_sample()
            pages_read = ssd.pages_read
    finally:
        page_file.close()
    elapsed = time.perf_counter() - start
    run_trace.triangles = locked_sink.count
    if report is not None:
        report.gauge("run.elapsed_wall").set(elapsed)
        report.counter("triangles", phase="total").inc(locked_sink.count)
        report.counter("opt.iterations").inc(iterations)
        if fault_plan is not None:
            _fold_fault_log(fault_plan, report)
        report.derive("cost_conformance",
                      cost_conformance(run_trace, elapsed, DEFAULT_COST_MODEL,
                                       basis="wall"))
        if tracer is not None:
            fold_trace_analytics(report, tracer)
    extra = {"engine": "threaded", "store": store, "trace": run_trace}
    if tracer is not None:
        extra["tracer"] = tracer
    if report is not None:
        extra["report"] = report
    return TriangulationResult(
        triangles=locked_sink.count,
        pages_read=pages_read,
        elapsed=elapsed,
        iterations=iterations,
        extra=extra,
    )


def _run_iteration(
    store: GraphStore,
    ssd: ThreadedSSD,
    plugin: IteratorPlugin,
    sink: _LockedSink,
    pid: int,
    end: int,
    window: int,
    tracer: EventTracer | None = None,
    index: int = 0,
) -> IterationTrace:
    # -- fill the internal area (Algorithm 3 lines 6-8) --------------------
    # Candidate identification runs on the callback thread while later
    # fill reads are still in flight (the paper's Algorithm 7 placement).
    itrace = IterationTrace()
    iteration_start = tracer.now() if tracer is not None else 0.0
    chunk_records: dict[int, list[PageRecord]] = {}
    v_lo, v_hi = store.chunk_vertex_range(pid, end)
    ctx = ChunkContext(v_lo, v_hi, {}, sink)

    def identify_candidates(records, page_id):
        # Distinct page_id per callback, and the single callback thread
        # serializes the stores; the main thread reads chunk_records only
        # after wait_idle().  # lint: ignore[lockset]
        chunk_records[page_id] = records
        for record in records:
            candidates, ops = plugin.candidates_for_record(ctx, record)
            # Callback-thread-only until wait_idle().  # lint: ignore[lockset]
            itrace.candidate_ops += ops
            for candidate in candidates:
                ctx.add_request(int(candidate), record.vertex)

    for page_id in range(pid, end + 1):
        ssd.async_read(page_id, identify_candidates, (page_id,))
    ssd.wait_idle()
    itrace.fill_reads = end - pid + 1
    if tracer is not None:
        tracer.complete("fill", iteration_start,
                        tracer.now() - iteration_start,
                        reads=itrace.fill_reads, index=index)

    # Assemble the chunk's full adjacency lists (read-only afterwards).
    partial: dict[int, list] = {}
    for page_id in range(pid, end + 1):
        for record in chunk_records[page_id]:
            partial.setdefault(record.vertex, []).append(record.neighbors)
    ctx.extend_adjacency(
        {
            vertex: (parts[0] if len(parts) == 1 else np.concatenate(parts))
            for vertex, parts in partial.items()
        }
    )

    # -- delegate the external triangulation (Algorithm 4) ------------------
    pages_needed: set[int] = set()
    for candidate in ctx.requesters:
        pages_needed.update(store.pages_of_candidate(candidate))
    pending = deque(sorted(pages_needed - set(range(pid, end + 1)), reverse=True))
    issue_lock = threading.Lock()

    def external_triangle(records, page_id):
        # Runs on the callback thread, concurrently with the main thread's
        # internal triangulation below (macro-level overlap).  The SSD's
        # single callback thread serializes these, so the append is safe.
        ops = 0
        for record in records:
            if record.vertex in ctx.requesters:
                ops += plugin.external_ops_for_record(ctx, record)
        # Serialized by the single callback thread; the main thread reads
        # external_reads only after wait_idle().  # lint: ignore[lockset]
        itrace.external_reads.append(ExternalRead(pid=page_id, cpu_ops=ops))
        with issue_lock:  # Algorithm 9's atomic issue of the next request
            if pending:
                next_pid = pending.popleft()
                ssd.async_read(next_pid, external_triangle, (next_pid,))

    with issue_lock:
        for _ in range(min(window, len(pending))):
            next_pid = pending.popleft()
            ssd.async_read(next_pid, external_triangle, (next_pid,))

    # -- internal triangulation on the main thread (Algorithm 5) -----------
    internal_start = tracer.now() if tracer is not None else 0.0
    for page_id in range(pid, end + 1):
        itrace.internal_page_ops.append(
            plugin.internal_ops_for_page(ctx, chunk_records[page_id]))
    if tracer is not None:
        tracer.complete("internal", internal_start,
                        tracer.now() - internal_start, index=index)

    # -- iteration barrier (Algorithm 3 line 11) -----------------------------
    ssd.wait_idle()
    if tracer is not None:
        tracer.complete("iteration", iteration_start,
                        tracer.now() - iteration_start, index=index)
    return itrace
