"""Reading and querying triangle listings in the nested representation.

:class:`NestedOutputWriter` produces the paper's ``<u, v, {w...}>``
encoding; this module is its consumer side: a streaming reader (the
decoded groups never need to fit in memory at once) and
:class:`TriangleStore`, an indexed view that answers the queries the
paper's motivating applications need — triangles per vertex (clustering
coefficients, spam signals) and per edge (trigonal connectivity).
"""

from __future__ import annotations

import struct
from collections import defaultdict
from pathlib import Path
from typing import IO, Iterator

from repro.errors import GraphFormatError

__all__ = ["TriangleStore", "read_nested_groups"]

_GROUP_HEADER = struct.Struct("<IIH")
_VERTEX = struct.Struct("<I")


def read_nested_groups(
    source: str | Path | IO[bytes],
) -> Iterator[tuple[int, int, list[int]]]:
    """Stream ``(u, v, ws)`` groups from a nested-representation file."""
    own = False
    if isinstance(source, (str, Path)):
        handle: IO[bytes] = open(source, "rb")
        own = True
    else:
        handle = source
    try:
        while True:
            header = handle.read(_GROUP_HEADER.size)
            if not header:
                return
            if len(header) != _GROUP_HEADER.size:
                raise GraphFormatError("truncated nested group header")
            u, v, count = _GROUP_HEADER.unpack(header)
            body = handle.read(_VERTEX.size * count)
            if len(body) != _VERTEX.size * count:
                raise GraphFormatError("truncated nested group body")
            ws = [
                _VERTEX.unpack_from(body, index * _VERTEX.size)[0]
                for index in range(count)
            ]
            yield u, v, ws
    finally:
        if own:
            handle.close()


class TriangleStore:
    """An indexed triangle listing supporting per-vertex/edge queries.

    Build it from a nested output file (:meth:`from_file`) or directly
    from a sink's groups.  The store keeps each triangle once as a sorted
    tuple and maintains a vertex -> triangle-index adjacency for O(degree)
    lookups.
    """

    def __init__(self) -> None:
        self._triangles: list[tuple[int, int, int]] = []
        self._by_vertex: dict[int, list[int]] = defaultdict(list)

    @classmethod
    def from_file(cls, path: str | Path) -> "TriangleStore":
        """Load a file written by :class:`NestedOutputWriter`."""
        store = cls()
        for u, v, ws in read_nested_groups(path):
            store.add_group(u, v, ws)
        return store

    def add_group(self, u: int, v: int, ws: list[int]) -> None:
        """Insert a nested group (the writer-side ``emit`` signature)."""
        for w in ws:
            index = len(self._triangles)
            triangle = tuple(sorted((int(u), int(v), int(w))))
            self._triangles.append(triangle)  # type: ignore[arg-type]
            for vertex in triangle:
                self._by_vertex[vertex].append(index)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triangles)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        return iter(self._triangles)

    def triangles_of_vertex(self, v: int) -> list[tuple[int, int, int]]:
        """All triangles containing vertex *v*."""
        return [self._triangles[i] for i in self._by_vertex.get(v, [])]

    def triangle_count_of_vertex(self, v: int) -> int:
        """Number of triangles containing vertex *v*."""
        return len(self._by_vertex.get(v, []))

    def triangles_of_edge(self, u: int, v: int) -> list[tuple[int, int, int]]:
        """All triangles containing the edge ``(u, v)``."""
        u, v = (u, v) if u <= v else (v, u)
        return [
            self._triangles[i]
            for i in self._by_vertex.get(u, [])
            if v in self._triangles[i]
        ]

    def trigonal_connectivity(self, u: int, v: int) -> int:
        """Triangle count of the edge — the paper's tightness measure."""
        return len(self.triangles_of_edge(u, v))

    def top_vertices(self, k: int = 10) -> list[tuple[int, int]]:
        """The *k* vertices with the most triangles, as (vertex, count)."""
        counts = [(vertex, len(indices))
                  for vertex, indices in self._by_vertex.items()]
        counts.sort(key=lambda item: (-item[1], item[0]))
        return counts[:k]
