"""Reading and querying triangle listings in the nested representation.

:class:`NestedOutputWriter` produces the paper's ``<u, v, {w...}>``
encoding; this module is its consumer side: a streaming reader (the
decoded groups never need to fit in memory at once) and
:class:`TriangleStore`, an indexed view that answers the queries the
paper's motivating applications need — triangles per vertex (clustering
coefficients, spam signals) and per edge (trigonal connectivity).
"""

from __future__ import annotations

import json
import struct
from collections import defaultdict
from pathlib import Path
from typing import IO, Iterator, Sequence

from repro.errors import CheckpointError, GraphFormatError

__all__ = ["GroupCaptureSink", "RunCheckpoint", "TriangleStore",
           "read_nested_groups"]

_GROUP_HEADER = struct.Struct("<IIH")
_VERTEX = struct.Struct("<I")


def read_nested_groups(
    source: str | Path | IO[bytes],
) -> Iterator[tuple[int, int, list[int]]]:
    """Stream ``(u, v, ws)`` groups from a nested-representation file."""
    own = False
    if isinstance(source, (str, Path)):
        handle: IO[bytes] = open(source, "rb")
        own = True
    else:
        handle = source
    try:
        while True:
            header = handle.read(_GROUP_HEADER.size)
            if not header:
                return
            if len(header) != _GROUP_HEADER.size:
                raise GraphFormatError("truncated nested group header")
            u, v, count = _GROUP_HEADER.unpack(header)
            body = handle.read(_VERTEX.size * count)
            if len(body) != _VERTEX.size * count:
                raise GraphFormatError("truncated nested group body")
            ws = [
                _VERTEX.unpack_from(body, index * _VERTEX.size)[0]
                for index in range(count)
            ]
            yield u, v, ws
    finally:
        if own:
            handle.close()


class GroupCaptureSink:
    """A sink wrapper that records every nested group it forwards.

    The checkpointing engines wrap the run's sink with one of these per
    *uncommitted* iteration, so a committed iteration's exact output can
    later be replayed from the checkpoint without re-triangulating.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.groups: list[tuple[int, int, list[int]]] = []

    def emit(self, u: int, v: int, ws: Sequence[int]) -> None:
        self.groups.append((int(u), int(v), [int(w) for w in ws]))
        self._inner.emit(u, v, ws)

    def __getattr__(self, name):  # count, pages_written, ...
        return getattr(self._inner, name)


class RunCheckpoint:
    """Iteration-level checkpoint of a disk-based triangulation run.

    OPT's iteration barrier (Algorithm 3 line 11) is a natural commit
    point: when iteration *i* completes, every triangle whose smallest
    vertex lives in chunk *i* has been emitted and will never be touched
    again.  The checkpoint records, per committed iteration, the chunk's
    page bounds, the emitted nested groups, and (for the simulated
    engine) the measured :class:`~repro.sim.trace.IterationTrace` — so a
    run that dies mid-iteration can be *resumed*: committed iterations
    replay their stored groups into the sink (``recovery.checkpoint.replayed``)
    and execution restarts at the first uncommitted chunk, without
    re-listing a single already-emitted triangle.

    The JSON ``save`` / ``load`` round-trip makes the checkpoint a
    durable artifact; ``meta`` pins the store geometry and plugin so a
    checkpoint can never silently replay into a different run shape.
    """

    VERSION = 1

    def __init__(self, meta: dict | None = None):
        self.meta: dict = dict(meta or {})
        self._iterations: dict[int, dict] = {}

    # -- binding -------------------------------------------------------------

    def bind(self, **meta) -> None:
        """Pin run geometry (``num_pages=...``, ``plugin=...``).

        The first run fills the fields in; a resume validates them and
        raises :class:`CheckpointError` on any mismatch.
        """
        for key, value in meta.items():
            existing = self.meta.get(key)
            if existing is None:
                self.meta[key] = value
            elif existing != value:
                raise CheckpointError(
                    f"checkpoint was recorded with {key}={existing!r}; "
                    f"this run has {key}={value!r}"
                )

    # -- recording -----------------------------------------------------------

    def has(self, index: int) -> bool:
        return index in self._iterations

    def committed(self) -> list[int]:
        return sorted(self._iterations)

    def record(
        self,
        index: int,
        start_pid: int,
        end_pid: int,
        groups: Sequence[tuple[int, int, list[int]]],
        trace: dict | None = None,
    ) -> None:
        """Commit iteration *index* (bounds, emitted groups, trace)."""
        if index in self._iterations:
            raise CheckpointError(f"iteration {index} is already committed")
        self._iterations[index] = {
            "start": int(start_pid),
            "end": int(end_pid),
            "groups": [(int(u), int(v), [int(w) for w in ws])
                       for u, v, ws in groups],
            "trace": trace,
        }

    # -- replay ---------------------------------------------------------------

    def bounds(self, index: int) -> tuple[int, int]:
        entry = self._iterations[index]
        return entry["start"], entry["end"]

    def trace_of(self, index: int) -> dict | None:
        return self._iterations[index].get("trace")

    def replay_into(self, index: int, sink) -> int:
        """Emit iteration *index*'s stored groups into *sink*.

        Returns the number of triangles replayed.
        """
        if index not in self._iterations:
            raise CheckpointError(f"iteration {index} is not committed")
        triangles = 0
        for u, v, ws in self._iterations[index]["groups"]:
            sink.emit(u, v, ws)
            triangles += len(ws)
        return triangles

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": "repro.core/run-checkpoint",
            "version": self.VERSION,
            "meta": self.meta,
            "iterations": {
                str(index): entry
                for index, entry in sorted(self._iterations.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunCheckpoint":
        if data.get("schema") != "repro.core/run-checkpoint":
            raise CheckpointError(
                f"not a checkpoint payload (schema {data.get('schema')!r})"
            )
        if int(data.get("version", 0)) > cls.VERSION:
            raise CheckpointError(
                f"checkpoint version {data.get('version')} is newer than "
                f"supported {cls.VERSION}"
            )
        checkpoint = cls(meta=data.get("meta", {}))
        for key, entry in data.get("iterations", {}).items():
            checkpoint._iterations[int(key)] = {
                "start": int(entry["start"]),
                "end": int(entry["end"]),
                "groups": [(int(u), int(v), [int(w) for w in ws])
                           for u, v, ws in entry["groups"]],
                "trace": entry.get("trace"),
            }
        return checkpoint

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()) + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "RunCheckpoint":
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


class TriangleStore:
    """An indexed triangle listing supporting per-vertex/edge queries.

    Build it from a nested output file (:meth:`from_file`) or directly
    from a sink's groups.  The store keeps each triangle once as a sorted
    tuple and maintains a vertex -> triangle-index adjacency for O(degree)
    lookups.
    """

    def __init__(self) -> None:
        self._triangles: list[tuple[int, int, int]] = []
        self._by_vertex: dict[int, list[int]] = defaultdict(list)

    @classmethod
    def from_file(cls, path: str | Path) -> "TriangleStore":
        """Load a file written by :class:`NestedOutputWriter`."""
        store = cls()
        for u, v, ws in read_nested_groups(path):
            store.add_group(u, v, ws)
        return store

    def add_group(self, u: int, v: int, ws: list[int]) -> None:
        """Insert a nested group (the writer-side ``emit`` signature)."""
        for w in ws:
            index = len(self._triangles)
            triangle = tuple(sorted((int(u), int(v), int(w))))
            self._triangles.append(triangle)  # type: ignore[arg-type]
            for vertex in triangle:
                self._by_vertex[vertex].append(index)

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._triangles)

    def __iter__(self) -> Iterator[tuple[int, int, int]]:
        return iter(self._triangles)

    def triangles_of_vertex(self, v: int) -> list[tuple[int, int, int]]:
        """All triangles containing vertex *v*."""
        return [self._triangles[i] for i in self._by_vertex.get(v, [])]

    def triangle_count_of_vertex(self, v: int) -> int:
        """Number of triangles containing vertex *v*."""
        return len(self._by_vertex.get(v, []))

    def triangles_of_edge(self, u: int, v: int) -> list[tuple[int, int, int]]:
        """All triangles containing the edge ``(u, v)``."""
        u, v = (u, v) if u <= v else (v, u)
        return [
            self._triangles[i]
            for i in self._by_vertex.get(u, [])
            if v in self._triangles[i]
        ]

    def trigonal_connectivity(self, u: int, v: int) -> int:
        """Triangle count of the edge — the paper's tightness measure."""
        return len(self.triangles_of_edge(u, v))

    def top_vertices(self, k: int = 10) -> list[tuple[int, int]]:
        """The *k* vertices with the most triangles, as (vertex, count)."""
        counts = [(vertex, len(indices))
                  for vertex, indices in self._by_vertex.items()]
        counts.sort(key=lambda item: (-item[1], item[0]))
        return counts[:k]
