"""Cross-run perf history: an append-only index of benchmark headlines.

The benchmarks emit ``BENCH_<name>.json`` RunReports and
``benchmarks/compare_reports.py`` diffs one pair of them — but nothing
remembered runs across PRs, so the bench *trajectory* ("are we getting
faster?") was unanswerable.  This module is that memory:

* :data:`HEADLINE_KEYS` / :func:`headline_elapsed` — the canonical
  headline-metric resolution (moved here from ``compare_reports.py``,
  which now imports it, so the differ and the history store can never
  disagree about what "elapsed" means);
* :class:`PerfRecord` — one ingested headline, keyed by
  ``(bench, metric, git_rev)`` plus a per-index sequence number;
* :class:`PerfHistory` — the append-only JSONL index: ingest reports,
  query trends, find the best-of-history value, and issue regression
  verdicts with the same threshold semantics ``compare_reports.py``
  uses (``ratio > 1 + threshold`` fails);
* :func:`render_trend` — the ASCII sparkline trajectory view behind
  ``repro perf trend``;
* :func:`validate_history_dict` — schema checking for
  ``benchmarks/check_report_schema.py``.

Ingestion is deterministic: records carry no timestamps (the git rev
*is* the time axis), so re-ingesting the same artifacts produces a
byte-identical index, and an exact ``(bench, metric, git_rev, value)``
repeat is skipped rather than appended.

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library (the sparkline renderer is imported lazily from
:mod:`repro.analysis`, same as the attribution table renderer).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

__all__ = [
    "DEFAULT_THRESHOLD",
    "HEADLINE_KEYS",
    "PerfHistory",
    "PerfRecord",
    "bench_name_of",
    "headline_elapsed",
    "render_trend",
    "validate_history_dict",
    "validate_history_file",
]

HISTORY_SCHEMA = "repro.obs/perf-history"
HISTORY_VERSION = 1

#: Resolution order for the headline elapsed-time metric — the single
#: source of truth shared with ``benchmarks/compare_reports.py``.
HEADLINE_KEYS: tuple[tuple[str, str], ...] = (
    ("derived", "elapsed_simulated"),
    ("gauge", "run.elapsed_simulated"),
    ("gauge", "sim.elapsed"),
    ("gauge", "run.elapsed_wall"),
)

#: Allowed slowdown fraction before a comparison regresses.
DEFAULT_THRESHOLD = 0.20


def headline_elapsed(payload: Mapping) -> tuple[str, float] | None:
    """The report's headline elapsed time as ``(metric_name, seconds)``.

    Most-specific first: ``derived.elapsed_simulated``, then the
    ``run.elapsed_simulated`` / ``sim.elapsed`` / ``run.elapsed_wall``
    gauges — so one resolution covers the simulated engines and the
    wall-clock engines alike.
    """
    derived = payload.get("derived") or {}
    gauges = (payload.get("metrics") or {}).get("gauges") or {}
    for kind, key in HEADLINE_KEYS:
        source = derived if kind == "derived" else gauges
        value = source.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return key, float(value)
    return None


def bench_name_of(path: str | Path) -> str:
    """The bench name encoded in a ``BENCH_<name>.json`` file name."""
    stem = Path(path).stem
    return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem


@dataclass(frozen=True)
class PerfRecord:
    """One ingested benchmark headline.

    ``(bench, metric, git_rev)`` is the logical key; ``seq`` is the
    position in the index's append order, so trends replay ingestion
    order even when revs are re-run.
    """

    bench: str
    metric: str
    value: float
    git_rev: str = "unknown"
    seq: int = 0
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "schema": HISTORY_SCHEMA,
            "version": HISTORY_VERSION,
            "bench": self.bench,
            "metric": self.metric,
            "value": self.value,
            "git_rev": self.git_rev,
            "seq": self.seq,
        }
        if self.meta:
            payload["meta"] = self.meta
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "PerfRecord":
        return cls(
            bench=str(data["bench"]),
            metric=str(data["metric"]),
            value=float(data["value"]),
            git_rev=str(data.get("git_rev", "unknown")),
            seq=int(data.get("seq", 0)),
            meta=dict(data.get("meta") or {}),
        )


class PerfHistory:
    """The append-only JSONL perf index (``repro perf``).

    One JSON object per line, each self-describing with
    ``schema``/``version`` so a line survives being separated from its
    file.  The whole file is re-read per operation — the index is tiny
    (one line per bench per rev) and this keeps the class safe for
    concurrent CI jobs appending via atomic line writes.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    # -- reading -------------------------------------------------------------

    def records(self) -> list[PerfRecord]:
        """Every record in the index, in append order."""
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line:
                records.append(PerfRecord.from_dict(json.loads(line)))
        return records

    def __len__(self) -> int:
        return len(self.records())

    def benches(self) -> list[str]:
        """Distinct bench names, sorted."""
        return sorted({record.bench for record in self.records()})

    def trend(self, bench: str, metric: str | None = None) -> list[PerfRecord]:
        """*bench*'s records in ingestion order (optionally one metric)."""
        return [
            record for record in self.records()
            if record.bench == bench
            and (metric is None or record.metric == metric)
        ]

    def best(self, bench: str, metric: str | None = None) -> PerfRecord | None:
        """The best-of-history (minimum headline) record for *bench*.

        Ties keep the earliest record, so the baseline a fresh run is
        judged against never silently moves between equal values.
        """
        best: PerfRecord | None = None
        for record in self.trend(bench, metric):
            if best is None or record.value < best.value:
                best = record
        return best

    def latest(self, bench: str, metric: str | None = None) -> PerfRecord | None:
        """The most recently ingested record for *bench*."""
        trend = self.trend(bench, metric)
        return trend[-1] if trend else None

    # -- ingestion -----------------------------------------------------------

    def ingest(self, payload: Mapping, *, bench: str,
               git_rev: str = "unknown", registry=None) -> PerfRecord | None:
        """Append *payload*'s headline to the index.

        Returns the appended :class:`PerfRecord`, or ``None`` when the
        report has no headline or the exact ``(bench, metric, git_rev,
        value)`` tuple is already present (idempotent re-ingest).  With
        a *registry*, each appended record bumps ``perf.ingested``.
        """
        headline = headline_elapsed(payload)
        if headline is None:
            return None
        metric, value = headline
        existing = self.records()
        for record in existing:
            if (record.bench == bench and record.metric == metric
                    and record.git_rev == git_rev and record.value == value):
                return None
        meta = payload.get("meta") or {}
        record = PerfRecord(
            bench=bench, metric=metric, value=value, git_rev=git_rev,
            seq=len(existing),
            meta={key: meta[key] for key in ("engine", "plugin", "graph")
                  if key in meta},
        )
        self.append(record)
        if registry is not None:
            registry.counter("perf.ingested").inc()
        return record

    def ingest_file(self, path: str | Path, *, git_rev: str = "unknown",
                    registry=None) -> PerfRecord | None:
        """Ingest a ``BENCH_*.json`` file (last line of a trajectory)."""
        text = Path(path).read_text(encoding="utf-8")
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            lines = [ln for ln in map(str.strip, text.splitlines()) if ln]
            if not lines:
                raise ValueError(f"{path}: contains no reports") from None
            payload = json.loads(lines[-1])
        return self.ingest(payload, bench=bench_name_of(path),
                           git_rev=git_rev, registry=registry)

    def append(self, record: PerfRecord) -> None:
        """Append one serialized record line (creates the file/parents)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")

    # -- verdicts ------------------------------------------------------------

    def check(self, payload_or_value, *, bench: str,
              metric: str | None = None, against: str = "best",
              threshold: float = DEFAULT_THRESHOLD) -> dict:
        """Regression verdict for a fresh value against the history.

        *payload_or_value* is a report payload (headline resolved the
        usual way) or a plain number.  *against* selects the baseline:
        ``"best"`` (best-of-history, the multi-baseline mode) or
        ``"latest"``.  Verdict semantics match ``compare_reports.py``:
        ``regressed`` when ``fresh / baseline > 1 + threshold``.
        """
        if isinstance(payload_or_value, (int, float)):
            fresh: tuple[str, float] | None = (metric or "value",
                                               float(payload_or_value))
        else:
            fresh = headline_elapsed(payload_or_value)
        if fresh is None:
            return {"status": "no-headline", "bench": bench}
        if against not in ("best", "latest"):
            raise ValueError(f"against must be 'best' or 'latest', "
                             f"got {against!r}")
        baseline = (self.best(bench, metric) if against == "best"
                    else self.latest(bench, metric))
        if baseline is None:
            return {"status": "no-history", "bench": bench,
                    "metric": fresh[0], "fresh": fresh[1]}
        ratio = fresh[1] / baseline.value
        return {
            "status": "regressed" if ratio > 1.0 + threshold else "ok",
            "bench": bench,
            "metric": fresh[0],
            "baseline": baseline.value,
            "baseline_rev": baseline.git_rev,
            "against": against,
            "fresh": fresh[1],
            "ratio": ratio,
            "threshold": threshold,
        }


def render_trend(history: PerfHistory, bench: str, *,
                 metric: str | None = None, width: int = 48) -> str:
    """ASCII trajectory of *bench*: sparkline plus first/best/last stats."""
    from repro.analysis.ascii_chart import sparkline

    records = history.trend(bench, metric)
    if not records:
        return f"{bench}: no history"
    values = [record.value for record in records]
    best = min(values)
    spark = sparkline(values, width=min(width, len(values)))
    stats = (f"  first {values[0]:.6f}s @ {records[0].git_rev}"
             f"  best {best:.6f}s"
             f"  last {values[-1]:.6f}s @ {records[-1].git_rev}")
    if best > 0:
        stats += f"  (last/best x{values[-1] / best:.3f})"
    return "\n".join([
        f"{bench} ({records[-1].metric}, {len(records)} run(s))",
        f"  {spark}",
        stats,
    ])


def validate_history_dict(data: object) -> list[str]:
    """Schema errors in one serialized history record (empty = valid)."""
    errors: list[str] = []
    if not isinstance(data, Mapping):
        return ["history record must be a JSON object"]
    if data.get("schema") != HISTORY_SCHEMA:
        errors.append(f"schema must be {HISTORY_SCHEMA!r}, "
                      f"got {data.get('schema')!r}")
    if not isinstance(data.get("version"), int):
        errors.append("version must be an integer")
    for fieldname in ("bench", "metric", "git_rev"):
        value = data.get(fieldname)
        if not isinstance(value, str) or not value:
            errors.append(f"{fieldname} must be a non-empty string")
    value = data.get("value")
    if not isinstance(value, (int, float)) or value < 0:
        errors.append("value must be a non-negative number")
    seq = data.get("seq")
    if not isinstance(seq, int) or seq < 0:
        errors.append("seq must be a non-negative integer")
    meta = data.get("meta", {})
    if not isinstance(meta, Mapping):
        errors.append("meta must be an object")
    return errors


def validate_history_file(path: str | Path) -> list[str]:
    """Schema errors across every line of a history JSONL file."""
    errors: list[str] = []
    text = Path(path).read_text(encoding="utf-8")
    seen_seq: set[int] = set()
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        for error in validate_history_dict(data):
            errors.append(f"line {number}: {error}")
        seq = data.get("seq")
        if isinstance(seq, int):
            if seq in seen_seq:
                errors.append(f"line {number}: duplicate seq {seq}")
            seen_seq.add(seq)
    return errors
