"""A dependency-free metrics registry: counters, gauges, histograms.

Metrics are identified by a name plus an optional set of ``key=value``
labels (``registry.counter("intersect.ops", kernel="merge")``).  The
registry interns one instrument per ``(name, labels)`` pair, so every
caller incrementing ``ssd.pages_read`` — the synchronous device, the
threaded SSD's reader pool, the buffer manager's loader — lands on the
same counter.

All updates take the registry's lock: the threaded engine increments
counters from the SSD reader and callback threads concurrently with the
main thread, and the thread-safety test in ``tests/test_obs.py`` hammers
exactly that path.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

from repro.obs.vocab import is_metric_name

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _format_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def _parse_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`_format_key`: ``"a{k=v,l=w}"`` → ``("a", {...})``."""
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key[:-1].partition("{")
    labels: dict[str, str] = {}
    for pair in inner.split(","):
        if pair:
            label, _, value = pair.partition("=")
            labels[label] = value
    return name, labels


class _Instrument:
    """Common identity of every metric: name, labels, shared lock."""

    kind = "instrument"

    def __init__(self, name: str, labels: LabelKey, lock: threading.Lock):
        self.name = name
        self.labels = dict(labels)
        self._lock = lock

    @property
    def key(self) -> str:
        return _format_key(self.name, _label_key(self.labels))


class Counter(_Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey, lock: threading.Lock):
        super().__init__(name, labels, lock)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge(_Instrument):
    """A value that can move in either direction."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey, lock: threading.Lock):
        super().__init__(name, labels, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Instrument):
    """Streaming distribution summary plus a bounded sample reservoir.

    Keeps exact count/sum/min/max and the first ``max_samples``
    observations for percentile estimates — enough for queue depths and
    callback latencies without unbounded memory.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelKey, lock: threading.Lock,
                 max_samples: int = 4096):
        super().__init__(name, labels, lock)
        self.max_samples = max_samples
        self._count = 0
        self._sum = 0.0
        self._min: float | None = None
        self._max: float | None = None
        self._samples: list[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._min = value if self._min is None else min(self._min, value)
            self._max = value if self._max is None else max(self._max, value)
            if len(self._samples) < self.max_samples:
                self._samples.append(value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float | None:
        with self._lock:
            return self._min

    @property
    def max(self) -> float | None:
        with self._lock:
            return self._max

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (q in 0..100)."""
        if not 0 <= q <= 100:
            raise ValueError("percentile must be in [0, 100]")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = min(len(samples) - 1, max(0, round(q / 100 * (len(samples) - 1))))
        return samples[rank]

    def summary(self, *, samples: bool = False) -> dict:
        """Streaming statistics plus nearest-rank percentiles.

        With ``samples=True`` the retained reservoir is included under a
        ``"samples"`` key, which makes the summary *mergeable*: a peer
        registry can fold it in through :meth:`merge_summary` without
        losing percentile fidelity (up to the reservoir cap).  The
        default stays compact for run-report serialization.
        """
        with self._lock:
            retained = sorted(self._samples)
            out = {
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "mean": self._sum / self._count if self._count else 0.0,
            }
            if samples:
                out["samples"] = list(self._samples)
        for q in (50, 90, 95, 99):
            if retained:
                rank = min(len(retained) - 1,
                           max(0, round(q / 100 * (len(retained) - 1))))
                out[f"p{q}"] = retained[rank]
            else:
                out[f"p{q}"] = 0.0
        return out

    def merge_summary(self, summary: Mapping) -> None:
        """Fold a serialized :meth:`summary` into this histogram.

        ``count`` / ``sum`` / ``min`` / ``max`` merge exactly.  Percentile
        fidelity needs the summary's ``"samples"`` reservoir (produced by
        ``summary(samples=True)``): the retained observations are pooled
        into this histogram's reservoir, bounded by ``max_samples``, so
        the merged percentiles equal the pooled-sample percentiles
        whenever the pooled total fits the cap.  A summary *without*
        samples still merges its exact aggregates, but contributes
        nothing to the percentile reservoir — the merged p50/p99 then
        describe only the observations that did ship samples.
        """
        count = int(summary.get("count", 0))
        if count <= 0:
            return
        lo = summary.get("min")
        hi = summary.get("max")
        with self._lock:
            self._count += count
            self._sum += float(summary.get("sum", 0.0))
            if lo is not None:
                lo = float(lo)
                self._min = lo if self._min is None else min(self._min, lo)
            if hi is not None:
                hi = float(hi)
                self._max = hi if self._max is None else max(self._max, hi)
            for value in summary.get("samples", ()):
                if len(self._samples) >= self.max_samples:
                    break
                self._samples.append(float(value))


class MetricsRegistry:
    """Interning factory and snapshot point for all instruments.

    ``strict_vocab=True`` rejects metric names outside the canonical
    vocabulary (:data:`repro.obs.vocab.METRIC_NAMES`) at interning time;
    the default stays permissive so tests and ad-hoc scripts can use
    scratch names.  The static ``obs-vocab`` lint rule enforces the same
    contract on the library's own call sites at CI time.
    """

    def __init__(self, *, strict_vocab: bool = False) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, str, LabelKey], _Instrument] = {}
        self.strict_vocab = strict_vocab

    def _get(self, cls, name: str, labels: Mapping[str, object]):
        if self.strict_vocab and not is_metric_name(name):
            raise ValueError(
                f"metric name {name!r} is not in the canonical vocabulary "
                f"(repro.obs.vocab.METRIC_NAMES)"
            )
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, key[2], self._lock)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):  # pragma: no cover - interning guard
                raise TypeError(f"metric {name!r} already registered as "
                                f"{metric.kind}")
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get(Histogram, name, labels)

    def value(self, name: str, **labels):
        """Current value of a counter/gauge by name, or 0 if absent."""
        key_labels = _label_key(labels)
        with self._lock:
            for kind in ("counter", "gauge"):
                metric = self._metrics.get((kind, name, key_labels))
                if metric is not None:
                    break
        if metric is None:
            return 0
        return metric.value

    def instruments(self) -> Iterable[_Instrument]:
        with self._lock:
            return list(self._metrics.values())

    def snapshot(self, *, histogram_samples: bool = False) -> dict:
        """Plain-dict export: ``{counters: {key: value}, gauges: ...}``.

        ``histogram_samples=True`` ships each histogram's retained
        reservoir alongside its summary so the snapshot is mergeable
        with percentile fidelity (see :meth:`merge_snapshot`); the
        process-parallel workers use this mode, run-report serialization
        keeps the compact default.
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict] = {}
        for metric in self.instruments():
            if isinstance(metric, Counter):
                counters[metric.key] = metric.value
            elif isinstance(metric, Gauge):
                gauges[metric.key] = metric.value
            elif isinstance(metric, Histogram):
                histograms[metric.key] = metric.summary(
                    samples=histogram_samples)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a serialized :meth:`snapshot` into this registry.

        The process-parallel engine ships worker metrics across process
        boundaries as plain snapshot dicts (a live registry holds a
        lock, which does not pickle).  Counters add, gauges take the
        snapshot's value.  Histograms merge through
        :meth:`Histogram.merge_summary`: exact ``count``/``sum``/
        ``min``/``max`` always, and full percentile fidelity when the
        snapshot was taken with ``histogram_samples=True`` (the merged
        p99 then equals the p99 of the pooled samples, up to the
        reservoir cap — the regression tests in ``tests/test_obs.py``
        pin exactly this).  A sample-free snapshot merges aggregates
        only; its observations are invisible to merged percentiles.
        """
        for key, value in snapshot.get("counters", {}).items():
            name, labels = _parse_key(key)
            self.counter(name, **labels).inc(int(value))
        for key, value in snapshot.get("gauges", {}).items():
            name, labels = _parse_key(key)
            self.gauge(name, **labels).set(float(value))
        for key, summary in snapshot.get("histograms", {}).items():
            name, labels = _parse_key(key)
            self.histogram(name, **labels).merge_summary(summary)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold *other*'s counters and gauges into this registry.

        Counters add; gauges take the other's latest value; histograms
        are merged by re-observing the retained samples.
        """
        for metric in other.instruments():
            if isinstance(metric, Counter):
                self.counter(metric.name, **metric.labels).inc(metric.value)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, **metric.labels).set(metric.value)
            elif isinstance(metric, Histogram):
                mine = self.histogram(metric.name, **metric.labels)
                with metric._lock:
                    samples = list(metric._samples)
                for sample in samples:
                    mine.observe(sample)
