"""Bounded in-memory time series: the telemetry pipeline's storage.

A :class:`Series` is a ring buffer of ``(t, value)`` points — the last
``capacity`` samples of one scalar signal (a counter's cumulative value,
a counter's per-second rate, a gauge, a histogram percentile, one
worker's chunk progress).  A :class:`SeriesBank` interns series by name,
exactly as the :class:`~repro.obs.registry.MetricsRegistry` interns
instruments, so every sampler tick lands its readings on stable keys
(``"buffer.hits.rate"``, ``"parallel.w0.chunks"``).

Ring buffers keep live telemetry bounded by construction: a sampler
ticking once a second for a week still holds ``capacity`` points per
series, which is what lets the pipeline stay on for arbitrarily long
runs (the query-server/streaming arc in ROADMAP.md) without growing.

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library, and nothing here reads a clock — callers supply
``t``, which is what keeps sim-clock telemetry a pure function of the
workload.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Iterable, Iterator

__all__ = ["Series", "SeriesBank"]

#: One sampled point: (timestamp, value).
Point = tuple[float, float]


class Series:
    """One named signal: a bounded, append-only sequence of points.

    Timestamps are whatever clock the sampler runs on — wall seconds
    since its epoch, or iteration ordinals in sim mode — and must be
    supplied by the caller (this class never reads a clock).
    """

    def __init__(self, name: str, *, capacity: int = 512):
        if capacity < 1:
            raise ValueError("series capacity must be at least one point")
        self.name = name
        self.capacity = capacity
        self._points: deque[Point] = deque(maxlen=capacity)

    def append(self, t: float, value: float) -> None:
        self._points.append((float(t), float(value)))

    def points(self) -> list[Point]:
        """All retained points, oldest first."""
        return list(self._points)

    def values(self) -> list[float]:
        return [value for _, value in self._points]

    def times(self) -> list[float]:
        return [t for t, _ in self._points]

    def last(self) -> Point | None:
        return self._points[-1] if self._points else None

    def rate(self) -> float:
        """Mean slope over the retained window (value units per t unit).

        The straight line between the oldest and newest retained points —
        the chunk-completion rate the ``repro top`` ETA uses.  Zero when
        fewer than two points are retained or time has not advanced.
        """
        if len(self._points) < 2:
            return 0.0
        t0, v0 = self._points[0]
        t1, v1 = self._points[-1]
        if t1 <= t0:
            return 0.0
        return (v1 - v0) / (t1 - t0)

    def __len__(self) -> int:
        return len(self._points)

    def to_dict(self) -> dict:
        return {"name": self.name, "capacity": self.capacity,
                "points": [[t, v] for t, v in self._points]}


class SeriesBank:
    """Interning factory for :class:`Series`, keyed by name.

    Thread-safe at the interning level: the wall-clock sampler's
    background thread and a caller inspecting the bank may race on
    :meth:`series`, so the name table takes a lock.  Appends go through
    the sampler's own lock (one writer), so `Series` itself stays plain.
    """

    def __init__(self, *, capacity: int = 512):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._series: dict[str, Series] = {}

    def series(self, name: str) -> Series:
        with self._lock:
            found = self._series.get(name)
            if found is None:
                found = Series(name, capacity=self.capacity)
                self._series[name] = found
            return found

    def record(self, name: str, t: float, value: float) -> None:
        self.series(name).append(t, value)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def get(self, name: str) -> Series | None:
        with self._lock:
            return self._series.get(name)

    def items(self) -> Iterator[tuple[str, Series]]:
        with self._lock:
            snapshot = sorted(self._series.items())
        return iter(snapshot)

    def __len__(self) -> int:
        with self._lock:
            return len(self._series)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._series

    def to_dict(self) -> dict:
        """Deterministic export: series sorted by name, points in order."""
        return {name: series.to_dict() for name, series in self.items()}

    def last_values(self, names: Iterable[str] | None = None) -> dict:
        """``{name: latest value}`` for *names* (default: every series)."""
        selected = list(names) if names is not None else self.names()
        out: dict[str, float] = {}
        for name in selected:
            series = self.get(name)
            if series is None:
                continue
            last = series.last()
            if last is not None:
                out[name] = last[1]
        return out
