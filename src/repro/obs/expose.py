"""Telemetry exposition: Prometheus text format and the ``repro top`` view.

Three consumers read the live pipeline, and this module serves all of
them from the same tick records :class:`~repro.obs.telemetry.TelemetrySampler`
produces:

* :func:`expose_text` — Prometheus-style plain text (``# TYPE`` headers,
  ``repro_``-prefixed sanitized names, labels preserved, histogram
  summaries as ``quantile`` series).  ``repro top --format prom`` prints
  it; the future query server will serve it over HTTP verbatim.
* :func:`render_top` — the live ASCII dashboard: per-worker progress
  bars, an ETA extrapolated from the chunk-completion rate, a buffer
  hit-rate sparkline, and the busiest counter rates.
* :func:`read_telemetry_jsonl` — rebuilds tick records from a streamed
  ``--telemetry out.jsonl`` file, tolerating a torn final line (the run
  may still be appending while ``repro top`` follows).

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library (the sparkline helper lives in
:mod:`repro.analysis.ascii_chart`, which is equally dependency-free).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.obs.registry import MetricsRegistry, _parse_key

__all__ = ["expose_text", "read_telemetry_jsonl", "render_top"]

#: Prometheus metric-name alphabet is [a-zA-Z0-9_:]; everything else
#: (the vocabulary's dots, mostly) becomes an underscore.
_NAME_PREFIX = "repro_"

#: Histogram summary fields exposed as quantile series.
_QUANTILES = (("p50", "0.5"), ("p99", "0.99"))


def _sanitize(name: str) -> str:
    # Non-ASCII alphanumerics (unicode metric names) are outside the
    # Prometheus alphabet too, so they fold to underscores like the dots.
    out = [ch if (ch.isascii() and ch.isalnum()) or ch in "_:" else "_"
           for ch in name]
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return _NAME_PREFIX + text


def _escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote, and line-feed are the three characters the
    format requires escaping inside double-quoted label values.
    """
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and line-feed only (no quotes)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _labels_text(labels: Mapping[str, str], extra: Mapping[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(f'{key}="{_escape_label_value(value)}"'
                     for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, bool):  # defensive: bools are ints in Python
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def expose_text(source: Mapping | MetricsRegistry,
                help_text: Mapping[str, str] | None = None) -> str:
    """Render a snapshot or tick record as Prometheus text exposition.

    *source* is a :class:`MetricsRegistry`, a ``registry.snapshot()``
    dict, or a telemetry tick record (which is a superset of a snapshot).
    Output is deterministic: families sorted by exposed name, series
    within each family sorted by their label sets, one ``# HELP`` /
    ``# TYPE`` header pair per family, labels preserved from the
    registry's ``name{k=v}`` keys.  Label values and help text are
    escaped per the exposition format (backslash, quote, line-feed).

    *help_text* optionally maps raw metric names (vocabulary form,
    e.g. ``"buffer.hits"``) to ``# HELP`` strings; unmapped families get
    a generated line naming the raw metric.
    """
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    help_text = help_text or {}
    lines: list[str] = []
    families: dict[str, tuple[str, str, list[str]]] = {}

    def family(exposed: str, kind: str, raw: str) -> list[str]:
        if exposed not in families:
            help_line = help_text.get(raw, f"repro metric {raw!r}")
            families[exposed] = (kind, _escape_help(help_line), [])
        return families[exposed][2]

    for key, value in snapshot.get("counters", {}).items():
        name, labels = _parse_key(key)
        exposed = _sanitize(name)
        family(exposed, "counter", name).append(
            f"{exposed}{_labels_text(labels)} {_format_value(int(value))}")
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = _parse_key(key)
        exposed = _sanitize(name)
        family(exposed, "gauge", name).append(
            f"{exposed}{_labels_text(labels)} {_format_value(value)}")
    for key, summary in snapshot.get("histograms", {}).items():
        name, labels = _parse_key(key)
        exposed = _sanitize(name)
        rows = family(exposed, "summary", name)
        for field, quantile in _QUANTILES:
            if field in summary:
                rows.append(
                    f"{exposed}"
                    f"{_labels_text(labels, {'quantile': quantile})} "
                    f"{_format_value(summary[field])}")
        rows.append(f"{exposed}_count{_labels_text(labels)} "
                    f"{_format_value(int(summary.get('count', 0)))}")
        if "sum" in summary:
            rows.append(f"{exposed}_sum{_labels_text(labels)} "
                        f"{_format_value(summary['sum'])}")
    for exposed in sorted(families):
        kind, help_line, rows = families[exposed]
        lines.append(f"# HELP {exposed} {help_line}")
        lines.append(f"# TYPE {exposed} {kind}")
        # Registry insertion order is run-dependent; sorted series make
        # the exposition diffable across runs.
        lines.extend(sorted(rows))
    return "\n".join(lines) + ("\n" if lines else "")


def read_telemetry_jsonl(path: str | Path) -> list[dict]:
    """Tick records from a ``--telemetry`` JSONL file, oldest first.

    A torn final line (the producing run is mid-write) is skipped rather
    than raised — follow mode simply picks the record up on its next
    poll.
    """
    text = Path(path).read_text(encoding="utf-8")
    ticks: list[dict] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            ticks.append(record)
    return ticks


# ---------------------------------------------------------------------------
# The `repro top` frame
# ---------------------------------------------------------------------------


def _progress_bar(fraction: float, width: int) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = round(fraction * width)
    return "█" * filled + "·" * (width - filled)


def _delta_series(ticks: Sequence[Mapping], numerator: str,
                  denominator: str | None = None) -> list[float]:
    """Per-tick delta of a counter, optionally as a hit-rate fraction."""
    values: list[float] = []
    prev_n = prev_d = None
    for tick in ticks:
        counters = tick.get("counters", {})
        n = float(counters.get(numerator, 0))
        d = n + float(counters.get(denominator, 0)) if denominator else n
        if prev_n is not None:
            dn = n - prev_n
            dd = d - prev_d
            values.append(dn / dd if denominator and dd > 0 else dn)
        prev_n, prev_d = n, d
    return values


def _eta(tick: Mapping, ticks: Sequence[Mapping]) -> float | None:
    """Remaining seconds from the recent chunk-completion rate."""
    workers = tick.get("workers")
    if not workers:
        return None
    total = workers.get("total_chunks")
    done = workers.get("chunks_done")
    if not total or done is None or done >= total:
        return None
    points = [(float(t.get("t", 0.0)), float(t["workers"]["chunks_done"]))
              for t in ticks if t.get("workers")]
    if len(points) < 2:
        return None
    (t0, d0), (t1, d1) = points[0], points[-1]
    if t1 <= t0 or d1 <= d0:
        return None
    rate = (d1 - d0) / (t1 - t0)
    return (total - done) / rate


def render_top(ticks: Sequence[Mapping], *, width: int = 72) -> str:
    """One ``repro top`` frame from a tick history (latest tick rules).

    Sections, each skipped when its data is absent: a header (tick count,
    clock position, sample rate), per-worker progress bars with chunk /
    ops / steal columns and staleness ages, an ETA from the
    chunk-completion rate, a buffer hit-rate sparkline, and the busiest
    counter rates of the latest tick.
    """
    from repro.analysis.ascii_chart import sparkline

    if not ticks:
        return "(no telemetry samples)"
    tick = ticks[-1]
    t = float(tick.get("t", 0.0))
    lines = [
        f"repro top — sample {tick.get('seq', len(ticks) - 1)}"
        f" @ t={t:.3f}{'  [final]' if tick.get('final') else ''}"
    ]
    workers = tick.get("workers")
    if workers and workers.get("per"):
        total = int(workers.get("total_chunks") or 0)
        bar_width = max(8, min(32, width - 44))
        for wid, state in sorted(workers["per"].items(),
                                 key=lambda kv: int(kv[0])):
            done = int(state.get("chunks", 0))
            frac = done / total if total else 0.0
            age = state.get("age")
            age_text = f" age {age:5.2f}s" if age is not None else ""
            status = state.get("status", "run")
            lines.append(
                f"w{int(wid):<2} [{_progress_bar(frac, bar_width)}] "
                f"{done:>4}/{total or '?':<4} chunks  "
                f"ops {int(state.get('ops', 0)):>10,}  "
                f"steals {int(state.get('steals', 0)):>3}"
                f"{age_text}  {status}"
            )
        eta = _eta(tick, ticks)
        done_total = int(workers.get("chunks_done", 0))
        summary = f"chunks {done_total}/{total}" if total else ""
        if eta is not None:
            summary += f"  eta {eta:.1f}s"
        stragglers = int(workers.get("stragglers", 0))
        if stragglers:
            summary += f"  stragglers {stragglers}"
        if summary:
            lines.append(summary)
    hits = (_delta_series(ticks, "buffer.hits", "buffer.misses")
            if any("buffer.hits" in t.get("counters", {}) for t in ticks)
            else [])
    if hits:
        spark = sparkline(hits, width=min(len(hits), width - 24))
        lines.append(f"buffer hit rate  |{spark}| "
                     f"{hits[-1] * 100:5.1f}% last")
    rates = tick.get("rates", {})
    busiest = sorted(
        ((key, rate) for key, rate in rates.items() if rate > 0),
        key=lambda kv: -kv[1],
    )[:5]
    if busiest:
        name_width = max(len(key) for key, _ in busiest)
        lines.append("hottest rates:")
        for key, rate in busiest:
            history = [float(t.get("rates", {}).get(key, 0.0))
                       for t in ticks]
            spark = sparkline(history, width=min(len(history), 24))
            lines.append(f"  {key:<{name_width}} {rate:>12,.1f}/s "
                         f"|{spark}|")
    return "\n".join(lines)
