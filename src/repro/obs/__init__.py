"""Unified observability: metrics registry, phase spans, run reports.

Every measurement the reproduction makes — I/O page counts, intersection
operations, buffer hit rates, simulated and wall-clock phase times — flows
through this package so that one run produces one comparable artifact:

* :class:`MetricsRegistry` — dependency-free counters, gauges, and
  histograms with labels, safe to update from the SSD callback thread;
* :class:`SpanTracker` / ``span()`` — hierarchical phase timing carrying
  both wall-clock seconds and simulated seconds in the same tree;
* :class:`RunReport` — the export path: JSON / JSONL serialization, an
  ASCII summary table, and a stable schema that ``BENCH_*.json``
  trajectory files and the CLI's ``--report`` flag share;
* :class:`EventTracer` — causal event tracing on both timelines, with
  Chrome ``trace_event`` (Perfetto) export, an ASCII Gantt renderer,
  and overlap analytics (:mod:`repro.obs.trace`);
* :mod:`repro.obs.vocab` — the canonical metric / trace-event name
  vocabulary every emitter must draw from (statically enforced by the
  ``obs-vocab`` rule of :mod:`repro.lint`).

The engines accept ``report=`` and record into it; nothing here imports
anything outside the standard library, so storage/sim/core modules can
depend on it freely.
"""

from repro.obs.attribution import (
    Attribution,
    AttributionScope,
    degree_bucket,
    render_attribution,
    validate_attribution_dict,
)
from repro.obs.expose import expose_text, read_telemetry_jsonl, render_top
from repro.obs.history import (
    PerfHistory,
    PerfRecord,
    headline_elapsed,
    render_trend,
    validate_history_dict,
)
from repro.obs.logsetup import configure_logging, get_logger
from repro.obs.profile import (
    StackSampler,
    collapsed_text,
    to_speedscope,
    validate_speedscope,
    write_speedscope,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.report import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    RunReport,
    validate_report_dict,
)
from repro.obs.series import Series, SeriesBank
from repro.obs.spans import Span, SpanTracker
from repro.obs.telemetry import TelemetrySampler, fold_telemetry
from repro.obs.trace import (
    TRACE_SCHEMA_NAME,
    TRACE_SCHEMA_VERSION,
    EventTracer,
    TraceEvent,
    ascii_gantt,
    fold_trace_analytics,
    from_chrome_trace,
    overlap_analytics,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.vocab import (
    EXTERNAL_CPU_EVENTS,
    METRIC_NAMES,
    TRACE_EVENT_NAMES,
    WORK_EVENTS,
    is_metric_name,
    is_trace_event_name,
)

__all__ = [
    "EXTERNAL_CPU_EVENTS",
    "METRIC_NAMES",
    "TRACE_EVENT_NAMES",
    "WORK_EVENTS",
    "is_metric_name",
    "is_trace_event_name",
    "Attribution",
    "AttributionScope",
    "Counter",
    "EventTracer",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PerfHistory",
    "PerfRecord",
    "RunReport",
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "Series",
    "SeriesBank",
    "Span",
    "SpanTracker",
    "StackSampler",
    "TRACE_SCHEMA_NAME",
    "TRACE_SCHEMA_VERSION",
    "TelemetrySampler",
    "TraceEvent",
    "ascii_gantt",
    "collapsed_text",
    "configure_logging",
    "degree_bucket",
    "expose_text",
    "fold_telemetry",
    "fold_trace_analytics",
    "from_chrome_trace",
    "get_logger",
    "headline_elapsed",
    "overlap_analytics",
    "read_telemetry_jsonl",
    "render_attribution",
    "render_top",
    "render_trend",
    "to_chrome_trace",
    "to_speedscope",
    "validate_attribution_dict",
    "validate_history_dict",
    "validate_chrome_trace",
    "validate_speedscope",
    "write_chrome_trace",
    "write_speedscope",
]
