"""RunReport: one serializable artifact per run, with a stable schema.

Everything an engine measures — the metrics registry, the span tree, any
derived figures (``overhead_vs_ideal``) — lands in one :class:`RunReport`
that serializes to JSON (one report per file), appends to JSONL (one
report per line, the trajectory format ``BENCH_*.json`` files use), and
renders an ASCII summary for terminals.

The schema is versioned and validated by :func:`validate_report_dict`;
``benchmarks/check_report_schema.py`` runs that validation over every
``BENCH_*.json`` so drift fails the tier-1 tests instead of silently
breaking run-to-run comparisons.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Span, SpanTracker

__all__ = ["RunReport", "SCHEMA_NAME", "SCHEMA_VERSION", "validate_report_dict"]

SCHEMA_NAME = "repro.obs/run-report"
SCHEMA_VERSION = 1


class RunReport:
    """A run's metrics, span tree, metadata, and derived figures."""

    def __init__(
        self,
        label: str = "run",
        *,
        meta: dict | None = None,
        registry: MetricsRegistry | None = None,
        spans: SpanTracker | None = None,
        derived: dict | None = None,
    ):
        self.label = label
        self.meta: dict = dict(meta or {})
        self.registry = registry if registry is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanTracker()
        self.derived: dict = dict(derived or {})

    # -- recording shortcuts -------------------------------------------------

    def span(self, name: str, **attrs):
        return self.spans.span(name, **attrs)

    def counter(self, name: str, **labels):
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels):
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, **labels):
        return self.registry.histogram(name, **labels)

    def derive(self, name: str, value) -> None:
        """Record a derived figure (a number computed from the raw metrics)."""
        self.derived[name] = value

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_NAME,
            "version": SCHEMA_VERSION,
            "label": self.label,
            "meta": self.meta,
            "metrics": self.registry.snapshot(),
            "spans": self.spans.to_list(),
            "derived": self.derived,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        validate_report_dict(data)
        report = cls(
            data.get("label", "run"),
            meta=data.get("meta", {}),
            spans=SpanTracker.from_list(data.get("spans", [])),
            derived=data.get("derived", {}),
        )
        report._snapshot_override = data["metrics"]  # type: ignore[attr-defined]
        return report

    def metrics_snapshot(self) -> dict:
        """The metrics as plain dicts (live registry or deserialized)."""
        override = getattr(self, "_snapshot_override", None)
        return override if override is not None else self.registry.snapshot()

    def counter_value(self, key: str) -> int:
        """Look up a serialized counter by its formatted key."""
        return self.metrics_snapshot()["counters"].get(key, 0)

    def to_json(self, indent: int | None = 2) -> str:
        payload = self.to_dict()
        payload["metrics"] = self.metrics_snapshot()
        return json.dumps(payload, indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))

    def write_json(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    def append_jsonl(self, path: str | Path) -> Path:
        """Append this report as one line — the trajectory format."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as handle:
            handle.write(self.to_json(indent=None) + "\n")
        return path

    # -- presentation --------------------------------------------------------

    def summary(self, *, max_rows: int = 40) -> str:
        """ASCII summary: meta, derived figures, counters, span tree."""
        from repro.util.tables import format_table

        sections: list[str] = [f"RunReport: {self.label}"]
        if self.meta:
            rows = sorted((k, str(v)) for k, v in self.meta.items())
            sections.append(format_table(["meta", "value"], rows))
        if self.derived:
            rows = [(k, v) for k, v in sorted(self.derived.items())]
            sections.append(format_table(["derived", "value"], rows))
        metrics = self.metrics_snapshot()
        if metrics["counters"]:
            rows = sorted(metrics["counters"].items())[:max_rows]
            sections.append(format_table(["counter", "value"], rows))
        if metrics["gauges"]:
            rows = sorted(metrics["gauges"].items())[:max_rows]
            sections.append(format_table(["gauge", "value"], rows))
        if metrics["histograms"]:
            rows = [
                (key, summary["count"], summary["mean"],
                 summary.get("p50", 0.0), summary.get("p95", 0.0),
                 summary["p99"])
                for key, summary in sorted(metrics["histograms"].items())
            ][:max_rows]
            sections.append(
                format_table(
                    ["histogram", "count", "mean", "p50", "p95", "p99"], rows
                )
            )
        tree = self._render_spans()
        if tree:
            sections.append("span tree (wall s / simulated s):\n" + tree)
        chart = self._phase_chart()
        if chart:
            sections.append(chart)
        return "\n\n".join(sections)

    def _render_spans(self, *, max_lines: int = 60) -> str:
        lines: list[str] = []

        def render(span: Span, depth: int) -> None:
            if len(lines) >= max_lines:
                return
            wall = "-" if span.wall_elapsed is None else f"{span.wall_elapsed:.4f}"
            sim = "-" if span.sim_elapsed is None else f"{span.sim_elapsed:.4f}"
            attrs = ""
            if span.attrs:
                inner = ", ".join(f"{k}={v}" for k, v in sorted(span.attrs.items()))
                attrs = f"  [{inner}]"
            lines.append(f"{'  ' * depth}{span.name}: {wall} / {sim}{attrs}")
            for child in span.children:
                render(child, depth + 1)

        for root in self.spans.roots:
            render(root, 0)
        if len(lines) >= max_lines:
            lines.append("... (span tree truncated)")
        return "\n".join(lines)

    def _phase_chart(self) -> str | None:
        """Bar chart of simulated seconds per phase, if any.

        Collapses leaf spans by name, so per-iteration fill /
        internal-triangulation / external-triangulation children sum
        into one bar per phase.
        """
        from repro.analysis.ascii_chart import bar_chart

        totals: dict[str, float] = {}
        for root in self.spans.roots:
            for span in root.iter():
                if span.children or not span.sim_elapsed:
                    continue
                totals[span.name] = totals.get(span.name, 0.0) + span.sim_elapsed
        if not totals:
            return None
        return bar_chart(list(totals), list(totals.values()),
                         unit="s", title="simulated seconds by phase")


def validate_report_dict(data: dict) -> None:
    """Raise ``ValueError`` describing every way *data* violates the schema."""
    errors: list[str] = []

    def expect(condition: bool, message: str) -> None:
        if not condition:
            errors.append(message)

    expect(isinstance(data, dict), "report must be a JSON object")
    if not isinstance(data, dict):
        raise ValueError("; ".join(errors))
    expect(data.get("schema") == SCHEMA_NAME,
           f"schema must be {SCHEMA_NAME!r}, got {data.get('schema')!r}")
    expect(isinstance(data.get("version"), int),
           "version must be an integer")
    if isinstance(data.get("version"), int):
        expect(data["version"] <= SCHEMA_VERSION,
               f"version {data['version']} is newer than supported "
               f"{SCHEMA_VERSION}")
    expect(isinstance(data.get("label"), str) and data.get("label"),
           "label must be a non-empty string")
    expect(isinstance(data.get("meta"), dict), "meta must be an object")
    expect(isinstance(data.get("derived"), dict), "derived must be an object")

    metrics = data.get("metrics")
    expect(isinstance(metrics, dict), "metrics must be an object")
    if isinstance(metrics, dict):
        for section in ("counters", "gauges", "histograms"):
            expect(isinstance(metrics.get(section), dict),
                   f"metrics.{section} must be an object")
        counters = metrics.get("counters")
        if isinstance(counters, dict):
            for key, value in counters.items():
                expect(isinstance(value, int) and value >= 0,
                       f"counter {key!r} must be a non-negative integer")
        gauges = metrics.get("gauges")
        if isinstance(gauges, dict):
            for key, value in gauges.items():
                expect(isinstance(value, (int, float)),
                       f"gauge {key!r} must be numeric")
        histograms = metrics.get("histograms")
        if isinstance(histograms, dict):
            for key, value in histograms.items():
                expect(isinstance(value, dict) and "count" in value
                       and "mean" in value,
                       f"histogram {key!r} must carry count and mean")

    spans = data.get("spans")
    expect(isinstance(spans, list), "spans must be a list")

    def check_span(span, path: str) -> None:
        expect(isinstance(span, dict), f"{path} must be an object")
        if not isinstance(span, dict):
            return
        expect(isinstance(span.get("name"), str) and span.get("name"),
               f"{path}.name must be a non-empty string")
        for duration in ("wall_elapsed", "sim_elapsed"):
            value = span.get(duration)
            expect(value is None or isinstance(value, (int, float)),
                   f"{path}.{duration} must be numeric or null")
        children = span.get("children", [])
        expect(isinstance(children, list), f"{path}.children must be a list")
        if isinstance(children, list):
            for i, child in enumerate(children):
                check_span(child, f"{path}.children[{i}]")

    if isinstance(spans, list):
        for i, span in enumerate(spans):
            check_span(span, f"spans[{i}]")

    if errors:
        raise ValueError("invalid run report: " + "; ".join(errors))
