"""Cost attribution: *where* the Eq. 3 operations actually go.

The metrics registry answers "how many ops did the run charge"; the
tracer answers "when"; neither answers the question the kernel-speed and
ordering arcs in ROADMAP.md hinge on: *which kernel, phase, source, and
degree regime the operations land in*.  This module is that missing
axis — a deterministic cost-attribution table.

An :class:`Attribution` accumulates integer charges into cells keyed by
``(phase, kernel, source, degree-bucket)``:

* **phase** — where in the algorithm the charge arose (``exec`` for the
  composed single-loop engines, ``parallel`` for the process engine,
  ``candidate`` / ``internal`` / ``external`` for the OPT driver's
  Algorithm 7 / 5 / 9 phases);
* **kernel** — the intersection strategy that executed the pair
  (``hash`` / ``merge`` / ``gallop`` / ``bitmap``, or the OPT plugin
  name for disk runs);
* **source** — the read path the successor lists came from
  (``memory`` / ``shm`` / ``disk``);
* **degree bucket** — the power-of-two bucket of the *probed side's*
  length, ``min(|a|, |b|)`` — exactly the quantity the paper's Eq. 3
  charge is ``min(|a|, |b|)`` of, and the quantity an adaptive (AOT
  style) kernel would switch on.

Each cell carries ``pairs`` (kernel invocations), ``ops`` (Eq. 3
charges), and ``triangles``.  All three are integers, so cells merge by
summation in any order — attribution over any partition of the vertex
range reproduces the serial table exactly, worker count and scheduling
notwithstanding.  That makes the sim-mode profile output byte-identical
across repeat runs and across ``--workers 1/2/4`` (the determinism gate
in ``tests/test_attribution.py``), and it makes conservation checkable:
:attr:`Attribution.total_ops` must equal the engine's Eq. 3 op count.

Wall-clock seconds are attributed separately at ``(phase, kernel,
source)`` granularity (per-pair timing would dominate the cost being
measured) and are *excluded* from the deterministic snapshot — sim-mode
CPU time is ``ops x CostModel.hash_probe`` by construction (Eq. 3), so
the op table already is the simulated-time attribution.

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = [
    "Attribution",
    "AttributionScope",
    "degree_bucket",
    "render_attribution",
]

ATTRIBUTION_SCHEMA = "repro.obs/attribution"
ATTRIBUTION_VERSION = 1

#: The bucket for charges that carry no degree (page-granular internal
#: ops, for example).
UNBUCKETED = "*"


#: Interned bucket labels by ``degree.bit_length()`` — the label is hit
#: once per intersection pair, so building the f-string every call would
#: dominate the charge path.
_BUCKET_LABELS: dict[int, str] = {}


def degree_bucket(degree: int | None) -> str:
    """The power-of-two bucket label for *degree*.

    ``0`` and ``1`` get their own buckets; beyond that the buckets are
    ``"2-3"``, ``"4-7"``, ``"8-15"``, ... (half-open powers of two).
    ``None`` maps to the :data:`UNBUCKETED` label for charges with no
    meaningful degree.
    """
    if degree is None:
        return UNBUCKETED
    d = int(degree)
    if d <= 0:
        return "0"
    if d == 1:
        return "1"
    return bucket_for_length(d.bit_length())


def bucket_for_length(length: int) -> str:
    """The bucket label for a ``degree.bit_length()`` value.

    ``degree_bucket(d) == bucket_for_length(d.bit_length())`` for every
    non-negative ``d`` — bit length 0 is degree 0, bit length 1 is
    degree 1, and every longer length is one power-of-two bucket.  Hot
    loops accumulate plain per-length counts and bulk-charge them
    through :meth:`AttributionScope.charge_lengths`.
    """
    if length <= 0:
        return "0"
    if length == 1:
        return "1"
    label = _BUCKET_LABELS.get(length)
    if label is None:
        lo = 1 << (length - 1)
        label = f"{lo}-{2 * lo - 1}"
        _BUCKET_LABELS[length] = label
    return label


def _bucket_sort_key(bucket: str) -> tuple[int, int]:
    """Sort buckets numerically by lower bound; ``*`` sorts last."""
    if bucket == UNBUCKETED:
        return (1, 0)
    lower = bucket.split("-", 1)[0]
    return (0, int(lower))


class AttributionScope:
    """One ``(phase, kernel, source)`` coordinate, ready to charge.

    Engines resolve their coordinates once (:meth:`Attribution.scope`)
    and charge per pair through the scope — a dict lookup per bucket,
    nothing else, so the hot loop pays a few percent, not a multiple.
    """

    __slots__ = ("_attribution", "phase", "kernel", "source", "_cells")

    def __init__(self, attribution: "Attribution", phase: str, kernel: str,
                 source: str):
        self._attribution = attribution
        self.phase = phase
        self.kernel = kernel
        self.source = source
        #: bucket -> [pairs, ops, triangles] (shared with the parent table).
        self._cells: dict[str, list[int]] = {}

    def charge(self, degree: int | None, ops: int, triangles: int = 0,
               pairs: int = 1) -> None:
        """Charge *ops* Eq. 3 operations at *degree*'s bucket."""
        bucket = degree_bucket(degree)
        cell = self._cells.get(bucket)
        if cell is None:
            cell = self._attribution._cell(
                self.phase, self.kernel, self.source, bucket)
            self._cells[bucket] = cell
        cell[0] += pairs
        cell[1] += ops
        cell[2] += triangles

    def charge_lengths(self, counts: dict[int, list[int]]) -> None:
        """Bulk-charge a ``bit_length -> [pairs, ops, triangles]`` map.

        The batched form of :meth:`charge` for per-pair hot loops: the
        loop accumulates into a plain local dict (no method call per
        pair) and folds it here once per range.
        """
        for length, (pairs, ops, triangles) in counts.items():
            bucket = bucket_for_length(length)
            cell = self._cells.get(bucket)
            if cell is None:
                cell = self._attribution._cell(
                    self.phase, self.kernel, self.source, bucket)
                self._cells[bucket] = cell
            cell[0] += pairs
            cell[1] += ops
            cell[2] += triangles

    def charge_time(self, seconds: float) -> None:
        """Attribute *seconds* of wall time to this scope's coordinate."""
        self._attribution._charge_time(
            self.phase, self.kernel, self.source, seconds)


class Attribution:
    """The cost-attribution table: deterministic integer charge cells.

    Not thread-safe by design: every concurrent execution path (thread
    pool tasks, forked workers) accumulates into its *own* table and the
    parent folds them with :meth:`merge` / :meth:`merge_snapshot` — the
    same discipline the metrics registry's snapshot merge already uses,
    and the reason the merged table is independent of scheduling.
    """

    def __init__(self) -> None:
        #: (phase, kernel, source, bucket) -> [pairs, ops, triangles]
        self._cells: dict[tuple[str, str, str, str], list[int]] = {}
        #: (phase, kernel, source) -> wall seconds
        self._seconds: dict[tuple[str, str, str], float] = {}

    # -- charging ------------------------------------------------------------

    def scope(self, *, phase: str, kernel: str, source: str) -> AttributionScope:
        """A charging handle bound to one ``(phase, kernel, source)``."""
        return AttributionScope(self, phase, kernel, source)

    def _cell(self, phase: str, kernel: str, source: str,
              bucket: str) -> list[int]:
        key = (phase, kernel, source, bucket)
        cell = self._cells.get(key)
        if cell is None:
            cell = [0, 0, 0]
            self._cells[key] = cell
        return cell

    def charge(self, *, phase: str, kernel: str, source: str,
               degree: int | None, ops: int, triangles: int = 0,
               pairs: int = 1) -> None:
        """One-off charge without a scope (tests, ad-hoc accounting)."""
        cell = self._cell(phase, kernel, source, degree_bucket(degree))
        cell[0] += pairs
        cell[1] += ops
        cell[2] += triangles

    def _charge_time(self, phase: str, kernel: str, source: str,
                     seconds: float) -> None:
        key = (phase, kernel, source)
        self._seconds[key] = self._seconds.get(key, 0.0) + float(seconds)

    # -- introspection -------------------------------------------------------

    @property
    def total_ops(self) -> int:
        """Sum of all charged ops — must equal the engine's Eq. 3 count."""
        return sum(cell[1] for cell in self._cells.values())

    @property
    def total_pairs(self) -> int:
        return sum(cell[0] for cell in self._cells.values())

    @property
    def total_triangles(self) -> int:
        return sum(cell[2] for cell in self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    def __bool__(self) -> bool:
        return bool(self._cells)

    def cells(self) -> list[dict]:
        """The charge cells as sorted plain dicts (deterministic order)."""
        rows = []
        for (phase, kernel, source, bucket) in sorted(
                self._cells,
                key=lambda k: (k[0], k[1], k[2], _bucket_sort_key(k[3]))):
            pairs, ops, triangles = self._cells[(phase, kernel, source, bucket)]
            rows.append({
                "phase": phase, "kernel": kernel, "source": source,
                "bucket": bucket, "pairs": pairs, "ops": ops,
                "triangles": triangles,
            })
        return rows

    def seconds(self) -> list[dict]:
        """Wall-second charges as sorted plain dicts."""
        return [
            {"phase": phase, "kernel": kernel, "source": source,
             "seconds": self._seconds[(phase, kernel, source)]}
            for (phase, kernel, source) in sorted(self._seconds)
        ]

    def collapsed(self) -> dict[tuple[str, ...], int]:
        """Op-weighted collapsed stacks: ``(phase, kernel, source, bucket)``.

        The uniform flame-graph input shape :mod:`repro.obs.profile`
        renders as collapsed text or a speedscope document — the same
        shape the wall :class:`~repro.obs.profile.StackSampler` produces
        from real thread stacks.
        """
        return {
            (f"phase:{row['phase']}", f"kernel:{row['kernel']}",
             f"source:{row['source']}", f"degree:{row['bucket']}"):
            row["ops"]
            for row in self.cells() if row["ops"] > 0
        }

    # -- serialization -------------------------------------------------------

    def snapshot(self, *, deterministic: bool = True) -> dict:
        """Plain-dict export, cells sorted.

        ``deterministic=True`` (the default) omits the wall-second
        charges, leaving a payload that is a pure function of the
        workload — the form the byte-determinism gate serializes.
        """
        payload: dict = {
            "schema": ATTRIBUTION_SCHEMA,
            "version": ATTRIBUTION_VERSION,
            "cells": self.cells(),
            "totals": {
                "pairs": self.total_pairs,
                "ops": self.total_ops,
                "triangles": self.total_triangles,
            },
        }
        if not deterministic:
            payload["seconds"] = self.seconds()
        return payload

    def merge_snapshot(self, snapshot: Mapping) -> None:
        """Fold a serialized :meth:`snapshot` into this table.

        The cross-process path: forked workers ship their tables as
        plain dicts (pickle-friendly) and the parent sums them.  Cells
        add; wall seconds add.
        """
        for row in snapshot.get("cells", ()):
            cell = self._cell(row["phase"], row["kernel"], row["source"],
                              row["bucket"])
            cell[0] += int(row.get("pairs", 0))
            cell[1] += int(row.get("ops", 0))
            cell[2] += int(row.get("triangles", 0))
        for row in snapshot.get("seconds", ()):
            self._charge_time(row["phase"], row["kernel"], row["source"],
                              float(row["seconds"]))

    def merge(self, other: "Attribution") -> None:
        """Fold *other*'s cells and seconds into this table."""
        for key, (pairs, ops, triangles) in other._cells.items():
            cell = self._cell(*key)
            cell[0] += pairs
            cell[1] += ops
            cell[2] += triangles
        for key, seconds in other._seconds.items():
            self._charge_time(*key, seconds)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "Attribution":
        table = cls()
        table.merge_snapshot(snapshot)
        return table


def validate_attribution_dict(data: Mapping) -> list[str]:
    """Schema errors in a serialized attribution snapshot (empty = valid).

    The :func:`repro.obs.profile.validate_speedscope` sibling for the
    attribution payload; ``benchmarks/check_report_schema.py`` runs it
    over committed ``PROFILE_*.json`` artifacts.
    """
    errors: list[str] = []
    if not isinstance(data, Mapping):
        return ["attribution must be a JSON object"]
    if data.get("schema") != ATTRIBUTION_SCHEMA:
        errors.append(f"schema must be {ATTRIBUTION_SCHEMA!r}, "
                      f"got {data.get('schema')!r}")
    if not isinstance(data.get("version"), int):
        errors.append("version must be an integer")
    cells = data.get("cells")
    if not isinstance(cells, list):
        errors.append("cells must be a list")
        cells = []
    ops_total = pairs_total = triangles_total = 0
    for index, row in enumerate(cells):
        if not isinstance(row, Mapping):
            errors.append(f"cells[{index}] must be an object")
            continue
        for field in ("phase", "kernel", "source", "bucket"):
            if not isinstance(row.get(field), str) or not row.get(field):
                errors.append(f"cells[{index}].{field} must be a non-empty "
                              f"string")
        for field in ("pairs", "ops", "triangles"):
            value = row.get(field)
            if not isinstance(value, int) or value < 0:
                errors.append(f"cells[{index}].{field} must be a "
                              f"non-negative integer")
            else:
                if field == "ops":
                    ops_total += value
                elif field == "pairs":
                    pairs_total += value
                else:
                    triangles_total += value
    totals = data.get("totals")
    if not isinstance(totals, Mapping):
        errors.append("totals must be an object")
    elif isinstance(cells, list) and not errors:
        # Conservation inside the document itself.
        for field, summed in (("ops", ops_total), ("pairs", pairs_total),
                              ("triangles", triangles_total)):
            if totals.get(field) != summed:
                errors.append(f"totals.{field}={totals.get(field)} does not "
                              f"equal the cell sum {summed}")
    return errors


def render_attribution(source: "Attribution | Mapping", *,
                       max_rows: int = 40, width: int = 28) -> str:
    """ASCII table of an attribution: one row per cell, ops-share bars.

    *source* is a live :class:`Attribution` or a serialized snapshot.
    Rows sort by descending ops (the question is "where do the ops go"),
    ties broken by coordinate for deterministic output.
    """
    from repro.util.tables import format_table

    snapshot = (source.snapshot(deterministic=False)
                if isinstance(source, Attribution) else source)
    cells: Iterable[Mapping] = snapshot.get("cells", ())
    totals = snapshot.get("totals", {})
    total_ops = int(totals.get("ops", 0))
    rows = sorted(
        cells,
        key=lambda row: (-int(row["ops"]), row["phase"], row["kernel"],
                         row["source"], _bucket_sort_key(row["bucket"])),
    )[:max_rows]
    table_rows = []
    for row in rows:
        ops = int(row["ops"])
        share = ops / total_ops if total_ops else 0.0
        bar = "#" * max(1 if ops else 0, round(share * width))
        table_rows.append((
            row["phase"], row["kernel"], row["source"], row["bucket"],
            f"{int(row['pairs']):,}", f"{ops:,}", f"{share * 100:5.1f}%",
            f"{int(row['triangles']):,}", bar,
        ))
    sections = [format_table(
        ["phase", "kernel", "source", "degree", "pairs", "ops", "ops%",
         "triangles", "share"],
        table_rows,
        title=f"cost attribution — {total_ops:,} Eq. 3 ops, "
              f"{int(totals.get('triangles', 0)):,} triangles",
    )]
    seconds = snapshot.get("seconds") or ()
    if seconds:
        sec_rows = [
            (row["phase"], row["kernel"], row["source"],
             f"{float(row['seconds']):.4f}")
            for row in sorted(seconds, key=lambda r: -float(r["seconds"]))
        ]
        sections.append(format_table(
            ["phase", "kernel", "source", "wall (s)"], sec_rows,
            title="wall time by phase (excluded from deterministic output)",
        ))
    return "\n\n".join(sections)
