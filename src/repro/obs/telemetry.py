"""Live telemetry: periodic sampling of the metrics registry into series.

Every observability surface before this module was post-hoc — the
:class:`~repro.obs.report.RunReport` serializes *after* the run, the
trace exports *after* the run.  The :class:`TelemetrySampler` closes that
gap: it periodically reads a :class:`~repro.obs.registry.MetricsRegistry`
and folds each reading into bounded ring-buffer time series
(:mod:`repro.obs.series`) — counter cumulative values *and* rates, gauge
values, histogram count/p50/p99 — plus one JSONL *tick record* per
sample, streamable to disk while the run is still going.  ``repro top``
renders those ticks live; admission control and backpressure (the
query-server arc in ROADMAP.md) will read the same series in-process.

Two clock modes, mirroring :class:`~repro.obs.trace.EventTracer`:

* ``clock="wall"`` — timestamps are seconds since the sampler's epoch.
  ``sample()`` may be called at natural boundaries (the threaded engine
  samples per iteration) and/or from the optional background thread
  (:meth:`start` / :meth:`stop`) for long-running processes.
* ``clock="sim"`` — every sample *must* carry an explicit ``now``
  (engines pass iteration/chunk ordinals), and the background thread is
  refused.  A sim-clock tick stream is therefore a pure function of the
  workload: byte-identical JSONL across repeat runs — and, for the
  process-parallel engine's merge-replay sampling, across worker counts
  (the determinism gate in ``tests/test_telemetry.py``).

Overhead contract (pinned by ``benchmarks/bench_telemetry_overhead.py``):
an enabled per-iteration sampler costs <10% wall clock on the Fig. 3a
workload, and ``enabled=False`` costs nothing beyond the ``is not None``
guard — engines normalize a disabled sampler to ``None`` on entry, the
same idiom the tracer uses.

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import IO, Callable, Mapping

from repro.obs.registry import MetricsRegistry
from repro.obs.series import SeriesBank

__all__ = ["TelemetrySampler", "fold_telemetry"]

#: Histogram summary fields copied onto series / tick records.
_HISTOGRAM_FIELDS = ("count", "mean", "p50", "p99")


class TelemetrySampler:
    """Samples a metrics registry into bounded time series + JSONL ticks.

    Parameters
    ----------
    registry:
        The registry to sample.  May be ``None`` at construction (the
        CLI builds the sampler before the engine builds its report) and
        bound later with :meth:`bind`; sampling unbound raises.
    clock:
        ``"wall"`` (implicit timestamps allowed, background thread
        allowed) or ``"sim"`` (explicit ``now`` required, deterministic).
    interval:
        Minimum seconds between :meth:`maybe_sample` ticks and the
        background thread's period (wall clock only).
    capacity:
        Ring-buffer size: points retained per series and tick records
        retained in memory.  Streams written via *stream* are unbounded
        by design (they live on disk).
    stream:
        Optional text file object; every tick record is appended to it
        as one JSON line and flushed, so a concurrent ``repro top`` can
        follow the run live.
    enabled:
        ``False`` constructs an inert sampler; engines normalize it to
        ``None`` so the hot path pays only the ``is not None`` guard.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        *,
        clock: str = "wall",
        interval: float = 0.5,
        capacity: int = 512,
        stream: IO[str] | None = None,
        enabled: bool = True,
    ):
        if clock not in ("wall", "sim"):
            raise ValueError(f"clock must be 'wall' or 'sim', got {clock!r}")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.registry = registry
        self.clock = clock
        self.interval = interval
        self.capacity = capacity
        self.enabled = enabled
        self.bank = SeriesBank(capacity=capacity)
        self._stream = stream
        self._lock = threading.Lock()
        self._ticks: list[dict] = []
        self._seq = 0
        self._last_t: float | None = None
        self._prev_counters: dict[str, float] = {}
        self._epoch = time.perf_counter()
        self._providers: list[tuple[str, Callable[[float], object]]] = []
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- wiring --------------------------------------------------------------

    def bind(self, registry: MetricsRegistry) -> MetricsRegistry:
        """Attach *registry* if none is bound yet; returns the bound one.

        Engines call this on entry: a sampler constructed without a
        registry (the CLI path) adopts the run's report registry, while
        an explicitly bound sampler keeps sampling what its caller chose.
        """
        if self.registry is None:
            self.registry = registry
        return self.registry

    def add_provider(self, name: str,
                     provider: Callable[[float], object]) -> None:
        """Merge ``provider(now)``'s payload into each tick under *name*.

        The heartbeat monitor registers a provider that contributes the
        per-worker progress section ``repro top`` renders.
        """
        with self._lock:
            self._providers.append((name, provider))

    def now(self) -> float:
        """Seconds since the sampler's epoch (wall clock)."""
        return time.perf_counter() - self._epoch

    # -- sampling ------------------------------------------------------------

    def sample(self, now: float | None = None, **extra: object) -> dict:
        """Take one sample tick; returns the tick record.

        ``now`` is the tick's timestamp: mandatory in sim mode (the
        deterministic tick axis — iteration or chunk ordinals), optional
        in wall mode (defaults to :meth:`now`).  Keyword *extra* fields
        land on the record verbatim (``final=True`` marks the last tick
        of a run).
        """
        if not self.enabled:
            return {}
        if self.registry is None:
            raise ValueError("sampler has no registry bound; call bind()")
        if now is None:
            if self.clock == "sim":
                raise ValueError(
                    "sim-clock telemetry requires an explicit sample time "
                    "(iteration/chunk ordinal); implicit wall timestamps "
                    "would break byte-determinism"
                )
            now = self.now()
        now = float(now)
        snapshot = self.registry.snapshot()
        with self._lock:
            record = self._fold_locked(now, snapshot, extra)
        self.registry.counter("telemetry.samples").inc()
        return record

    def maybe_sample(self, now: float | None = None, **extra: object) -> dict | None:
        """Sample only if at least ``interval`` has passed since the last tick.

        The rate limiter for callers that poll faster than they want to
        sample (the parallel engine's heartbeat monitor loop).
        """
        if not self.enabled:
            return None
        probe = self.now() if now is None and self.clock == "wall" else now
        with self._lock:
            last = self._last_t
        if last is not None and probe is not None \
                and probe - last < self.interval:
            return None
        return self.sample(now, **extra)

    def _fold_locked(self, now: float, snapshot: Mapping,
                     extra: Mapping) -> dict:
        """Fold one registry snapshot into the bank and tick log."""
        seq = self._seq
        self._seq += 1
        last_t = self._last_t
        dt = (now - last_t) if last_t is not None else 0.0
        rates: dict[str, float] = {}
        for key, value in snapshot["counters"].items():
            value = float(value)
            prev = self._prev_counters.get(key)
            rate = ((value - prev) / dt
                    if prev is not None and dt > 0 else 0.0)
            rates[key] = rate
            self._prev_counters[key] = value
            self.bank.record(key, now, value)
            self.bank.record(f"{key}.rate", now, rate)
        for key, value in snapshot["gauges"].items():
            self.bank.record(key, now, float(value))
        histograms: dict[str, dict] = {}
        for key, summary in snapshot["histograms"].items():
            fields = {field: summary[field] for field in _HISTOGRAM_FIELDS}
            histograms[key] = fields
            self.bank.record(f"{key}.p50", now, float(summary["p50"]))
            self.bank.record(f"{key}.p99", now, float(summary["p99"]))
        record: dict = {
            "t": now,
            "seq": seq,
            "counters": dict(sorted(snapshot["counters"].items())),
            "gauges": dict(sorted(snapshot["gauges"].items())),
            "histograms": dict(sorted(histograms.items())),
            "rates": dict(sorted(rates.items())),
        }
        for name, provider in self._providers:
            record[name] = provider(now)
        for key, value in extra.items():
            record[key] = value
        self._last_t = now
        self._ticks.append(record)
        if len(self._ticks) > self.capacity:
            del self._ticks[0]
        if self._stream is not None:
            self._stream.write(_tick_line(record) + "\n")
            self._stream.flush()
        return record

    # -- background sampling (wall clock only) -------------------------------

    def start(self, interval: float | None = None) -> None:
        """Start a daemon thread sampling every ``interval`` seconds.

        Wall clock only: a sim-clock sampler's ticks come from engine
        boundaries, never from a wall timer (that would destroy
        byte-determinism).
        """
        if self.clock != "wall":
            raise ValueError("background sampling requires a wall-clock "
                             "sampler; sim ticks come from the engine")
        if not self.enabled:
            return
        with self._lock:
            if self._thread is not None:
                raise ValueError("sampler thread already running")
            if interval is not None:
                self.interval = interval
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="telemetry-sampler", daemon=True
            )
            self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample()

    def stop(self) -> None:
        """Stop the background thread (idempotent)."""
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5)

    def finish(self, now: float | None = None) -> dict:
        """Stop background sampling and emit the run's final tick.

        The final tick carries ``"final": true`` — the end-of-stream
        marker ``repro top``'s follow mode exits on.  In sim mode with no
        explicit *now*, the final tick lands one ordinal past the last
        sampled tick (deterministic, since the tick history is).
        """
        self.stop()
        if now is None and self.clock == "sim":
            with self._lock:
                last = self._last_t
            now = last + 1.0 if last is not None else 0.0
        return self.sample(now, final=True)

    # -- export --------------------------------------------------------------

    def ticks(self) -> list[dict]:
        """The retained tick records, oldest first."""
        with self._lock:
            return list(self._ticks)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ticks)

    def to_jsonl(self) -> str:
        """Retained ticks as JSONL — deterministic bytes in sim mode.

        Keys are sorted and separators fixed, so the bytes are a pure
        function of the tick records; in sim mode the records themselves
        are a pure function of the workload.
        """
        return "".join(_tick_line(record) + "\n" for record in self.ticks())

    def write_jsonl(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path


def _tick_line(record: Mapping) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def fold_telemetry(report: object, sampler: TelemetrySampler) -> dict:
    """Land the sampler's final series state in *report*'s derived figures.

    ``report.derived["telemetry"]`` gets the tick count plus every
    series' last value, so ``benchmarks/compare_reports.py`` diffs of two
    RunReports cover the sampled series without shipping whole ring
    buffers inside every report.  Returns the folded payload.
    """
    payload = {
        "samples": len(sampler),
        "series": sampler.bank.last_values(),
    }
    report.derive("telemetry", payload)  # type: ignore[attr-defined]
    return payload
