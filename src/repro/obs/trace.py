"""Causal event tracing: discrete timestamped events on both timelines.

Where :mod:`repro.obs.spans` aggregates *durations* into a tree, this
module records *when things happened* — the raw material for showing the
paper's temporal claims.  OPT's whole argument is about concurrency:
internal CPU work overlapping outstanding SSD reads (macro level), and
arrived-page CPU work overlapping the remaining requests (micro level).
A span tree cannot show two phases running at the same instant; an event
timeline can.

One :class:`EventTracer` records the shared **event vocabulary** both
engines emit:

=====================  ====  =====================================================
event name             ph    meaning
=====================  ====  =====================================================
``iteration``          X     one OPT iteration (Algorithm 3 outer loop)
``fill``               X     internal-area fill (reads + candidate identification)
``internal``           X     internal triangulation CPU slice (Algorithm 5)
``external``           X     external-page CPU slice (Algorithm 9, sim engine)
``read.submit``        i     ``AsyncRead`` issued (args: ``pid``, ``req``)
``read.service``       X     the device serving one page read
``read.callback``      X     completion callback running (threaded engine)
``buffer.hit``         i     request absorbed by the buffer pool (Δin / Δex)
``buffer.evict``       i     LRU eviction
``morph``              i     a worker switched roles (paper Section 3.4)
``fault.inject``       i     a fault plan action fired (real injection path)
``fault.delay``        i     injected virtual latency charged to a read (sim)
``recovery.timeout``   i     a read missed its deadline
``recovery.fallback``  i     timed-out read degraded to a synchronous re-read
=====================  ====  =====================================================

Every event carries a *track* — a thread name on the real engine
(``MainThread``, ``ssd-reader-0``, ``ssd-callback``), a simulated
resource on the discrete-event engine (``sim/core0``, ``sim/flash0``,
``sim/run``) — so the export shows one lane per concurrent actor.

Two clock modes keep the timelines honest:

* ``clock="wall"`` — implicit timestamps from ``time.perf_counter``
  relative to the tracer's epoch (the threaded engine);
* ``clock="sim"`` — **only** events with explicit timestamps are
  recorded; implicitly-timed calls are dropped.  The simulated engine
  passes scheduler times, so a sim-mode trace is a pure function of the
  workload and seed: byte-identical across runs (the determinism gate
  in ``tests/test_trace_determinism.py``).

Exports: :func:`to_chrome_trace` produces Chrome ``trace_event`` JSON —
load it in `Perfetto <https://ui.perfetto.dev>`_ or ``chrome://tracing``
— and :func:`ascii_gantt` renders the same timeline in a terminal.
:func:`overlap_analytics` computes the derived figures
(macro/micro overlap ratios, per-track utilization) that
:func:`fold_trace_analytics` lands in a run report.

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.vocab import (
    EXTERNAL_CPU_EVENTS,
    TRACE_EVENT_NAMES,
    WORK_EVENTS,
    is_trace_event_name,
)

__all__ = [
    "TRACE_SCHEMA_NAME",
    "TRACE_SCHEMA_VERSION",
    "EventTracer",
    "TraceEvent",
    "ascii_gantt",
    "fold_trace_analytics",
    "from_chrome_trace",
    "overlap_analytics",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]

TRACE_SCHEMA_NAME = "repro.obs/trace"
TRACE_SCHEMA_VERSION = 1

# WORK_EVENTS / EXTERNAL_CPU_EVENTS historically lived here; they are
# defined in repro.obs.vocab (the single source of truth for every
# metric and event name) and re-imported above for compatibility.


@dataclass(frozen=True)
class TraceEvent:
    """One discrete event: a point (``dur is None``) or a slice."""

    name: str
    ts: float
    track: str
    dur: float | None = None
    args: dict = field(default_factory=dict)
    seq: int = 0

    @property
    def end(self) -> float:
        return self.ts if self.dur is None else self.ts + self.dur


class EventTracer:
    """Thread-safe recorder of timestamped events.

    ``clock="wall"`` stamps implicitly-timed events with seconds since
    the tracer's construction; ``clock="sim"`` records only events whose
    caller supplied an explicit ``ts`` (simulated seconds), which keeps
    simulated traces deterministic — wall-clocked instrumentation points
    (buffer hits during the measuring pass, real fault sleeps) silently
    no-op instead of injecting nondeterministic timestamps.

    A tracer constructed with ``enabled=False`` records nothing; engines
    normalize such a tracer to ``None`` on entry so the hot path keeps
    its plain ``tracer is not None`` guard and pays nothing when tracing
    is off.
    """

    def __init__(self, *, clock: str = "wall", enabled: bool = True,
                 strict_vocab: bool = False):
        if clock not in ("wall", "sim"):
            raise ValueError(f"clock must be 'wall' or 'sim', got {clock!r}")
        self.clock = clock
        self.enabled = enabled
        self.strict_vocab = strict_vocab
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self._seq = 0

    @classmethod
    def wall(cls) -> "EventTracer":
        return cls(clock="wall")

    @classmethod
    def sim(cls) -> "EventTracer":
        return cls(clock="sim")

    def now(self) -> float:
        """Seconds since the tracer's epoch (wall clock)."""
        return time.perf_counter() - self._epoch

    def _record(self, name: str, ts: float | None, dur: float | None,
                track: str | None, args: dict) -> None:
        if not self.enabled:
            return
        if self.strict_vocab and not is_trace_event_name(name):
            raise ValueError(
                f"event name {name!r} is not in the canonical vocabulary "
                f"(repro.obs.vocab.TRACE_EVENT_NAMES)"
            )
        if ts is None:
            if self.clock == "sim":
                return  # wall-clocked call site on a simulated timeline
            ts = self.now()
        if track is None:
            track = threading.current_thread().name
        with self._lock:
            seq = self._seq
            self._seq += 1
            self._events.append(
                TraceEvent(name=name, ts=ts, track=track, dur=dur,
                           args=args, seq=seq)
            )

    def instant(self, name: str, *, ts: float | None = None,
                track: str | None = None, **args) -> None:
        """Record a point event."""
        self._record(name, ts, None, track, args)

    def complete(self, name: str, ts: float, dur: float, *,
                 track: str | None = None, **args) -> None:
        """Record a slice with explicit start and duration."""
        self._record(name, ts, dur, track, args)

    @contextmanager
    def slice(self, name: str, *, track: str | None = None, **args):
        """Measure a wall-clock slice around a ``with`` body.

        On a sim-clock tracer this is a no-op context (the body still
        runs, nothing is recorded).
        """
        if not self.enabled or self.clock == "sim":
            yield
            return
        start = self.now()
        try:
            yield
        finally:
            self._record(name, start, self.now() - start, track, args)

    def events(self) -> list[TraceEvent]:
        """A snapshot of the recorded events, in recording order."""
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


def _as_events(source) -> list[TraceEvent]:
    if isinstance(source, EventTracer):
        return source.events()
    return list(source)


# ---------------------------------------------------------------------------
# Chrome trace_event export / import
# ---------------------------------------------------------------------------


def to_chrome_trace(source) -> dict:
    """Events as a Chrome ``trace_event`` JSON object.

    One ``tid`` per track (in order of first appearance), named through
    ``thread_name`` metadata so Perfetto / ``chrome://tracing`` label the
    lanes.  Timestamps are microseconds rounded to nanosecond precision —
    a pure function of the event list, so a deterministic event stream
    exports to byte-identical JSON.
    """
    events = _as_events(source)
    track_ids: dict[str, int] = {}
    for event in events:
        track_ids.setdefault(event.track, len(track_ids))
    trace_events: list[dict] = [
        {
            "ph": "M",
            "name": "thread_name",
            "pid": 0,
            "tid": tid,
            "args": {"name": track},
        }
        for track, tid in track_ids.items()
    ]
    for event in events:
        payload: dict = {
            "name": event.name,
            "ph": "X" if event.dur is not None else "i",
            "ts": round(event.ts * 1e6, 3),
            "pid": 0,
            "tid": track_ids[event.track],
        }
        if event.dur is not None:
            payload["dur"] = round(event.dur * 1e6, 3)
        else:
            payload["s"] = "t"  # instant scope: thread
        if event.args:
            payload["args"] = event.args
        trace_events.append(payload)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA_NAME,
            "version": TRACE_SCHEMA_VERSION,
        },
    }


def write_chrome_trace(path: str | Path, source) -> Path:
    """Serialize :func:`to_chrome_trace` output to *path* (compact JSON).

    ``sort_keys`` plus compact separators make the bytes a pure function
    of the event stream — the determinism gate diffs these files.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = to_chrome_trace(source)
    path.write_text(
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        encoding="utf-8",
    )
    return path


def from_chrome_trace(payload: dict) -> list[TraceEvent]:
    """Rebuild :class:`TraceEvent` objects from exported Chrome JSON."""
    errors = validate_chrome_trace(payload)
    if errors:
        raise ValueError("invalid chrome trace: " + "; ".join(errors))
    names: dict[int, str] = {}
    for raw in payload["traceEvents"]:
        if raw.get("ph") == "M" and raw.get("name") == "thread_name":
            names[raw["tid"]] = raw["args"]["name"]
    events: list[TraceEvent] = []
    for seq, raw in enumerate(payload["traceEvents"]):
        if raw.get("ph") == "M":
            continue
        track = names.get(raw["tid"], f"track{raw['tid']}")
        dur = raw.get("dur")
        events.append(
            TraceEvent(
                name=raw["name"],
                ts=raw["ts"] / 1e6,
                track=track,
                dur=None if dur is None else dur / 1e6,
                args=dict(raw.get("args", {})),
                seq=seq,
            )
        )
    return events


def validate_chrome_trace(payload, *, known_names_only: bool = False) -> list[str]:
    """Schema errors in a Chrome trace payload (empty list = valid).

    With ``known_names_only=True``, event names outside the canonical
    vocabulary (:data:`repro.obs.vocab.TRACE_EVENT_NAMES`) are also
    reported — the conformance mode the obs gates use on traces our own
    engines produced.
    """
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["trace must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, raw in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(raw, dict):
            errors.append(f"{where} must be an object")
            continue
        ph = raw.get("ph")
        if ph not in ("X", "i", "M"):
            errors.append(f"{where}.ph must be 'X', 'i', or 'M', got {ph!r}")
            continue
        if not isinstance(raw.get("name"), str) or not raw.get("name"):
            errors.append(f"{where}.name must be a non-empty string")
        elif known_names_only and ph != "M" \
                and not is_trace_event_name(raw["name"]):
            errors.append(f"{where}.name {raw['name']!r} is not in the "
                          f"canonical event vocabulary")
        if not isinstance(raw.get("tid"), int):
            errors.append(f"{where}.tid must be an integer")
        if ph == "M":
            continue
        if not isinstance(raw.get("ts"), (int, float)):
            errors.append(f"{where}.ts must be numeric")
        if ph == "X" and not isinstance(raw.get("dur"), (int, float)):
            errors.append(f"{where}.dur must be numeric for complete events")
        if "args" in raw and not isinstance(raw["args"], dict):
            errors.append(f"{where}.args must be an object")
    return errors


# ---------------------------------------------------------------------------
# Interval arithmetic (the substrate of every derived figure)
# ---------------------------------------------------------------------------


def _merge(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """Union of (start, end) intervals, sorted and coalesced."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def _total(intervals: list[tuple[float, float]]) -> float:
    return sum(end - start for start, end in intervals)


def _intersect(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Intersection of two merged interval lists (two-pointer sweep)."""
    out: list[tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        start = max(a[i][0], b[j][0])
        end = min(a[i][1], b[j][1])
        if end > start:
            out.append((start, end))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _outstanding_io(events: list[TraceEvent]) -> list[tuple[float, float]]:
    """Merged intervals during which at least one page read is in flight.

    A request is outstanding from its ``read.submit`` instant (matched by
    the ``req`` arg) to the end of its ``read.service`` slice; a service
    event without a matching submit counts from its own start.
    """
    submits: dict[object, float] = {}
    for event in events:
        if event.name == "read.submit" and "req" in event.args:
            submits.setdefault(event.args["req"], event.ts)
    intervals: list[tuple[float, float]] = []
    for event in events:
        if event.name != "read.service" or event.dur is None:
            continue
        start = submits.get(event.args.get("req"), event.ts)
        intervals.append((min(start, event.ts), event.end))
    return _merge(intervals)


def overlap_analytics(source) -> dict:
    """Derived temporal figures of one trace.

    Returns a plain dict with:

    * ``macro_overlap_ratio`` — fraction of internal-CPU time during
      which at least one SSD read was outstanding (the paper's macro
      overlap: CPU hiding I/O);
    * ``micro_overlap_ratio`` — fraction of external-CPU time (arrived
      pages being processed) with reads still outstanding;
    * ``io_outstanding_time`` / ``internal_cpu_time`` /
      ``external_cpu_time`` — the underlying interval totals;
    * ``span`` — last event end minus first event start;
    * ``track_utilization`` — per track, work-event busy time over the
      trace span;
    * ``event_counts`` — events per name.
    """
    events = _as_events(source)
    counts: dict[str, int] = {}
    for event in events:
        counts[event.name] = counts.get(event.name, 0) + 1
    if not events:
        return {
            "macro_overlap_ratio": 0.0,
            "micro_overlap_ratio": 0.0,
            "io_outstanding_time": 0.0,
            "internal_cpu_time": 0.0,
            "external_cpu_time": 0.0,
            "span": 0.0,
            "track_utilization": {},
            "event_counts": counts,
        }
    t0 = min(event.ts for event in events)
    t1 = max(event.end for event in events)
    io = _outstanding_io(events)
    internal = _merge(
        [(e.ts, e.end) for e in events if e.name == "internal" and e.dur]
    )
    external = _merge(
        [(e.ts, e.end) for e in events
         if e.name in EXTERNAL_CPU_EVENTS and e.dur]
    )
    internal_time = _total(internal)
    external_time = _total(external)
    span = t1 - t0
    busy: dict[str, list[tuple[float, float]]] = {}
    for event in events:
        if event.name in WORK_EVENTS and event.dur:
            busy.setdefault(event.track, []).append((event.ts, event.end))
    utilization = {
        track: (_total(_merge(intervals)) / span if span > 0 else 0.0)
        for track, intervals in sorted(busy.items())
    }
    return {
        "macro_overlap_ratio": (
            _total(_intersect(internal, io)) / internal_time
            if internal_time > 0 else 0.0
        ),
        "micro_overlap_ratio": (
            _total(_intersect(external, io)) / external_time
            if external_time > 0 else 0.0
        ),
        "io_outstanding_time": _total(io),
        "internal_cpu_time": internal_time,
        "external_cpu_time": external_time,
        "span": span,
        "track_utilization": utilization,
        "event_counts": counts,
    }


def fold_trace_analytics(report, source) -> dict:
    """Compute :func:`overlap_analytics` and land it in *report*'s derived
    figures (``macro_overlap_ratio``, ``micro_overlap_ratio``,
    ``track_utilization``, ``io_outstanding_time``, ``trace_span``,
    ``trace_events``).  Returns the analytics dict."""
    analytics = overlap_analytics(source)
    report.derive("macro_overlap_ratio", analytics["macro_overlap_ratio"])
    report.derive("micro_overlap_ratio", analytics["micro_overlap_ratio"])
    report.derive("io_outstanding_time", analytics["io_outstanding_time"])
    report.derive("track_utilization", analytics["track_utilization"])
    report.derive("trace_span", analytics["span"])
    report.derive("trace_events", sum(analytics["event_counts"].values()))
    return analytics


# ---------------------------------------------------------------------------
# ASCII Gantt
# ---------------------------------------------------------------------------


def ascii_gantt(source, *, width: int = 64) -> str:
    """Render the trace as a per-track Gantt chart for terminals.

    Each row is one track; a column is ``span / width`` seconds.  ``█``
    marks a column more than half covered by work events, ``▏`` a touched
    column, ``·`` idle time.  Instant markers are overlaid as ``!`` for
    fault/recovery events.  The right margin shows each track's busy
    percentage of the trace span.
    """
    events = _as_events(source)
    timed = [e for e in events if e.dur is not None or e.ts >= 0]
    if not timed:
        return "(empty trace)"
    t0 = min(e.ts for e in timed)
    t1 = max(e.end for e in timed)
    span = t1 - t0
    if span <= 0:
        return "(trace has no extent)"
    tracks: list[str] = []
    for event in events:
        if event.track not in tracks:
            tracks.append(event.track)
    label_width = max(len(track) for track in tracks)
    step = span / width
    lines = [
        f"trace span {span:.6f}s  ({width} cols, {step:.2e}s/col)"
    ]
    for track in tracks:
        work = _merge(
            [(e.ts - t0, e.end - t0) for e in events
             if e.track == track and e.name in WORK_EVENTS and e.dur]
        )
        row = []
        for col in range(width):
            lo, hi = col * step, (col + 1) * step
            covered = _total(_intersect(work, [(lo, hi)]))
            if covered >= 0.5 * step:
                row.append("█")
            elif covered > 0:
                row.append("▏")
            else:
                row.append("·")
        for event in events:
            if (event.track == track and event.dur is None
                    and event.name.startswith(("fault.", "recovery."))):
                col = min(width - 1, max(0, int((event.ts - t0) / step)))
                row[col] = "!"
        busy = _total(work) / span * 100.0
        lines.append(f"{track:<{label_width}} |{''.join(row)}| {busy:5.1f}%")
    return "\n".join(lines)
