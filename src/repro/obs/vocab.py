"""The canonical observability vocabulary: one set of names, everywhere.

Every metric the registry interns and every event the tracer records is
identified by a string name.  The whole observability design — merged
run reports, cross-engine comparisons (``benchmarks/compare_reports.py``),
the I/O-accounting audits, the trace determinism gate — rests on those
names meaning the same thing in every emitter: the synchronous device,
the threaded SSD, the discrete-event scheduler, and the CLI must all call
a device read ``ssd.pages_read``.

This module is the single source of truth.  Producers either use these
constants directly or keep a local alias whose *value* is listed here;
the ``obs-vocab`` rule of :mod:`repro.lint` statically checks every
``registry.counter(...)`` / ``tracer.instant(...)`` call site against
these sets, so a typo'd or ad-hoc name fails CI instead of silently
forking the vocabulary.

Consumers:

* :class:`repro.obs.MetricsRegistry` — optional ``strict_vocab`` mode
  rejects unknown metric names at interning time;
* :class:`repro.obs.EventTracer` — optional ``strict_vocab`` mode
  rejects unknown event names at record time;
* :func:`repro.obs.validate_chrome_trace` — ``known_names_only=True``
  reports unknown event names as schema errors;
* :mod:`repro.lint.rules.obs_vocab` — the static conformance rule.

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library.
"""

from __future__ import annotations

__all__ = [
    "EXTERNAL_CPU_EVENTS",
    "METRIC_NAMES",
    "TRACE_EVENT_NAMES",
    "WORK_EVENTS",
    "is_metric_name",
    "is_trace_event_name",
]

#: Every metric name the reproduction emits, regardless of instrument
#: kind (counter / gauge / histogram) — labels are orthogonal to names.
METRIC_NAMES = frozenset({
    # triangle output
    "triangles",                      # per-phase labelled total (engines)
    "triangles.total",                # OpCounter's headline count
    # CPU / I/O accounting (OpCounter + CLI export path)
    "cpu.ops",
    "cpu.ops.phase",
    "io.pages_read",
    "io.pages_written",
    "io.pages_buffered",
    # intersection kernels
    "intersect.ops",
    "intersect.calls",
    # OPT iteration structure (Algorithm 3)
    "opt.iterations",
    "opt.fill.reads",
    "opt.fill.buffered",
    "opt.candidate.ops",
    "opt.internal.ops",
    "opt.external.ops",
    "opt.external.reads",
    "opt.external.buffered",
    "opt.pages_read",
    # buffer manager
    "buffer.hits",
    "buffer.misses",
    "buffer.evictions",
    # storage devices
    "ssd.pages_read",
    "ssd.async_reads",
    "ssd.queue.depth",
    "ssd.callback.latency",
    # fault injection + recovery
    "faults.injected",
    "recovery.retries",
    "recovery.timeouts",
    "recovery.fallbacks",
    "recovery.giveups",
    "recovery.checkpoint.saved",
    "recovery.checkpoint.replayed",
    # discrete-event simulation
    "sim.device_reads",
    "sim.morph.events",
    "sim.elapsed",
    "sim.cpu_time",
    "sim.read_io_time",
    "sim.fault_delay",
    # composed engines (repro.exec) — labelled source/kernel/executor
    "exec.triangles",
    "exec.ops",
    "exec.chunks",
    # adaptive-kernel selector decisions — additionally labelled by
    # branch (merge/gallop/bitmap/disjoint/empty); per-branch ops sum
    # exactly to the cell's exec.ops
    "exec.branch.pairs",
    "exec.branch.ops",
    # process-parallel engine (repro.parallel)
    "parallel.ops",
    "parallel.chunks",
    "parallel.steals",
    "parallel.workers",
    "parallel.heartbeats",
    "parallel.straggler",
    "parallel.chunk.elapsed",
    # live telemetry pipeline (repro.obs.telemetry)
    "telemetry.samples",
    # wall sampling profiler (repro.obs.profile)
    "profile.samples",
    "profile.overhead",
    # perf history store (repro.obs.history)
    "perf.ingested",
    # live occupancy gauges sampled by the telemetry pipeline
    "buffer.resident",
    "ssd.inflight",
    # run headline figures
    "run.elapsed_wall",
    "run.elapsed_simulated",
    # the static-analysis pass reports through the same schema
    "lint.files",
    "lint.findings",
    "lint.rules",
    "lint.graph.functions",
    "lint.graph.edges",
})

#: Every causal trace event name (see the table in :mod:`repro.obs.trace`).
TRACE_EVENT_NAMES = frozenset({
    "iteration",
    "fill",
    "internal",
    "external",
    "read.submit",
    "read.service",
    "read.callback",
    "buffer.hit",
    "buffer.evict",
    "morph",
    "fault.inject",
    "fault.delay",
    "recovery.timeout",
    "recovery.fallback",
    "parallel.chunk",
    "parallel.steal",
    "parallel.merge",
    "parallel.heartbeat",
    "parallel.straggler",
    "telemetry.sample",
})

#: Event names that represent actual work for utilization purposes
#: (``iteration`` is structural — it brackets its children and would
#: double-count every lane it appears on).
WORK_EVENTS = frozenset(
    {"fill", "internal", "external", "read.service", "read.callback",
     "parallel.chunk"}
)

#: Event names whose intervals count as *external* CPU (micro overlap).
EXTERNAL_CPU_EVENTS = frozenset({"external", "read.callback"})


def is_metric_name(name: str) -> bool:
    """True when *name* is in the canonical metric vocabulary."""
    return name in METRIC_NAMES


def is_trace_event_name(name: str) -> bool:
    """True when *name* is in the canonical trace-event vocabulary."""
    return name in TRACE_EVENT_NAMES
