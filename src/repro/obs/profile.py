"""Profile rendering and the opt-in wall-clock stack sampler.

Two profile producers share this module's output pipeline:

* the deterministic cost-attribution table
  (:class:`~repro.obs.attribution.Attribution`) — op-weighted
  ``(phase, kernel, source, degree-bucket)`` stacks, byte-identical in
  sim mode;
* the :class:`StackSampler` — an opt-in background thread that samples
  every live Python thread's call stack at a fixed interval
  (``sys._current_frames``), the classic wall profiler for answering
  "where does the *wall* time go" when the op table says the ops are
  cheap but the clock disagrees.

Both produce the same *collapsed-stack* shape — a mapping from a frame
tuple to an integer weight — which renders two ways:

* :func:`collapsed_text` — Brendan Gregg's collapsed format
  (``frame;frame;frame weight`` per line), the input every flame-graph
  tool accepts;
* :func:`to_speedscope` — a `speedscope <https://www.speedscope.app>`_
  "sampled" profile document, validated by :func:`validate_speedscope`
  exactly as Chrome traces are validated by
  :func:`repro.obs.trace.validate_chrome_trace`.

Overhead contract (pinned by ``benchmarks/bench_profile_overhead.py``):
an enabled sampler at the default interval costs <10% wall on the
Fig. 3b in-memory workload, and ``enabled=False`` costs nothing beyond
the ``is not None`` guard — the same normalization idiom the tracer and
telemetry sampler use.

Like the rest of :mod:`repro.obs`, nothing here imports anything outside
the standard library.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path
from typing import Mapping

__all__ = [
    "StackSampler",
    "collapsed_text",
    "to_speedscope",
    "validate_speedscope",
    "write_speedscope",
]

SPEEDSCOPE_SCHEMA_URL = "https://www.speedscope.app/file-format-schema.json"

#: Default sampling period: 5 ms keeps overhead well under the 10% budget
#: while still resolving millisecond-scale phases.
DEFAULT_INTERVAL = 0.005


class StackSampler:
    """Samples every thread's Python stack on a background timer.

    Parameters
    ----------
    interval:
        Seconds between samples (wall clock).
    registry:
        Optional :class:`~repro.obs.registry.MetricsRegistry`; each
        sampling pass increments ``profile.samples`` and the cumulative
        seconds spent *inside* the sampler land on the
        ``profile.overhead`` gauge, so the profiler's own cost is
        visible in the same report it profiles.
    max_depth:
        Frames kept per stack, innermost-first truncation guard.
    enabled:
        ``False`` constructs an inert sampler (both :meth:`start` and
        :meth:`sample_once` become no-ops) — callers normalize to
        ``None`` exactly like a disabled tracer.
    """

    def __init__(self, *, interval: float = DEFAULT_INTERVAL,
                 registry=None, max_depth: int = 64,
                 enabled: bool = True):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.registry = registry
        self.max_depth = max_depth
        self.enabled = enabled
        self._lock = threading.Lock()
        self._stacks: dict[tuple[str, ...], int] = {}
        self._samples = 0
        self._flushed_samples = 0
        self._overhead = 0.0
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Start the sampling thread (no-op when disabled)."""
        if not self.enabled:
            return
        with self._lock:
            if self._thread is not None:
                raise ValueError("sampler thread already running")
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="stack-sampler", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        """Stop the sampling thread and flush counters (idempotent)."""
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5)
        if self.registry is not None:
            with self._lock:
                fresh = self._samples - self._flushed_samples
                self._flushed_samples = self._samples
                overhead = self._overhead
            self.registry.counter("profile.samples").inc(fresh)
            self.registry.gauge("profile.overhead").set(overhead)

    def __enter__(self) -> "StackSampler":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        skip = {threading.get_ident()}
        while not self._stop.wait(self.interval):
            self.sample_once(skip_threads=skip)

    # -- sampling ------------------------------------------------------------

    def sample_once(self, *, skip_threads: set[int] | None = None) -> int:
        """Take one sample of every live thread; returns stacks captured.

        Public so tests (and callers without a background thread) can
        sample deterministically at chosen moments.
        """
        if not self.enabled:
            return 0
        started = time.perf_counter()
        frames = sys._current_frames()
        captured = 0
        for ident, frame in frames.items():
            if skip_threads and ident in skip_threads:
                continue
            stack = self._walk(frame)
            if not stack:
                continue
            captured += 1
            with self._lock:
                self._stacks[stack] = self._stacks.get(stack, 0) + 1
        with self._lock:
            self._samples += 1
            self._overhead += time.perf_counter() - started
        return captured

    def _walk(self, frame) -> tuple[str, ...]:
        """Root-first frame labels: ``module:function`` per frame."""
        labels: list[str] = []
        while frame is not None and len(labels) < self.max_depth:
            code = frame.f_code
            module = Path(code.co_filename).stem
            labels.append(f"{module}:{code.co_name}")
            frame = frame.f_back
        labels.reverse()
        return tuple(labels)

    # -- export --------------------------------------------------------------

    @property
    def samples(self) -> int:
        """Sampling passes taken so far."""
        with self._lock:
            return self._samples

    @property
    def overhead_seconds(self) -> float:
        """Cumulative wall seconds spent inside the sampler itself."""
        with self._lock:
            return self._overhead

    def collapsed(self) -> dict[tuple[str, ...], int]:
        """Captured stacks as ``frame-tuple -> sample count``."""
        with self._lock:
            return dict(self._stacks)


# ---------------------------------------------------------------------------
# Collapsed-stack rendering (shared by sampler and attribution)
# ---------------------------------------------------------------------------


def collapsed_text(stacks: Mapping[tuple[str, ...], int]) -> str:
    """Collapsed-stack flame-graph input: ``a;b;c weight`` per line.

    Lines sort by frame tuple, so equal stack mappings produce equal
    bytes — the property the sim-mode determinism gate hashes.
    """
    lines = [f"{';'.join(stack)} {weight}"
             for stack, weight in sorted(stacks.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def to_speedscope(stacks: Mapping[tuple[str, ...], int], *,
                  name: str = "profile", unit: str = "none") -> dict:
    """A speedscope "sampled" profile document from collapsed stacks.

    *unit* is ``"none"`` for op-weighted attribution profiles and
    ``"seconds"``-style units for wall samples.  Frames are interned in
    first-appearance order over the sorted stacks, so the document is a
    pure function of the stack mapping (byte-deterministic through
    ``json.dumps(sort_keys=True)``).
    """
    frame_index: dict[str, int] = {}
    frames: list[dict] = []
    samples: list[list[int]] = []
    weights: list[float] = []
    for stack, weight in sorted(stacks.items()):
        indexed = []
        for label in stack:
            index = frame_index.get(label)
            if index is None:
                index = len(frames)
                frame_index[label] = index
                frames.append({"name": label})
            indexed.append(index)
        samples.append(indexed)
        weights.append(weight)
    total = sum(weights)
    return {
        "$schema": SPEEDSCOPE_SCHEMA_URL,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": unit,
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
        "exporter": "repro.obs.profile",
    }


def write_speedscope(path: str | Path, document: Mapping) -> Path:
    """Serialize a speedscope document deterministically to *path*."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, sort_keys=True, indent=2) + "\n",
                    encoding="utf-8")
    return path


def validate_speedscope(data: object) -> list[str]:
    """Schema errors in a speedscope document (empty list = valid).

    Mirrors :func:`repro.obs.trace.validate_chrome_trace`: structural
    checks strict enough that a document passing here loads in the
    speedscope UI — frame references in range, parallel
    samples/weights arrays, sane value bounds.
    """
    errors: list[str] = []
    if not isinstance(data, Mapping):
        return ["speedscope document must be a JSON object"]
    if data.get("$schema") != SPEEDSCOPE_SCHEMA_URL:
        errors.append(f"$schema must be {SPEEDSCOPE_SCHEMA_URL!r}")
    shared = data.get("shared")
    frames: list = []
    if not isinstance(shared, Mapping) or not isinstance(
            shared.get("frames"), list):
        errors.append("shared.frames must be a list")
    else:
        frames = shared["frames"]
        for index, frame in enumerate(frames):
            if not isinstance(frame, Mapping) or not isinstance(
                    frame.get("name"), str) or not frame.get("name"):
                errors.append(f"shared.frames[{index}].name must be a "
                              f"non-empty string")
    profiles = data.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        errors.append("profiles must be a non-empty list")
        profiles = []
    for pindex, profile in enumerate(profiles):
        where = f"profiles[{pindex}]"
        if not isinstance(profile, Mapping):
            errors.append(f"{where} must be an object")
            continue
        if profile.get("type") not in ("sampled", "evented"):
            errors.append(f"{where}.type must be 'sampled' or 'evented'")
        if not isinstance(profile.get("name"), str):
            errors.append(f"{where}.name must be a string")
        for field in ("startValue", "endValue"):
            if not isinstance(profile.get(field), (int, float)):
                errors.append(f"{where}.{field} must be numeric")
        if profile.get("type") != "sampled":
            continue
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            errors.append(f"{where}.samples and .weights must be lists")
            continue
        if len(samples) != len(weights):
            errors.append(f"{where}: {len(samples)} samples but "
                          f"{len(weights)} weights")
        for sindex, stack in enumerate(samples):
            if not isinstance(stack, list):
                errors.append(f"{where}.samples[{sindex}] must be a list")
                continue
            for ref in stack:
                if not isinstance(ref, int) or not 0 <= ref < len(frames):
                    errors.append(
                        f"{where}.samples[{sindex}]: frame reference {ref!r} "
                        f"out of range (have {len(frames)} frames)")
                    break
        for windex, weight in enumerate(weights):
            if not isinstance(weight, (int, float)) or weight < 0:
                errors.append(f"{where}.weights[{windex}] must be a "
                              f"non-negative number")
                break
    return errors
