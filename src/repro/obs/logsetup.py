"""Stdlib logging for the ``repro.*`` namespace.

Library modules log through ``get_logger(__name__)`` — never ``print`` —
and stay silent unless an application configures handlers.  The CLI's
``--verbose`` / ``--quiet`` flags call :func:`configure_logging`, which
installs one stderr handler on the ``repro`` root logger.
"""

from __future__ import annotations

import logging

__all__ = ["configure_logging", "get_logger"]

ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro.*`` hierarchy.

    Accepts either a module ``__name__`` (already ``repro.…``) or a bare
    suffix like ``"obs"``.
    """
    if name == ROOT or name.startswith(ROOT + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def configure_logging(verbosity: int = 0) -> logging.Logger:
    """Configure the ``repro`` root logger for CLI use.

    ``verbosity`` counts ``-v`` flags minus ``-q`` flags: ``<= -1`` shows
    only errors, ``0`` warnings (the default), ``1`` info, ``>= 2`` debug.
    Idempotent: reconfigures the existing handler rather than stacking.
    """
    level = {-1: logging.ERROR, 0: logging.WARNING, 1: logging.INFO}.get(
        max(-1, min(verbosity, 2)), logging.DEBUG
    )
    root = logging.getLogger(ROOT)
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)
    for handler in root.handlers:
        handler.setLevel(level)
    root.propagate = False
    return root
