"""Hierarchical phase spans carrying wall-clock *and* simulated time.

An OPT run has two timelines: the real seconds the Python process spends
(packing pages, driving the algorithm) and the simulated seconds the
discrete-event scheduler charges (the numbers the paper's figures plot).
A :class:`Span` holds both — ``wall_elapsed`` from ``perf_counter`` when
the span is entered as a context manager, ``sim_elapsed`` when a
simulated timeline is mapped into the tree via :meth:`SpanTracker.add` —
so a report shows ``pack -> run-opt -> replay`` with real time next to
``fill / internal / external`` with simulated time, in one tree.

The tracker keeps a per-thread open-span stack: spans opened on the SSD
callback thread attach under that thread's own stack (or become roots)
instead of corrupting the main thread's nesting.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "SpanTracker"]


@dataclass
class Span:
    """One named phase: attributes, children, and its two durations."""

    name: str
    attrs: dict = field(default_factory=dict)
    wall_elapsed: float | None = None
    sim_elapsed: float | None = None
    children: list["Span"] = field(default_factory=list)

    def child(self, name: str) -> "Span | None":
        """First direct child named *name*, or None."""
        for span in self.children:
            if span.name == name:
                return span
        return None

    def find(self, name: str) -> "Span | None":
        """Depth-first search for the first span named *name*."""
        if self.name == name:
            return self
        for span in self.children:
            found = span.find(name)
            if found is not None:
                return found
        return None

    def iter(self):
        """Yield this span and every descendant, depth first."""
        yield self
        for span in self.children:
            yield from span.iter()

    def total_sim(self) -> float:
        """This span's simulated time, or the sum over its children."""
        if self.sim_elapsed is not None:
            return self.sim_elapsed
        return sum(child.total_sim() for child in self.children)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": self.attrs,
            "wall_elapsed": self.wall_elapsed,
            "sim_elapsed": self.sim_elapsed,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            attrs=dict(data.get("attrs", {})),
            wall_elapsed=data.get("wall_elapsed"),
            sim_elapsed=data.get("sim_elapsed"),
            children=[cls.from_dict(c) for c in data.get("children", [])],
        )


class SpanTracker:
    """Builds the span tree; thread-safe against concurrent recorders."""

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._stacks = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _attach(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a wall-clock-timed span; nests under the innermost open one."""
        span = Span(name, attrs=dict(attrs))
        self._attach(span)
        stack = self._stack()
        stack.append(span)
        start = time.perf_counter()
        try:
            yield span
        finally:
            span.wall_elapsed = time.perf_counter() - start
            stack.pop()

    def add(
        self,
        name: str,
        *,
        sim_elapsed: float | None = None,
        wall_elapsed: float | None = None,
        parent: Span | None = None,
        **attrs,
    ) -> Span:
        """Record a span without timing it (simulated timelines).

        Attaches under *parent* when given, otherwise under the calling
        thread's innermost open span (or as a new root).
        """
        span = Span(name, attrs=dict(attrs), wall_elapsed=wall_elapsed,
                    sim_elapsed=sim_elapsed)
        if parent is not None:
            parent.children.append(span)
        else:
            self._attach(span)
        return span

    def find(self, name: str) -> Span | None:
        with self._lock:
            roots = list(self.roots)
        for root in roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def to_list(self) -> list[dict]:
        with self._lock:
            return [span.to_dict() for span in self.roots]

    @classmethod
    def from_list(cls, data: list[dict]) -> "SpanTracker":
        tracker = cls()
        tracker.roots = [Span.from_dict(item) for item in data]
        return tracker
