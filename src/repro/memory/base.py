"""Triangle sinks and result records shared by all triangulation methods.

The paper outputs triangles in a *nested representation*: all triangles
sharing the same ``(u, v)`` prefix are emitted as one ``<u, v, {w1..wk}>``
group (Section 3.2).  Sinks therefore receive ``(u, v, ws)`` groups rather
than individual triples; a group with ``k`` completions denotes ``k``
triangles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

__all__ = [
    "CollectSink",
    "CountSink",
    "TriangleSink",
    "TriangulationResult",
    "canonical_triangles",
]


class TriangleSink(Protocol):
    """Receiver for nested triangle groups ``<u, v, {w...}>``."""

    def emit(self, u: int, v: int, ws: Sequence[int]) -> None:
        """Record the triangles ``(u, v, w)`` for every ``w`` in *ws*."""


class CountSink:
    """Counts triangles without materializing them."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, u: int, v: int, ws: Sequence[int]) -> None:
        self.count += len(ws)


class CollectSink:
    """Collects every triangle as a sorted ``(u, v, w)`` tuple."""

    def __init__(self) -> None:
        self.triangles: list[tuple[int, int, int]] = []

    def emit(self, u: int, v: int, ws: Sequence[int]) -> None:
        for w in ws:
            self.triangles.append(tuple(sorted((int(u), int(v), int(w)))))

    @property
    def count(self) -> int:
        return len(self.triangles)


def canonical_triangles(sink: CollectSink) -> list[tuple[int, int, int]]:
    """Sorted list of canonical triangles collected by *sink*."""
    return sorted(sink.triangles)


@dataclass
class TriangulationResult:
    """Outcome of a triangulation run.

    ``cpu_ops`` follows the paper's cost measure (intersection probes /
    membership tests).  Disk methods additionally fill the I/O fields and
    the per-iteration ``timeline``; in-memory methods leave them zero.
    """

    triangles: int
    cpu_ops: int = 0
    pages_read: int = 0
    pages_written: int = 0
    pages_buffered: int = 0
    elapsed: float = 0.0
    iterations: int = 0
    extra: dict = field(default_factory=dict)
