"""Process-parallel in-memory triangulation (compatibility facade).

The real engine lives in :mod:`repro.parallel`: shared-memory CSR
publication, a degree-balanced work queue with stealing, and obs-pipeline
merging.  This module keeps the original, narrower API stable —
:func:`stripe_bounds` for callers that want one contiguous range per
worker, and :func:`parallel_edge_iterator` for count-and-ops runs — and
delegates execution to :func:`repro.parallel.triangulate_parallel`.

Every stripe/chunk lists a disjoint triangle set because each triangle
belongs to its minimum vertex's range, so counts merge by plain addition.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.memory.base import TriangulationResult
from repro.parallel.chunks import plan_chunks
from repro.parallel.engine import triangulate_parallel

__all__ = ["parallel_edge_iterator", "stripe_bounds"]


def stripe_bounds(graph: Graph, workers: int) -> list[tuple[int, int]]:
    """Split the vertex range into *workers* stripes of ~equal edge work.

    One stripe per worker — the static schedule the original thread
    pool used.  The work-queue engine plans finer chunks
    (:func:`repro.parallel.chunks.plan_chunks` with oversubscription);
    this remains for callers that want a fixed partition, and it is the
    same successor-mass balancing either way.
    """
    return plan_chunks(graph, workers)


def parallel_edge_iterator(graph: Graph, workers: int = 2) -> TriangulationResult:
    """Count triangles with *workers* processes (EdgeIterator≻ chunks).

    Thin wrapper over :func:`repro.parallel.triangulate_parallel` that
    preserves the historical result shape: ``extra["stripes"]`` holds the
    executed vertex ranges, ``extra["workers"]`` the effective worker
    count.
    """
    result = triangulate_parallel(graph, workers=workers)
    return TriangulationResult(
        triangles=result.triangles,
        cpu_ops=result.cpu_ops,
        elapsed=result.elapsed,
        extra={
            "stripes": result.extra["chunks"],
            "workers": result.extra["workers"],
            "steals": result.extra["steals"],
        },
    )
