"""Process-parallel in-memory triangulation.

The paper parallelizes the intersection loops with OpenMP; CPython's GIL
rules that out for threads, so the real-parallel in-memory path uses
*processes*: the vertex range is split into contiguous stripes and each
worker runs EdgeIterator≻ over its stripe (every stripe lists a disjoint
set of triangles because each triangle belongs to its minimum vertex's
stripe).  On a single-core machine this adds only overhead — the
simulated engine is the right tool for speed-up *curves* — but the
implementation demonstrates the decomposition is embarrassingly parallel
and it is validated against the serial result.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph
from repro.memory.base import TriangulationResult
from repro.util.intersect import intersect_count_ops, intersect_sorted

__all__ = ["parallel_edge_iterator", "stripe_bounds"]


def stripe_bounds(graph: Graph, workers: int) -> list[tuple[int, int]]:
    """Split the vertex range into *workers* stripes of ~equal edge work.

    Balancing by successor-list mass (the intersection driver count)
    rather than by vertex count keeps stripes comparable on power-law
    graphs.
    """
    if workers < 1:
        raise ConfigurationError("workers must be >= 1")
    # Work proxy: each vertex drives |n_succ| intersections.
    succ_mass = np.array(
        [len(graph.n_succ(u)) for u in range(graph.num_vertices)],
        dtype=np.float64,
    )
    total = succ_mass.sum()
    if total == 0 or workers == 1:
        return [(0, graph.num_vertices)]
    cumulative = np.cumsum(succ_mass)
    bounds = [0]
    for stripe in range(1, workers):
        target = total * stripe / workers
        bounds.append(int(np.searchsorted(cumulative, target)))
    bounds.append(graph.num_vertices)
    # De-duplicate possible empty stripes.
    return [
        (lo, hi)
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ] or [(0, graph.num_vertices)]


def _count_stripe(args) -> tuple[int, int]:
    indptr, indices, lo, hi = args
    graph = Graph(indptr, indices, validate=False)
    triangles = 0
    ops = 0
    for u in range(lo, hi):
        succ_u = graph.n_succ(u)
        for v in succ_u:
            succ_v = graph.n_succ(int(v))
            ops += intersect_count_ops(len(succ_u), len(succ_v))
            triangles += len(intersect_sorted(succ_u, succ_v))
    return triangles, ops


def parallel_edge_iterator(graph: Graph, workers: int = 2) -> TriangulationResult:
    """Count triangles with *workers* processes (EdgeIterator≻ stripes)."""
    stripes = stripe_bounds(graph, workers)
    payload = [(graph.indptr, graph.indices, lo, hi) for lo, hi in stripes]
    if len(payload) == 1:
        results = [_count_stripe(payload[0])]
    else:
        # Fork (not spawn): workers inherit the parent image directly, so
        # no __main__ re-import is needed — this keeps the API usable from
        # interactive sessions and keeps the data transfer to the stripes'
        # arguments only.
        with mp.get_context("fork").Pool(processes=len(payload)) as pool:
            results = pool.map(_count_stripe, payload)
    triangles = sum(t for t, _ in results)
    ops = sum(o for _, o in results)
    return TriangulationResult(
        triangles=triangles,
        cpu_ops=ops,
        extra={"stripes": stripes, "workers": len(payload)},
    )
