"""The Alon-Yuster-Zwick hybrid triangle *counting* method ([2] in the paper).

Vertices are split by a degree threshold into a high-degree core and a
low-degree fringe.  Triangles entirely inside the core are counted with a
dense matrix cube (``trace(A^3) / 6``); triangles touching at least one
low-degree vertex are counted with a vertex-iterator pass restricted so
that each such triangle is charged to its minimum-id low-degree vertex
(the paper's "ordering constraint" improvement from Section 5.3).

This is a counting method only — it cannot list triangles — which is
exactly why the paper includes it as an in-memory comparison point but not
as an OPT instance.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.memory.base import TriangulationResult

__all__ = ["matrix_count"]


def matrix_count(graph: Graph, *, degree_threshold: int | None = None) -> TriangulationResult:
    """Count all triangles of *graph* with the hybrid matmul method.

    Parameters
    ----------
    degree_threshold:
        Vertices with degree strictly greater are "high-degree".  Defaults
        to ``|E| ** ((omega - 1) / (omega + 1))`` with Strassen's
        ``omega = 2.807``, the split the paper's implementation uses.
    """
    num_edges = graph.num_edges
    if degree_threshold is None:
        omega = 2.807
        degree_threshold = max(1, int(num_edges ** ((omega - 1.0) / (omega + 1.0))))
    degrees = graph.degrees()
    is_high = degrees > degree_threshold
    high_vertices = np.flatnonzero(is_high)

    ops = 0
    # Step 1: triangles entirely within the high-degree core, via matmul.
    core_triangles = 0
    if len(high_vertices) >= 3:
        rank = {int(v): i for i, v in enumerate(high_vertices)}
        size = len(high_vertices)
        adjacency = np.zeros((size, size), dtype=np.float64)
        for v in high_vertices:
            row = graph.neighbors(int(v))
            for w in row[is_high[row]]:
                adjacency[rank[int(v)], rank[int(w)]] = 1.0
        cube = adjacency @ adjacency @ adjacency
        core_triangles = int(round(np.trace(cube))) // 6
        ops += 2 * size**3  # dense matmul cost model

    # Step 2: triangles with >= 1 low-degree vertex, charged to the
    # minimum-id low-degree vertex so each is counted exactly once.
    # Unlike VertexIterator≻, the pair enumeration runs over the *full*
    # adjacency list (the low vertex need not be the triangle's minimum
    # id), which is why the paper measures this step slower than the
    # plain iterators despite the better asymptotic bound.
    from repro.util.intersect import HASH_PROBE_COST

    fringe_triangles = 0
    for u in range(graph.num_vertices):
        if is_high[u]:
            continue
        row = graph.neighbors(u)
        k = len(row)
        for i in range(k - 1):
            v = int(row[i])
            considered = k - i - 1  # pairs generated before any filtering
            ops += considered
            if not is_high[v] and v < u:
                continue  # triangle will be charged to v instead
            candidates = row[i + 1:]
            # Drop w's that are low-degree with smaller id than u.
            keep = is_high[candidates] | (candidates > u)
            candidates = candidates[keep]
            if len(candidates) == 0:
                continue
            ops += HASH_PROBE_COST * len(candidates)
            hits = np.isin(candidates, graph.neighbors(v), assume_unique=True)
            fringe_triangles += int(hits.sum())

    return TriangulationResult(
        triangles=core_triangles + fringe_triangles,
        cpu_ops=ops,
        extra={
            "core_triangles": core_triangles,
            "fringe_triangles": fringe_triangles,
            "degree_threshold": degree_threshold,
            "high_vertices": int(len(high_vertices)),
        },
    )
