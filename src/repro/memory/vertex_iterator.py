"""VertexIterator≻ — Algorithm 1 of the paper.

For every vertex ``u``, every ordered pair ``(v, w)`` from
``n_succ(u) × n_succ(u)`` with ``id(v) < id(w)`` is probed against the edge
set.  One probe is one CPU operation, so vertex *u* costs
``C(|n_succ(u)|, 2)`` operations — measurably more than EdgeIterator≻'s
intersections (the paper observes ~20 % slower), while still listing each
triangle exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.memory.base import CountSink, TriangleSink, TriangulationResult
from repro.util.intersect import HASH_PROBE_COST

__all__ = ["vertex_iterator"]


def vertex_iterator(graph: Graph, sink: TriangleSink | None = None) -> TriangulationResult:
    """List all triangles of *graph* with VertexIterator≻.

    The pair loop is vectorized: for each ``v`` in ``n_succ(u)`` the suffix
    ``w > v`` of ``n_succ(u)`` is membership-tested against ``n(v)`` in one
    ``isin`` call; the charged op count remains the per-pair probe count of
    Algorithm 1.
    """
    if sink is None:
        sink = CountSink()
    triangles = 0
    ops = 0
    for u in range(graph.num_vertices):
        succ_u = graph.n_succ(u)
        k = len(succ_u)
        if k < 2:
            continue
        for idx in range(k - 1):
            v = int(succ_u[idx])
            candidates = succ_u[idx + 1:]
            ops += HASH_PROBE_COST * len(candidates)
            hits = candidates[np.isin(candidates, graph.neighbors(v),
                                      assume_unique=True)]
            if len(hits):
                triangles += len(hits)
                sink.emit(u, v, hits.tolist())
    return TriangulationResult(triangles=triangles, cpu_ops=ops)
