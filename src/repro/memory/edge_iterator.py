"""EdgeIterator≻ — Algorithm 2 of the paper.

For every edge ``(u, v)`` with ``id(u) < id(v)``, every common successor
``w in n_succ(u) ∩ n_succ(v)`` completes the triangle ``(u, v, w)``.  The
ordering constraint lists each triangle exactly once.  With the hash cost
model, one edge costs ``min(|n_succ(u)|, |n_succ(v)|)`` operations and the
total is ``O(alpha * |E|)`` (Eq. 2-5).

This function is now a façade over the composition layer: it runs
``compose(memory, <kernel>, serial)`` from :mod:`repro.exec`, which
executes the identical loop with the identical operation accounting.
The scenario matrix cross-checks the composed cell against every other
source/executor pairing, so the façade stays honest by construction.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.memory.base import TriangleSink, TriangulationResult
from repro.util.intersect import IntersectionKernel

__all__ = ["edge_iterator"]

#: Historical kernel selector -> exec registry kernel name.  NUMPY and
#: HASH share the Eq. 3 analytic charge ``min(|a|, |b|)``; the exec
#: ``hash`` kernel is the vectorized fast path that charges it.
_KERNEL_NAMES = {
    IntersectionKernel.NUMPY: "hash",
    IntersectionKernel.HASH: "hash",
    IntersectionKernel.MERGE: "merge",
    IntersectionKernel.GALLOP: "gallop",
    IntersectionKernel.ADAPTIVE: "adaptive",
}


def edge_iterator(
    graph: Graph,
    sink: TriangleSink | None = None,
    *,
    kernel: IntersectionKernel | str = IntersectionKernel.NUMPY,
) -> TriangulationResult:
    """List all triangles of *graph* with EdgeIterator≻.

    Parameters
    ----------
    graph:
        The (already relabeled, if desired) input graph.
    sink:
        Optional receiver of nested ``<u, v, {w...}>`` groups; defaults to
        a counting sink.
    kernel:
        Intersection strategy.  The default numpy kernel charges the
        paper's analytic probe count; the reference kernels (merge, hash,
        gallop) charge their own measured operation counts — used by the
        kernel ablation benchmark.

    Returns the triangle count and the CPU op count.
    """
    from repro.exec.engine import compose

    kernel = IntersectionKernel(kernel)
    engine = compose("memory", _KERNEL_NAMES[kernel], "serial", graph=graph)
    # No sink: run in count-only mode (no group materialization), the
    # historical default-CountSink behavior.
    result = engine.run(sink)
    # Preserve the historical result shape: a pure in-memory run reports
    # triangles and CPU ops only.
    return TriangulationResult(triangles=result.triangles,
                               cpu_ops=result.cpu_ops)
