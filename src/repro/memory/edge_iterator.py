"""EdgeIterator≻ — Algorithm 2 of the paper.

For every edge ``(u, v)`` with ``id(u) < id(v)``, every common successor
``w in n_succ(u) ∩ n_succ(v)`` completes the triangle ``(u, v, w)``.  The
ordering constraint lists each triangle exactly once.  With the hash cost
model, one edge costs ``min(|n_succ(u)|, |n_succ(v)|)`` operations and the
total is ``O(alpha * |E|)`` (Eq. 2-5).
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.memory.base import CountSink, TriangleSink, TriangulationResult
from repro.util.intersect import (
    IntersectionKernel,
    intersect_count_ops,
    intersect_sorted,
    resolve_kernel,
)

__all__ = ["edge_iterator"]


def edge_iterator(
    graph: Graph,
    sink: TriangleSink | None = None,
    *,
    kernel: IntersectionKernel | str = IntersectionKernel.NUMPY,
) -> TriangulationResult:
    """List all triangles of *graph* with EdgeIterator≻.

    Parameters
    ----------
    graph:
        The (already relabeled, if desired) input graph.
    sink:
        Optional receiver of nested ``<u, v, {w...}>`` groups; defaults to
        a counting sink.
    kernel:
        Intersection strategy.  The default numpy kernel charges the
        paper's analytic probe count; the reference kernels (merge, hash,
        gallop) charge their own measured operation counts — used by the
        kernel ablation benchmark.

    Returns the triangle count and the CPU op count.
    """
    if sink is None:
        sink = CountSink()
    kernel = IntersectionKernel(kernel)
    triangles = 0
    ops = 0
    if kernel is IntersectionKernel.NUMPY:
        for u in range(graph.num_vertices):
            succ_u = graph.n_succ(u)
            if len(succ_u) == 0:
                continue
            for v in succ_u:
                v = int(v)
                succ_v = graph.n_succ(v)
                ops += intersect_count_ops(len(succ_u), len(succ_v))
                common = intersect_sorted(succ_u, succ_v)
                if len(common):
                    triangles += len(common)
                    sink.emit(u, v, common.tolist())
    else:
        intersect = resolve_kernel(kernel)
        for u in range(graph.num_vertices):
            succ_u = graph.n_succ(u).tolist()
            if not succ_u:
                continue
            for v in succ_u:
                common, kernel_ops = intersect(succ_u, graph.n_succ(v).tolist())
                ops += kernel_ops
                if common:
                    triangles += len(common)
                    sink.emit(u, v, common)
    return TriangulationResult(triangles=triangles, cpu_ops=ops)
