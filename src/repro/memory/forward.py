"""The *forward* algorithm of Schank & Wagner (WEA'05).

An optimization of EdgeIterator≻ that intersects dynamically grown prefix
lists ``A(v) ⊆ n_prec(v)`` instead of full successor lists.  Included as a
library extension (the paper cites Schank's thesis for the iterator
taxonomy); it lists the same triangles with a strictly smaller op count,
which the test suite asserts.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.memory.base import CountSink, TriangleSink, TriangulationResult
from repro.util.intersect import merge_intersect

__all__ = ["forward"]


def forward(graph: Graph, sink: TriangleSink | None = None) -> TriangulationResult:
    """List all triangles with the forward algorithm.

    For vertices in increasing id order, each edge ``(u, v)`` with
    ``u < v`` intersects ``A(u)`` and ``A(v)`` — the already-seen lower
    neighbors — yielding triangles ``(w, u, v)`` with ``w < u < v``; then
    ``u`` is appended to ``A(v)``.  Lists stay sorted because vertices are
    processed in id order.
    """
    if sink is None:
        sink = CountSink()
    seen_below: list[list[int]] = [[] for _ in range(graph.num_vertices)]
    triangles = 0
    ops = 0
    for u in range(graph.num_vertices):
        for v in graph.n_succ(u):
            v = int(v)
            # Charge the same hash-probe measure as EdgeIterator (Eq. 3)
            # so costs are comparable across methods.
            ops += min(len(seen_below[u]), len(seen_below[v]))
            common, _ = merge_intersect(seen_below[u], seen_below[v])
            if common:
                triangles += len(common)
                for w in common:
                    sink.emit(w, u, [v])
            seen_below[v].append(u)
    return TriangulationResult(triangles=triangles, cpu_ops=ops)
