"""k-clique listing — the paper's "subgraph listing" future-work direction.

The paper closes by positioning OPT as "a substantial framework for
future research such as the subgraph listing problem".  This module
provides the in-memory reference for the simplest such generalization:
listing all k-cliques (triangles are the ``k = 3`` case) with the
Chiba-Nishizeki-style ordered expansion — extend each (k-1)-clique by a
common successor of all its members, so every clique is emitted exactly
once in increasing-id order.

Under the degree ordering the successor lists are small, giving the
``O(alpha^{k-2} * |E|)`` behaviour of the classic algorithm.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import TriangulationError
from repro.graph.graph import Graph
from repro.memory.base import TriangulationResult
from repro.util.intersect import intersect_count_ops, intersect_sorted

__all__ = ["count_cliques", "list_cliques"]


def list_cliques(graph: Graph, k: int) -> Iterator[tuple[int, ...]]:
    """Yield every k-clique of *graph* as an increasing id tuple.

    ``k = 1`` yields vertices, ``k = 2`` edges, ``k = 3`` triangles...
    """
    if k < 1:
        raise TriangulationError("clique size must be at least 1")
    if k == 1:
        for v in range(graph.num_vertices):
            yield (v,)
        return

    def expand(prefix: tuple[int, ...], common_succ: np.ndarray) -> Iterator[tuple[int, ...]]:
        if len(prefix) == k:
            yield prefix
            return
        for v in common_succ:
            v = int(v)
            narrowed = intersect_sorted(common_succ, graph.n_succ(v))
            yield from expand(prefix + (v,), narrowed)

    for u in range(graph.num_vertices):
        yield from expand((u,), graph.n_succ(u))


def count_cliques(graph: Graph, k: int) -> TriangulationResult:
    """Count k-cliques, with the same probe cost accounting as the iterators.

    ``result.triangles`` carries the clique count (for ``k = 3`` it *is*
    the triangle count).
    """
    if k < 1:
        raise TriangulationError("clique size must be at least 1")
    if k == 1:
        return TriangulationResult(triangles=graph.num_vertices)
    count = 0
    ops = 0

    def expand(depth: int, common_succ: np.ndarray) -> None:
        nonlocal count, ops
        if depth == k:
            count += len(common_succ)
            return
        for v in common_succ:
            v = int(v)
            succ_v = graph.n_succ(v)
            ops += intersect_count_ops(len(common_succ), len(succ_v))
            narrowed = intersect_sorted(common_succ, succ_v)
            if len(narrowed):
                expand(depth + 1, narrowed)

    for u in range(graph.num_vertices):
        expand(2, graph.n_succ(u))
    return TriangulationResult(triangles=count, cpu_ops=ops)
