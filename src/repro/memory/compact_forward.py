"""Latapy's *compact-forward* algorithm (Theor. Comput. Sci. 2008).

Cited by the paper ([24]) among the in-memory methods.  Compact-forward
iterates vertices in decreasing-degree order and intersects truncated
adjacency arrays in place: for each edge ``(u, v)`` with ``rank(v) >
rank(u)``, it merge-scans ``n(u)`` and ``n(v)`` but only over entries of
rank greater than ``rank(v)`` — equivalent to EdgeIterator≻ under the
degree ordering, with the truncation done by pointer arithmetic rather
than precomputed successor lists.

On a graph already relabeled with :func:`repro.graph.ordering.apply_ordering`
(ids = degree ranks) the rank comparisons become plain id comparisons,
which is how this implementation realizes it.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.memory.base import CountSink, TriangleSink, TriangulationResult

__all__ = ["compact_forward"]


def compact_forward(graph: Graph, sink: TriangleSink | None = None) -> TriangulationResult:
    """List all triangles with compact-forward.

    Assumes ids already encode the intended rank order (use the degree
    ordering for the method's intended complexity).  Each triangle
    ``(u, v, w)`` with ``u < v < w`` is found once, at edge ``(u, v)``.
    """
    if sink is None:
        sink = CountSink()
    triangles = 0
    ops = 0
    indptr, indices = graph.indptr, graph.indices
    for u in range(graph.num_vertices):
        row_u = indices[indptr[u]:indptr[u + 1]]
        start_u = int(np.searchsorted(row_u, u, side="right"))
        for v in row_u[start_u:]:
            v = int(v)
            row_v = indices[indptr[v]:indptr[v + 1]]
            # Truncated merge: both cursors start past rank(v).
            i = int(np.searchsorted(row_u, v, side="right"))
            j = int(np.searchsorted(row_v, v, side="right"))
            found: list[int] = []
            len_u, len_v = len(row_u), len(row_v)
            while i < len_u and j < len_v:
                ops += 1
                a, b = row_u[i], row_v[j]
                if a == b:
                    found.append(int(a))
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
            if found:
                triangles += len(found)
                sink.emit(u, v, found)
    return TriangulationResult(triangles=triangles, cpu_ops=ops)
