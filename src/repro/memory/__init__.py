"""In-memory triangulation methods (the paper's Section 2 baselines)."""

from repro.memory.base import (
    CollectSink,
    CountSink,
    TriangleSink,
    TriangulationResult,
    canonical_triangles,
)
from repro.memory.cliques import count_cliques, list_cliques
from repro.memory.compact_forward import compact_forward
from repro.memory.edge_iterator import edge_iterator
from repro.memory.forward import forward
from repro.memory.matrix import matrix_count
from repro.memory.vertex_iterator import vertex_iterator

__all__ = [
    "CollectSink",
    "CountSink",
    "TriangleSink",
    "TriangulationResult",
    "canonical_triangles",
    "compact_forward",
    "count_cliques",
    "edge_iterator",
    "forward",
    "list_cliques",
    "matrix_count",
    "vertex_iterator",
]
