"""Minimal text charts for benchmark reports.

The reproduction is terminal-first: the figures the paper plots are
rendered here as aligned text charts (horizontal bars and multi-series
line grids) so `benchmarks/results/*.txt` can show the *shape* of each
figure, not only its numbers.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["bar_chart", "series_chart", "sparkline"]

#: Eight-level block ramp used by :func:`sparkline`.
_SPARK_TICKS = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 50,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal bar chart: one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    lines: list[str] = []
    if title:
        lines.append(title)
    if not values:
        return "\n".join(lines + ["(no data)"])
    peak = max(max(values), 1e-12)
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| "
                     f"{value:g}{unit}")
    return "\n".join(lines)


def series_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Plot several y-series over shared x positions on a character grid.

    Each series is drawn with its own marker (first letter of its name);
    collisions show ``*``.
    """
    if not series:
        raise ValueError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    columns = len(x_values)
    peak = max((max(ys) for ys in series.values()), default=0.0)
    peak = max(peak, 1e-12)
    grid = [[" "] * columns for _ in range(height)]
    markers = {}
    used = set()
    for name in series:
        marker = name[0].upper()
        while marker in used:
            marker = chr(ord(marker) + 1)
        used.add(marker)
        markers[name] = marker
    for name, ys in series.items():
        for col, y in enumerate(ys):
            row = height - 1 - min(height - 1, round(y / peak * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = markers[name] if cell == " " else "*"
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"y max = {peak:g}")
    for row in grid:
        lines.append("|" + " ".join(row))
    lines.append("+" + "-" * (2 * columns - 1))
    lines.append(" " + " ".join(_fit(x) for x in x_values))
    lines.append("legend: " + ", ".join(
        f"{marker}={name}" for name, marker in markers.items()
    ))
    return "\n".join(lines)


def sparkline(values: Sequence[float], *, width: int | None = None) -> str:
    """One-line block-character chart of *values*, scaled to their range.

    With *width* set, the most recent ``width`` values are shown (live
    views want the trailing window).  A flat series renders at the lowest
    tick so a sparkline of constants is visibly "flat", not empty.
    Non-finite values (NaN, ±inf — torn telemetry ticks, div-by-zero
    rates) render as ``·`` and are excluded from the scale instead of
    poisoning it.
    """
    if width is not None:
        if width < 1:
            raise ValueError("sparkline width must be at least one column")
        values = values[-width:]
    if not values:
        return ""
    finite = [value for value in values if math.isfinite(value)]
    if not finite:
        return "·" * len(values)
    lo = min(finite)
    hi = max(finite)
    span = hi - lo
    top = len(_SPARK_TICKS) - 1
    out = []
    for value in values:
        if not math.isfinite(value):
            out.append("·")
        elif span <= 0:
            out.append(_SPARK_TICKS[0])
        else:
            out.append(_SPARK_TICKS[min(top, round((value - lo) / span * top))])
    return "".join(out)


def _fit(x: float) -> str:
    text = f"{x:g}"
    return text[0] if len(text) > 1 else text
