"""The paper's Section 3.3 cost equations, evaluated on measured traces.

Provides the analytic counterparts to the simulated runs:

* ``ideal_cost``            — Eq. 6: ``c * P(G) + Cost_CPU``;
* ``opt_serial_cost``       — ``Cost_ideal + c * (Δex − Δin)``;
* ``relative_elapsed_time`` — the Figure 3a measure (method / ideal);
* ``mgt_io_bound``          — Eq. 7's ``(1 + ceil(P/m)) * c * P(G)``.

All quantities are expressed in CPU-operation units, with ``c`` taken
from a :class:`~repro.sim.costmodel.CostModel` so analytic and simulated
numbers are directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.trace import RunTrace

__all__ = [
    "CostBreakdown",
    "cost_conformance",
    "ideal_cost",
    "mgt_io_bound",
    "opt_serial_cost",
    "relative_elapsed_time",
]


@dataclass(frozen=True)
class CostBreakdown:
    """One run's cost decomposition in CPU-operation units."""

    io_ops: float
    cpu_ops: float
    delta_in_ops: float = 0.0
    delta_ex_ops: float = 0.0

    @property
    def total(self) -> float:
        return self.io_ops + self.cpu_ops - self.delta_in_ops + self.delta_ex_ops


def ideal_cost(
    num_pages: int,
    cpu_ops: int,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> CostBreakdown:
    """Eq. 6: the ideal method reads the graph once and pays pure CPU."""
    return CostBreakdown(io_ops=cost.c_effective * num_pages, cpu_ops=float(cpu_ops))


def opt_serial_cost(
    trace: RunTrace,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> CostBreakdown:
    """Section 3.3: ``c(P(G) − Δin) + Cost_CPU + c·Δex`` from a real trace.

    ``Δin`` is the measured buffered-fill saving.  ``Δex`` — the external
    I/O that could not hide behind external CPU — is computed per
    iteration as ``max(0, c·|L_i| − cpu_ex_i)``, the non-overlapped
    remainder of the micro-level pipeline.
    """
    delta_ex = 0.0
    for iteration in trace.iterations:
        io = cost.c_effective * iteration.external_device_reads
        delta_ex += max(0.0, io - iteration.external_ops)
    return CostBreakdown(
        io_ops=cost.c_effective * trace.num_pages,
        cpu_ops=float(trace.total_ops),
        delta_in_ops=cost.c_effective * trace.total_fill_buffered,
        delta_ex_ops=delta_ex,
    )


def relative_elapsed_time(method_elapsed: float, ideal_elapsed: float) -> float:
    """Figure 3a's measure: elapsed(method) / elapsed(ideal)."""
    if ideal_elapsed <= 0:
        raise ValueError("ideal elapsed time must be positive")
    return method_elapsed / ideal_elapsed


def cost_conformance(
    trace: RunTrace,
    measured_elapsed: float,
    cost: CostModel = DEFAULT_COST_MODEL,
    *,
    tolerance: float = 0.15,
    basis: str = "simulated",
) -> dict:
    """Check a measured run against the ``Cost_OPTserial`` prediction.

    Evaluates the Section 3.3 closed form on the run's own trace —
    ``c(P(G) − Δin) + Cost_CPU + c·Δex`` — converts it to seconds via
    the model's ``op_time``, and compares *measured_elapsed* against it.
    On the simulated engine in serial mode the two describe the same
    schedule, so drift beyond *tolerance* means the scheduler and the
    analytic model have diverged (the check the paper's ~7%-of-ideal
    claim rests on).  On the threaded engine *measured_elapsed* is wall
    seconds on real hardware, so the verdict reports how far the machine
    is from the calibrated model rather than a correctness property —
    callers pass ``basis="wall"`` to say so.

    Returns a JSON-ready dict: ``predicted_elapsed``,
    ``measured_elapsed``, ``ratio``, ``tolerance``, ``basis``,
    ``verdict`` (``"conforms"`` / ``"drift"``), plus the measured
    ``delta_in_ops`` / ``delta_ex_ops`` / ``delta_ex_minus_in_ops``
    behind the prediction.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    breakdown = opt_serial_cost(trace, cost)
    predicted = breakdown.total * cost.op_time
    ratio = measured_elapsed / predicted if predicted > 0 else float("inf")
    return {
        "predicted_elapsed": predicted,
        "measured_elapsed": measured_elapsed,
        "ratio": ratio,
        "tolerance": tolerance,
        "basis": basis,
        "verdict": "conforms" if abs(ratio - 1.0) <= tolerance else "drift",
        "delta_in_ops": breakdown.delta_in_ops,
        "delta_ex_ops": breakdown.delta_ex_ops,
        "delta_ex_minus_in_ops": breakdown.delta_ex_ops - breakdown.delta_in_ops,
    }


def mgt_io_bound(
    num_pages: int,
    buffer_pages: int,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Eq. 7's MGT I/O bound ``(1 + ceil(P/m)) * c * P(G)`` in op units."""
    if buffer_pages < 1:
        raise ValueError("buffer must hold at least one page")
    iterations = math.ceil(num_pages / buffer_pages)
    return (1 + iterations) * cost.c * num_pages
