"""The paper's Section 3.3 cost equations, evaluated on measured traces.

Provides the analytic counterparts to the simulated runs:

* ``ideal_cost``            — Eq. 6: ``c * P(G) + Cost_CPU``;
* ``opt_serial_cost``       — ``Cost_ideal + c * (Δex − Δin)``;
* ``relative_elapsed_time`` — the Figure 3a measure (method / ideal);
* ``mgt_io_bound``          — Eq. 7's ``(1 + ceil(P/m)) * c * P(G)``.

All quantities are expressed in CPU-operation units, with ``c`` taken
from a :class:`~repro.sim.costmodel.CostModel` so analytic and simulated
numbers are directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.trace import RunTrace

__all__ = [
    "CostBreakdown",
    "ideal_cost",
    "mgt_io_bound",
    "opt_serial_cost",
    "relative_elapsed_time",
]


@dataclass(frozen=True)
class CostBreakdown:
    """One run's cost decomposition in CPU-operation units."""

    io_ops: float
    cpu_ops: float
    delta_in_ops: float = 0.0
    delta_ex_ops: float = 0.0

    @property
    def total(self) -> float:
        return self.io_ops + self.cpu_ops - self.delta_in_ops + self.delta_ex_ops


def ideal_cost(
    num_pages: int,
    cpu_ops: int,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> CostBreakdown:
    """Eq. 6: the ideal method reads the graph once and pays pure CPU."""
    return CostBreakdown(io_ops=cost.c_effective * num_pages, cpu_ops=float(cpu_ops))


def opt_serial_cost(
    trace: RunTrace,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> CostBreakdown:
    """Section 3.3: ``c(P(G) − Δin) + Cost_CPU + c·Δex`` from a real trace.

    ``Δin`` is the measured buffered-fill saving.  ``Δex`` — the external
    I/O that could not hide behind external CPU — is computed per
    iteration as ``max(0, c·|L_i| − cpu_ex_i)``, the non-overlapped
    remainder of the micro-level pipeline.
    """
    delta_ex = 0.0
    for iteration in trace.iterations:
        io = cost.c_effective * iteration.external_device_reads
        delta_ex += max(0.0, io - iteration.external_ops)
    return CostBreakdown(
        io_ops=cost.c_effective * trace.num_pages,
        cpu_ops=float(trace.total_ops),
        delta_in_ops=cost.c_effective * trace.total_fill_buffered,
        delta_ex_ops=delta_ex,
    )


def relative_elapsed_time(method_elapsed: float, ideal_elapsed: float) -> float:
    """Figure 3a's measure: elapsed(method) / elapsed(ideal)."""
    if ideal_elapsed <= 0:
        raise ValueError("ideal elapsed time must be positive")
    return method_elapsed / ideal_elapsed


def mgt_io_bound(
    num_pages: int,
    buffer_pages: int,
    cost: CostModel = DEFAULT_COST_MODEL,
) -> float:
    """Eq. 7's MGT I/O bound ``(1 + ceil(P/m)) * c * P(G)`` in op units."""
    if buffer_pages < 1:
        raise ValueError("buffer must hold at least one page")
    iterations = math.ceil(num_pages / buffer_pages)
    return (1 + iterations) * cost.c * num_pages
