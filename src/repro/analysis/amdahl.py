"""Amdahl's-law analysis (the paper's Table 5).

The paper explains the two methods' different speed-ups by their parallel
fractions: with ``c`` cores and parallel fraction ``p``, the speed-up is
bounded by ``1 / ((1 - p) + p / c)``.  These helpers compute the bound,
fit ``p`` from measured speed-ups, and assemble Table 5 rows.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SpeedupRow", "amdahl_bound", "fit_parallel_fraction"]


def amdahl_bound(parallel_fraction: float, cores: int) -> float:
    """Upper-bound speed-up ``ub^c`` for a given parallel fraction."""
    if not 0.0 <= parallel_fraction <= 1.0:
        raise ValueError("parallel fraction must be in [0, 1]")
    if cores < 1:
        raise ValueError("cores must be >= 1")
    return 1.0 / ((1.0 - parallel_fraction) + parallel_fraction / cores)


def fit_parallel_fraction(speedup: float, cores: int) -> float:
    """Invert Amdahl's law: the ``p`` that yields *speedup* on *cores*.

    Clamped to [0, 1]; useful for estimating a method's parallel fraction
    from a measured two-point speed-up.
    """
    if cores < 2:
        raise ValueError("need at least 2 cores to fit p")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    p = (1.0 - 1.0 / speedup) / (1.0 - 1.0 / cores)
    return min(1.0, max(0.0, p))


@dataclass(frozen=True)
class SpeedupRow:
    """One method/dataset row of the paper's Table 5."""

    method: str
    dataset: str
    parallel_fraction: float
    cores: int
    empirical_speedup: float

    @property
    def upper_bound(self) -> float:
        return amdahl_bound(self.parallel_fraction, self.cores)

    def as_tuple(self) -> tuple[str, str, float, float, float]:
        return (
            self.method,
            self.dataset,
            self.parallel_fraction,
            self.upper_bound,
            self.empirical_speedup,
        )
