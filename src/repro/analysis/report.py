"""Assemble the regenerated tables into one reproduction report.

``build_report`` collects every ``benchmarks/results/*.txt`` artifact in
experiment order and renders a single markdown document — a convenient
artifact to diff across runs or attach to a reproduction writeup.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["EXPERIMENT_ORDER", "build_report"]

#: Canonical experiment ordering (the paper's Section 5 order).
EXPERIMENT_ORDER = [
    "table2_datasets",
    "table3_output_writing",
    "fig3a_buffer_sweep",
    "fig3b_inmemory",
    "fig4_thread_morphing",
    "fig5_buffer_effect",
    "fig5_buffer_effect_twitter",
    "fig5_buffer_effect_uk",
    "table4_cores",
    "fig6_speedup",
    "table5_amdahl",
    "table6_billion",
    "fig7a_vertices",
    "fig7b_density",
    "fig7c_clustering",
    "table7_distributed",
]


def build_report(results_dir: str | Path, output: str | Path | None = None) -> str:
    """Render the markdown report; optionally write it to *output*.

    Unknown result files are appended after the canonical ones so ad-hoc
    experiments (ablations) are never dropped.
    """
    results_dir = Path(results_dir)
    sections: list[str] = [
        "# OPT reproduction report",
        "",
        "Regenerated tables and figures (see EXPERIMENTS.md for the "
        "paper-vs-measured analysis).",
    ]
    seen: set[str] = set()
    names = [n for n in EXPERIMENT_ORDER
             if (results_dir / f"{n}.txt").exists()]
    names += sorted(
        p.stem for p in results_dir.glob("*.txt") if p.stem not in EXPERIMENT_ORDER
    )
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        body = (results_dir / f"{name}.txt").read_text(encoding="utf-8").rstrip()
        sections += ["", f"## {name}", "", "```text", body, "```"]
    text = "\n".join(sections) + "\n"
    if output is not None:
        Path(output).write_text(text, encoding="utf-8")
    return text
