"""Analytic companions to the simulated runs: cost equations, Amdahl fits."""

from repro.analysis.amdahl import SpeedupRow, amdahl_bound, fit_parallel_fraction
from repro.analysis.costs import (
    CostBreakdown,
    cost_conformance,
    ideal_cost,
    mgt_io_bound,
    opt_serial_cost,
    relative_elapsed_time,
)
from repro.analysis.ascii_chart import bar_chart, series_chart
from repro.analysis.report import EXPERIMENT_ORDER, build_report

__all__ = [
    "CostBreakdown",
    "EXPERIMENT_ORDER",
    "SpeedupRow",
    "amdahl_bound",
    "bar_chart",
    "series_chart",
    "build_report",
    "cost_conformance",
    "fit_parallel_fraction",
    "ideal_cost",
    "mgt_io_bound",
    "opt_serial_cost",
    "relative_elapsed_time",
]
