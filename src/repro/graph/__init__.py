"""Graph substrate: CSR graphs, builders, generators, orderings, metrics."""

from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.cores import core_numbers, degeneracy, degeneracy_arboricity_bounds
from repro.graph.graph import Graph
from repro.graph.ordering import Ordering, apply_ordering, degree_order_mapping

__all__ = [
    "Graph",
    "core_numbers",
    "degeneracy",
    "degeneracy_arboricity_bounds",
    "GraphBuilder",
    "Ordering",
    "apply_ordering",
    "degree_order_mapping",
    "from_edges",
]
