"""Graph substrate: CSR graphs, builders, generators, orderings, metrics."""

from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.cores import (
    core_decomposition,
    core_numbers,
    degeneracy,
    degeneracy_arboricity_bounds,
    peeling_order,
)
from repro.graph.graph import Graph
from repro.graph.ordering import (
    Ordering,
    apply_ordering,
    choose_ordering,
    degree_order_mapping,
    ordering_op_cost,
)

__all__ = [
    "Graph",
    "core_decomposition",
    "core_numbers",
    "degeneracy",
    "degeneracy_arboricity_bounds",
    "peeling_order",
    "GraphBuilder",
    "Ordering",
    "apply_ordering",
    "choose_ordering",
    "degree_order_mapping",
    "ordering_op_cost",
    "from_edges",
]
