"""Vertex-id orderings.

The paper (following Schank & Wagner) relabels vertices so that ids follow
non-decreasing degree: ``degree(u) < degree(v)  =>  id(u) < id(v)``.  High-
degree vertices get high ids, which shrinks their ``n_succ`` lists and cuts
intersection cost by orders of magnitude on power-law graphs.  All five
evaluated methods use this heuristic, so it lives in the graph substrate.

Beyond degree order the catalogue carries two further heuristics from the
tailored-ordering literature (Lécuyer et al.):

* ``degeneracy`` — the k-core peel sequence (Matula & Beck): vertices get
  ids in the order the linear-time core decomposition removes them, so
  the ordering tracks coreness rather than raw degree and bounds every
  ``n_succ`` list by the graph's degeneracy;
* ``locality`` — deterministic BFS from a min-degree root with sorted
  neighbor visits: ids follow neighborhood proximity, which compacts the
  successor ranges the range-pruning adaptive kernel feeds on.

No single ordering wins on every graph, so ``auto`` measures the exact
Eq. 3 bill of each candidate via :func:`ordering_op_cost` — a vectorized
closed form over the edge array, no relabeled graph or engine run needed
— and :func:`choose_ordering` picks the cheapest, deterministically.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.graph.cores import peeling_order
from repro.graph.graph import Graph

__all__ = [
    "Ordering",
    "apply_ordering",
    "choose_ordering",
    "degeneracy_order_mapping",
    "degree_order_mapping",
    "locality_order_mapping",
    "ordering_costs",
    "ordering_op_cost",
]


class Ordering(str, Enum):
    """Supported vertex-id orderings."""

    NATURAL = "natural"
    DEGREE = "degree"
    REVERSE_DEGREE = "reverse-degree"  # ablation: the pessimal choice
    RANDOM = "random"
    DEGENERACY = "degeneracy"
    LOCALITY = "locality"
    AUTO = "auto"  # per-graph: cheapest measured Eq. 3 bill wins


#: The orderings ``auto`` measures, in tie-break preference order
#: (earlier wins on equal cost; degree first — it is the paper's default
#: and the cheapest mapping to build).
AUTO_CANDIDATES = (Ordering.DEGREE, Ordering.DEGENERACY, Ordering.LOCALITY,
                   Ordering.NATURAL)


def degree_order_mapping(graph: Graph, *, reverse: bool = False) -> np.ndarray:
    """Mapping ``old id -> new id`` sorting vertices by degree.

    Ties break by original id, making the mapping deterministic.  With
    ``reverse=True`` high-degree vertices get *low* ids (the pessimal
    ordering, used by the ordering ablation benchmark).
    """
    degrees = graph.degrees()
    if reverse:
        degrees = -degrees
    order = np.lexsort((np.arange(graph.num_vertices), degrees))
    mapping = np.empty(graph.num_vertices, dtype=np.int64)
    mapping[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return mapping


def degeneracy_order_mapping(graph: Graph) -> np.ndarray:
    """Mapping ``old id -> new id`` following the k-core peel sequence.

    The vertex peeled *i*-th gets id ``i``; core numbers are
    non-decreasing along the sequence, so low-core periphery gets low
    ids and the dense core gets high ids — every ``n_succ`` list is then
    bounded by the graph's degeneracy.
    """
    order = peeling_order(graph)
    mapping = np.empty(graph.num_vertices, dtype=np.int64)
    mapping[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return mapping


def locality_order_mapping(graph: Graph) -> np.ndarray:
    """Mapping ``old id -> new id`` by deterministic BFS visit rank.

    Each component is traversed breadth-first from its minimum-degree
    vertex (ties by lowest id), neighbors visited in ascending id order;
    components start from the lowest-id unvisited root candidate.  Ids
    then follow neighborhood proximity, which narrows the successor-range
    spans the range-pruning adaptive kernel intersects.
    """
    n = graph.num_vertices
    mapping = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return mapping
    degrees = graph.degrees()
    # Root preference: min degree, then min id — one lexsort gives the
    # global candidate sequence; per component the first unvisited
    # candidate is the root.
    roots = np.lexsort((np.arange(n), degrees))
    next_rank = 0
    head = 0
    queue = np.empty(n, dtype=np.int64)
    for root in roots:
        root = int(root)
        if mapping[root] >= 0:
            continue
        tail = head
        queue[tail] = root
        tail += 1
        mapping[root] = next_rank
        next_rank += 1
        while head < tail:
            u = int(queue[head])
            head += 1
            for v in graph.neighbors(u):
                v = int(v)
                if mapping[v] < 0:
                    mapping[v] = next_rank
                    next_rank += 1
                    queue[tail] = v
                    tail += 1
    return mapping


def ordering_op_cost(graph: Graph, mapping: np.ndarray) -> int:
    """The exact Eq. 3 bill of EdgeIterator≻ under *mapping*.

    For each undirected edge, orient it low-to-high under the new ids;
    the hash kernel then charges ``min(|n_succ(u')|, |n_succ(v')|)`` for
    that pair.  Out-degrees under the mapping are one ``bincount`` over
    the oriented edge array, so the whole bill is closed-form — no
    relabeled graph, no engine run — and matches the relabeled run's
    ``cpu_ops`` exactly (asserted by the ordering property tests).
    """
    n = graph.num_vertices
    edges = graph.edge_array()
    if n == 0 or len(edges) == 0:
        return 0
    mapped_u = mapping[edges[:, 0]]
    mapped_v = mapping[edges[:, 1]]
    lo = np.minimum(mapped_u, mapped_v)
    hi = np.maximum(mapped_u, mapped_v)
    outdeg = np.bincount(lo, minlength=n)
    return int(np.minimum(outdeg[lo], outdeg[hi]).sum())


def _mapping_for(graph: Graph, ordering: Ordering, seed: int) -> np.ndarray:
    if ordering is Ordering.NATURAL:
        return np.arange(graph.num_vertices, dtype=np.int64)
    if ordering is Ordering.DEGREE:
        return degree_order_mapping(graph)
    if ordering is Ordering.REVERSE_DEGREE:
        return degree_order_mapping(graph, reverse=True)
    if ordering is Ordering.DEGENERACY:
        return degeneracy_order_mapping(graph)
    if ordering is Ordering.LOCALITY:
        return locality_order_mapping(graph)
    if ordering is Ordering.RANDOM:
        rng = np.random.default_rng(seed)
        return rng.permutation(graph.num_vertices).astype(np.int64)
    raise ValueError(f"ordering {ordering!r} has no direct mapping")


def ordering_costs(graph: Graph) -> dict[Ordering, int]:
    """Measured Eq. 3 bill of every ``auto`` candidate on *graph*."""
    return {ordering: ordering_op_cost(graph, _mapping_for(graph, ordering, 0))
            for ordering in AUTO_CANDIDATES}


def choose_ordering(graph: Graph) -> Ordering:
    """The cheapest candidate by measured Eq. 3 bill, deterministically.

    Ties break by :data:`AUTO_CANDIDATES` position, so the choice is a
    pure function of the graph — same graph (same generator seed), same
    answer, which the ordering property tests pin.
    """
    costs = ordering_costs(graph)
    return min(AUTO_CANDIDATES, key=lambda ordering: costs[ordering])


def apply_ordering(
    graph: Graph,
    ordering: Ordering | str = Ordering.DEGREE,
    *,
    seed: int = 0,
) -> tuple[Graph, np.ndarray]:
    """Relabel *graph* under *ordering*; returns ``(graph, mapping)``.

    ``mapping[old_id] == new_id``; for ``Ordering.NATURAL`` the mapping is
    the identity and the input graph object is returned unchanged.
    ``Ordering.AUTO`` resolves through :func:`choose_ordering` first.
    """
    ordering = Ordering(ordering)
    if ordering is Ordering.AUTO:
        ordering = choose_ordering(graph)
    if ordering is Ordering.NATURAL:
        return graph, np.arange(graph.num_vertices, dtype=np.int64)
    mapping = _mapping_for(graph, ordering, seed)
    return graph.relabel(mapping), mapping
