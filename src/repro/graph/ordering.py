"""Vertex-id orderings.

The paper (following Schank & Wagner) relabels vertices so that ids follow
non-decreasing degree: ``degree(u) < degree(v)  =>  id(u) < id(v)``.  High-
degree vertices get high ids, which shrinks their ``n_succ`` lists and cuts
intersection cost by orders of magnitude on power-law graphs.  All five
evaluated methods use this heuristic, so it lives in the graph substrate.
"""

from __future__ import annotations

from enum import Enum

import numpy as np

from repro.graph.graph import Graph

__all__ = ["Ordering", "degree_order_mapping", "apply_ordering"]


class Ordering(str, Enum):
    """Supported vertex-id orderings."""

    NATURAL = "natural"
    DEGREE = "degree"
    REVERSE_DEGREE = "reverse-degree"  # ablation: the pessimal choice
    RANDOM = "random"


def degree_order_mapping(graph: Graph, *, reverse: bool = False) -> np.ndarray:
    """Mapping ``old id -> new id`` sorting vertices by degree.

    Ties break by original id, making the mapping deterministic.  With
    ``reverse=True`` high-degree vertices get *low* ids (the pessimal
    ordering, used by the ordering ablation benchmark).
    """
    degrees = graph.degrees()
    if reverse:
        degrees = -degrees
    order = np.lexsort((np.arange(graph.num_vertices), degrees))
    mapping = np.empty(graph.num_vertices, dtype=np.int64)
    mapping[order] = np.arange(graph.num_vertices, dtype=np.int64)
    return mapping


def apply_ordering(
    graph: Graph,
    ordering: Ordering | str = Ordering.DEGREE,
    *,
    seed: int = 0,
) -> tuple[Graph, np.ndarray]:
    """Relabel *graph* under *ordering*; returns ``(graph, mapping)``.

    ``mapping[old_id] == new_id``; for ``Ordering.NATURAL`` the mapping is
    the identity and the input graph object is returned unchanged.
    """
    ordering = Ordering(ordering)
    n = graph.num_vertices
    if ordering is Ordering.NATURAL:
        return graph, np.arange(n, dtype=np.int64)
    if ordering is Ordering.DEGREE:
        mapping = degree_order_mapping(graph)
    elif ordering is Ordering.REVERSE_DEGREE:
        mapping = degree_order_mapping(graph, reverse=True)
    else:
        rng = np.random.default_rng(seed)
        mapping = rng.permutation(n).astype(np.int64)
    return graph.relabel(mapping), mapping
