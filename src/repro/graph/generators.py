"""Synthetic graph generators used by the evaluation.

The paper's Section 5.8 uses the R-MAT model (default parameters from
Chakrabarti et al.) for the |V| and density sweeps, and the Holme–Kim
growing-scale-free-with-tunable-clustering model for the clustering-
coefficient sweep.  Erdős–Rényi and Barabási–Albert round out the family,
and :func:`figure1_graph` reproduces the paper's running example.

All generators are deterministic under a given ``seed``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GraphError
from repro.graph.builder import from_edges
from repro.graph.graph import Graph

__all__ = [
    "barabasi_albert",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi",
    "figure1_graph",
    "holme_kim",
    "rmat",
    "star_graph",
    "watts_strogatz",
]

#: Default R-MAT quadrant probabilities from Chakrabarti et al. (SDM'04),
#: the parameters the paper's synthetic experiments use.
RMAT_DEFAULT = (0.45, 0.15, 0.15, 0.25)


def figure1_graph() -> Graph:
    """The 8-vertex example graph of the paper's Figure 1.

    Vertices a..h map to 0..7.  It contains exactly five triangles:
    (a,b,c), (c,d,f), (d,e,f), (c,f,g), (c,g,h).
    """
    a, b, c, d, e, f, g, h = range(8)
    edges = [
        (a, b), (a, c), (b, c),
        (c, d), (c, f), (c, g), (c, h),
        (d, e), (d, f), (e, f),
        (f, g), (g, h),
    ]
    return from_edges(edges, num_vertices=8)


def complete_graph(n: int) -> Graph:
    """Complete graph ``K_n`` — has ``C(n, 3)`` triangles."""
    return from_edges(((u, v) for u in range(n) for v in range(u + 1, n)),
                      num_vertices=n)


def cycle_graph(n: int) -> Graph:
    """Cycle ``C_n`` — triangle-free for ``n > 3``."""
    if n < 3:
        raise GraphError("cycle requires at least 3 vertices")
    return from_edges(((i, (i + 1) % n) for i in range(n)), num_vertices=n)


def star_graph(n: int) -> Graph:
    """Star with one hub and ``n - 1`` leaves — triangle-free."""
    if n < 2:
        raise GraphError("star requires at least 2 vertices")
    return from_edges(((0, i) for i in range(1, n)), num_vertices=n)


def erdos_renyi(n: int, num_edges: int, *, seed: int = 0) -> Graph:
    """G(n, m): *num_edges* distinct uniform random edges on *n* vertices."""
    max_edges = n * (n - 1) // 2
    if num_edges > max_edges:
        raise GraphError(f"cannot place {num_edges} edges on {n} vertices")
    rng = np.random.default_rng(seed)
    chosen: set[tuple[int, int]] = set()
    # Sample in batches; dedupe until enough distinct edges are collected.
    while len(chosen) < num_edges:
        need = num_edges - len(chosen)
        u = rng.integers(0, n, size=need * 2)
        v = rng.integers(0, n, size=need * 2)
        for a, b in zip(u.tolist(), v.tolist()):
            if a == b:
                continue
            edge = (a, b) if a < b else (b, a)
            chosen.add(edge)
            if len(chosen) == num_edges:
                break
    return from_edges(chosen, num_vertices=n)


def rmat(
    n: int,
    num_edges: int,
    *,
    probabilities: tuple[float, float, float, float] = RMAT_DEFAULT,
    seed: int = 0,
) -> Graph:
    """R-MAT recursive-matrix graph (Chakrabarti et al., SDM'04).

    *n* is rounded up to the next power of two internally for the recursive
    quadrant descent; vertices beyond *n - 1* are folded back by modulo, so
    the result has exactly *n* vertices.  Self loops and duplicates are
    dropped, hence the final edge count can be slightly below *num_edges*
    (matching the reference generator's behaviour).
    """
    p_a, p_b, p_c, p_d = probabilities
    total = p_a + p_b + p_c + p_d
    if abs(total - 1.0) > 1e-9:
        raise GraphError("R-MAT probabilities must sum to 1")
    levels = max(1, int(np.ceil(np.log2(max(n, 2)))))
    rng = np.random.default_rng(seed)
    # Oversample to compensate for dedup losses on dense corners.
    batch = int(num_edges * 1.1) + 16
    src = np.zeros(batch, dtype=np.int64)
    dst = np.zeros(batch, dtype=np.int64)
    for level in range(levels):
        r = rng.random(batch)
        bit = 1 << (levels - level - 1)
        # Quadrant choice: a = (0,0), b = (0,1), c = (1,0), d = (1,1).
        in_b = (r >= p_a) & (r < p_a + p_b)
        in_c = (r >= p_a + p_b) & (r < p_a + p_b + p_c)
        in_d = r >= p_a + p_b + p_c
        dst[in_b | in_d] += bit
        src[in_c | in_d] += bit
    src %= n
    dst %= n
    return from_edges(zip(src.tolist(), dst.tolist()), num_vertices=n)


def barabasi_albert(n: int, attach: int, *, seed: int = 0) -> Graph:
    """Barabási–Albert preferential attachment with *attach* edges/vertex."""
    if attach < 1 or n <= attach:
        raise GraphError("need n > attach >= 1")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    # Repeated-endpoint list gives preferential attachment in O(1)/draw.
    targets = list(range(attach))
    repeated: list[int] = list(range(attach))
    for v in range(attach, n):
        for t in targets:
            edges.append((v, t))
        repeated.extend(targets)
        repeated.extend([v] * attach)
        targets = []
        seen: set[int] = set()
        while len(targets) < attach:
            candidate = repeated[rng.integers(0, len(repeated))]
            if candidate not in seen:
                seen.add(candidate)
                targets.append(candidate)
    return from_edges(edges, num_vertices=n)


def watts_strogatz(
    n: int,
    nearest: int,
    rewire_probability: float,
    *,
    seed: int = 0,
) -> Graph:
    """Watts-Strogatz small-world graph.

    A ring lattice where every vertex connects to its *nearest* (even)
    closest neighbors, with each edge rewired to a uniform random target
    with probability *rewire_probability*.  ``p = 0`` is a maximally
    clustered lattice, ``p = 1`` approaches Erdős–Rényi — another knob for
    clustering-sensitivity experiments, complementary to Holme–Kim.
    """
    if nearest < 2 or nearest % 2:
        raise GraphError("nearest must be a positive even number")
    if n <= nearest:
        raise GraphError("need n > nearest")
    if not 0.0 <= rewire_probability <= 1.0:
        raise GraphError("rewire_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)
    edges: set[tuple[int, int]] = set()
    for u in range(n):
        for offset in range(1, nearest // 2 + 1):
            v = (u + offset) % n
            edges.add((u, v) if u < v else (v, u))
    rewired: set[tuple[int, int]] = set()
    for edge in sorted(edges):
        if rng.random() < rewire_probability:
            u = edge[0]
            for _ in range(20):  # retry budget for a free target
                w = int(rng.integers(0, n))
                candidate = (u, w) if u < w else (w, u)
                if w != u and candidate not in rewired and candidate not in edges:
                    rewired.add(candidate)
                    break
            else:
                rewired.add(edge)
        else:
            rewired.add(edge)
    return from_edges(rewired, num_vertices=n)


def holme_kim(
    n: int,
    attach: int,
    triad_probability: float,
    *,
    seed: int = 0,
) -> Graph:
    """Holme–Kim growing scale-free graph with tunable clustering.

    After each preferential attachment step, with probability
    *triad_probability* the next edge is a *triad formation* step: the new
    vertex connects to a random neighbor of the vertex it just attached to,
    closing a triangle.  Raising *triad_probability* raises the clustering
    coefficient while keeping the degree distribution power-law — exactly
    the knob the paper's Figure 7c sweep needs.
    """
    if not 0.0 <= triad_probability <= 1.0:
        raise GraphError("triad_probability must be in [0, 1]")
    if attach < 1 or n <= attach:
        raise GraphError("need n > attach >= 1")
    rng = np.random.default_rng(seed)
    adjacency: list[set[int]] = [set() for _ in range(n)]
    repeated: list[int] = []

    def connect(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        repeated.append(u)
        repeated.append(v)
        return True

    for v in range(attach):
        repeated.append(v)
    for v in range(attach, n):
        made = 0
        last_target: int | None = None
        guard = 0
        while made < attach and guard < 50 * attach:
            guard += 1
            do_triad = (
                last_target is not None
                and adjacency[last_target]
                and rng.random() < triad_probability
            )
            if do_triad:
                neighbors = tuple(adjacency[last_target])
                candidate = neighbors[rng.integers(0, len(neighbors))]
            else:
                candidate = repeated[rng.integers(0, len(repeated))]
            if connect(v, candidate):
                made += 1
                last_target = candidate
    edges = [(u, w) for u in range(n) for w in adjacency[u] if u < w]
    return from_edges(edges, num_vertices=n)
