"""Compressed-sparse-row graph representation.

The paper operates on simple undirected graphs with integer vertex ids and
*sorted* adjacency lists (sortedness is what makes ``n_succ``/``n_prec``
cheap slices and intersections linear).  :class:`Graph` is immutable after
construction; all mutation goes through :class:`repro.graph.builder.GraphBuilder`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphError

__all__ = ["Graph"]


class Graph:
    """A simple undirected graph in CSR form with sorted adjacency lists.

    Parameters
    ----------
    indptr:
        ``int64`` array of length ``num_vertices + 1``; row *v*'s neighbors
        are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        ``int64`` array of neighbor ids, sorted ascending within each row.
    validate:
        When true (the default), check CSR invariants: monotone ``indptr``,
        in-range sorted neighbor ids, no self loops, symmetric edges.
        Pass ``False`` only for arrays produced by trusted code paths.
    """

    __slots__ = ("indptr", "indices", "_num_edges")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, *, validate: bool = True):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        if validate:
            self._validate()
        self._num_edges = int(len(self.indices)) // 2

    def _validate(self) -> None:
        indptr, indices = self.indptr, self.indices
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if len(indptr) == 0 or indptr[0] != 0:
            raise GraphError("indptr must start with 0")
        if indptr[-1] != len(indices):
            raise GraphError("indptr[-1] must equal len(indices)")
        if np.any(np.diff(indptr) < 0):
            raise GraphError("indptr must be non-decreasing")
        n = len(indptr) - 1
        if len(indices) and (indices.min() < 0 or indices.max() >= n):
            raise GraphError("neighbor id out of range")
        if len(indices) % 2 != 0:
            raise GraphError("undirected CSR must hold an even number of entries")
        for v in range(n):
            row = indices[indptr[v]:indptr[v + 1]]
            if len(row) > 1 and np.any(np.diff(row) <= 0):
                raise GraphError(f"adjacency list of {v} not strictly sorted")
            if len(row) and np.any(row == v):
                raise GraphError(f"self loop at vertex {v}")
        # Symmetry: every (u, v) entry must have a matching (v, u) entry.
        degrees = np.diff(indptr)
        sources = np.repeat(np.arange(n, dtype=np.int64), degrees)
        forward = set(zip(sources.tolist(), indices.tolist()))
        for u, v in forward:
            if (v, u) not in forward:
                raise GraphError(f"edge ({u}, {v}) has no reverse entry")

    # -- basic accessors ---------------------------------------------------

    @property
    def num_vertices(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Number of undirected edges ``|E|``."""
        return self._num_edges

    def degree(self, v: int) -> int:
        """Degree of vertex *v*."""
        return int(self.indptr[v + 1] - self.indptr[v])

    def degrees(self) -> np.ndarray:
        """Array of all vertex degrees."""
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted adjacency list ``n(v)`` (a read-only view)."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def n_succ(self, v: int) -> np.ndarray:
        """``n_succ(v)``: neighbors with id greater than *v* (sorted view)."""
        row = self.neighbors(v)
        cut = int(np.searchsorted(row, v, side="right"))
        return row[cut:]

    def n_prec(self, v: int) -> np.ndarray:
        """``n_prec(v)``: neighbors with id smaller than *v* (sorted view)."""
        row = self.neighbors(v)
        cut = int(np.searchsorted(row, v, side="left"))
        return row[:cut]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``(u, v)`` exists."""
        if not (0 <= u < self.num_vertices and 0 <= v < self.num_vertices):
            return False
        row = self.neighbors(u)
        pos = int(np.searchsorted(row, v))
        return pos < len(row) and row[pos] == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate undirected edges once each as ``(u, v)`` with ``u < v``."""
        for u in range(self.num_vertices):
            for v in self.n_succ(u):
                yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All undirected edges as an ``(m, 2)`` array with ``u < v`` rows."""
        degrees = np.diff(self.indptr)
        sources = np.repeat(np.arange(self.num_vertices, dtype=np.int64), degrees)
        mask = sources < self.indices
        return np.column_stack([sources[mask], self.indices[mask]])

    # -- transformations ---------------------------------------------------

    def relabel(self, mapping: np.ndarray) -> "Graph":
        """Return a new graph with vertex *v* renamed to ``mapping[v]``.

        *mapping* must be a permutation of ``0..n-1``.
        """
        mapping = np.asarray(mapping, dtype=np.int64)
        n = self.num_vertices
        if len(mapping) != n or len(np.unique(mapping)) != n:
            raise GraphError("mapping must be a permutation of the vertex ids")
        inverse = np.empty(n, dtype=np.int64)
        inverse[mapping] = np.arange(n, dtype=np.int64)
        new_indptr = np.zeros(n + 1, dtype=np.int64)
        degrees = np.diff(self.indptr)
        new_indptr[1:] = np.cumsum(degrees[inverse])
        new_indices = np.empty_like(self.indices)
        for new_v in range(n):
            old_v = inverse[new_v]
            row = mapping[self.neighbors(old_v)]
            row.sort()
            new_indices[new_indptr[new_v]:new_indptr[new_v + 1]] = row
        return Graph(new_indptr, new_indices, validate=False)

    def subgraph_rows(self, vertices: np.ndarray) -> dict[int, np.ndarray]:
        """Adjacency lists of *vertices* as a dict (used by baselines)."""
        return {int(v): self.neighbors(int(v)).copy() for v in vertices}

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return np.array_equal(self.indptr, other.indptr) and np.array_equal(
            self.indices, other.indices
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hashing only
        return id(self)

    def __repr__(self) -> str:
        return f"Graph(num_vertices={self.num_vertices}, num_edges={self.num_edges})"
