"""Network-analysis metrics built on triangle counts.

The paper motivates triangulation via clustering coefficients, transitivity
and trigonal connectivity; these are provided as library features so the
examples can compute them through the public API.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.util.intersect import intersect_sorted

__all__ = [
    "arboricity_bound",
    "clustering_coefficients",
    "global_clustering_coefficient",
    "per_vertex_triangles",
    "transitivity",
    "trigonal_connectivity",
]


def per_vertex_triangles(graph: Graph) -> np.ndarray:
    """Number of triangles each vertex participates in.

    Computed by intersecting adjacency lists along each edge (u < v) and
    crediting u, v, and every common neighbor w.
    """
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    for u in range(graph.num_vertices):
        row_u = graph.n_succ(u)
        for v in row_u:
            v = int(v)
            common = intersect_sorted(row_u, graph.n_succ(v))
            if len(common):
                counts[u] += len(common)
                counts[v] += len(common)
                counts[common] += 1
    return counts


def clustering_coefficients(graph: Graph) -> np.ndarray:
    """Local clustering coefficient of every vertex (0 for degree < 2)."""
    triangles = per_vertex_triangles(graph)
    degrees = graph.degrees().astype(np.float64)
    pairs = degrees * (degrees - 1) / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        coefficients = np.where(pairs > 0, triangles / pairs, 0.0)
    return coefficients


def global_clustering_coefficient(graph: Graph) -> float:
    """Average of the local clustering coefficients (Watts–Strogatz)."""
    if graph.num_vertices == 0:
        return 0.0
    return float(clustering_coefficients(graph).mean())


def transitivity(graph: Graph) -> float:
    """Global transitivity: ``3 * #triangles / #connected-triples``."""
    triangles = int(per_vertex_triangles(graph).sum()) // 3
    degrees = graph.degrees().astype(np.int64)
    triples = int((degrees * (degrees - 1) // 2).sum())
    if triples == 0:
        return 0.0
    return 3.0 * triangles / triples


def trigonal_connectivity(graph: Graph, u: int, v: int) -> int:
    """Number of triangles the edge ``(u, v)`` participates in.

    A tightness measure for the connection between *u* and *v* (Batagelj &
    Zaveršnik); 0 when the edge does not exist.
    """
    if not graph.has_edge(u, v):
        return 0
    return len(intersect_sorted(graph.neighbors(u), graph.neighbors(v)))


def arboricity_bound(graph: Graph) -> float:
    """Upper bound on arboricity: ``ceil(sqrt(|E|))`` for simple graphs.

    Used to sanity check the ``O(alpha * |E|)`` cost accounting.
    """
    return float(np.ceil(np.sqrt(max(graph.num_edges, 1))))
