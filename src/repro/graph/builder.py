"""Incremental construction of simple undirected graphs.

:class:`GraphBuilder` accepts arbitrary (possibly duplicated, possibly
out-of-range) edge input, enforces the *simple undirected graph* contract
from the paper's problem definition (no self loops, no parallel edges),
and emits an immutable CSR :class:`~repro.graph.graph.Graph`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import GraphError
from repro.graph.graph import Graph

__all__ = ["GraphBuilder", "from_edges"]


class GraphBuilder:
    """Accumulates edges and builds a :class:`Graph`.

    Parameters
    ----------
    num_vertices:
        Optional fixed vertex count.  When omitted, the vertex count is
        ``max vertex id + 1`` at build time (isolated trailing vertices can
        be forced by passing ``num_vertices`` explicitly).
    strict:
        When true, adding a self loop raises :class:`GraphError`; when
        false (default), self loops are silently dropped — convenient for
        raw edge-list files.  Duplicate edges are always deduplicated.
    """

    def __init__(self, num_vertices: int | None = None, *, strict: bool = False):
        if num_vertices is not None and num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._num_vertices = num_vertices
        self._strict = strict
        self._sources: list[int] = []
        self._targets: list[int] = []

    def add_edge(self, u: int, v: int) -> None:
        """Add the undirected edge ``(u, v)``."""
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise GraphError(f"negative vertex id in edge ({u}, {v})")
        if u == v:
            if self._strict:
                raise GraphError(f"self loop at vertex {u}")
            return
        if self._num_vertices is not None and max(u, v) >= self._num_vertices:
            raise GraphError(
                f"edge ({u}, {v}) exceeds fixed vertex count {self._num_vertices}"
            )
        self._sources.append(u)
        self._targets.append(v)

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add many undirected edges."""
        for u, v in edges:
            self.add_edge(u, v)

    def build(self) -> Graph:
        """Deduplicate, symmetrize, sort, and emit the CSR graph."""
        if not self._sources:
            n = self._num_vertices or 0
            return Graph(np.zeros(n + 1, dtype=np.int64), np.empty(0, dtype=np.int64),
                         validate=False)
        src = np.asarray(self._sources, dtype=np.int64)
        dst = np.asarray(self._targets, dtype=np.int64)
        n = self._num_vertices
        if n is None:
            n = int(max(src.max(), dst.max())) + 1
        # Canonicalize to (low, high), dedupe, then symmetrize.
        low = np.minimum(src, dst)
        high = np.maximum(src, dst)
        keys = low * n + high
        unique_keys = np.unique(keys)
        low = unique_keys // n
        high = unique_keys % n
        all_src = np.concatenate([low, high])
        all_dst = np.concatenate([high, low])
        order = np.lexsort((all_dst, all_src))
        all_src = all_src[order]
        all_dst = all_dst[order]
        indptr = np.zeros(n + 1, dtype=np.int64)
        counts = np.bincount(all_src, minlength=n)
        indptr[1:] = np.cumsum(counts)
        return Graph(indptr, all_dst, validate=False)


def from_edges(
    edges: Iterable[tuple[int, int]],
    num_vertices: int | None = None,
    *,
    strict: bool = False,
) -> Graph:
    """Build a :class:`Graph` from an edge iterable in one call."""
    builder = GraphBuilder(num_vertices, strict=strict)
    builder.add_edges(edges)
    return builder.build()
