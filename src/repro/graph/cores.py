"""k-core decomposition and degeneracy.

The paper's complexity statements rest on arboricity (``O(alpha |E|)``,
Eq. 1); arboricity is sandwiched by the degeneracy ``d`` of the graph
(``ceil(d/2) <= alpha <= d``), and degeneracy comes from the classic
linear-time core decomposition (Matula & Beck / Batagelj & Zaveršnik,
whose triad work the paper cites).  Exposing it lets the analysis module
report a much tighter arboricity bound than ``sqrt(|E|)``, and the core
numbers themselves are a standard network-analysis product.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph

__all__ = [
    "core_decomposition",
    "core_numbers",
    "degeneracy",
    "degeneracy_arboricity_bounds",
    "peeling_order",
]


def core_decomposition(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """``(core, order)`` from one bucket-queue peeling pass (O(|E|)).

    ``core[v]`` is the core number of vertex ``v``; ``order[i]`` is the
    vertex peeled *i*-th.  Core numbers are non-decreasing along the
    peel sequence (the current peeling level never drops), which is the
    property the degeneracy vertex ordering relies on.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    degree = graph.degrees().astype(np.int64).copy()
    max_degree = int(degree.max()) if n else 0
    # Bucket sort vertices by current degree.
    bin_start = np.zeros(max_degree + 2, dtype=np.int64)
    for d in degree:
        bin_start[d + 1] += 1
    bin_start = np.cumsum(bin_start)
    position = np.zeros(n, dtype=np.int64)
    order = np.zeros(n, dtype=np.int64)
    fill = bin_start[:-1].copy()
    for v in range(n):
        position[v] = fill[degree[v]]
        order[position[v]] = v
        fill[degree[v]] += 1

    core = degree.copy()
    bin_ptr = bin_start[:-1].copy()
    for index in range(n):
        v = int(order[index])
        for u in graph.neighbors(v):
            u = int(u)
            if core[u] > core[v]:
                # Move u one bucket down: swap with the first vertex of
                # its current bucket, then shrink the bucket.
                du = core[u]
                pu = position[u]
                pw = bin_ptr[du]
                w = int(order[pw])
                if u != w:
                    order[pu], order[pw] = w, u
                    position[u], position[w] = pw, pu
                bin_ptr[du] += 1
                core[u] -= 1
    # Swaps only ever touch positions at or past the cursor, so the
    # final array content *is* the processed sequence.
    return core, order


def core_numbers(graph: Graph) -> np.ndarray:
    """Core number of every vertex (bucket-queue peeling, O(|E|))."""
    return core_decomposition(graph)[0]


def peeling_order(graph: Graph) -> np.ndarray:
    """The degeneracy peel sequence: ``order[i]`` = vertex removed *i*-th."""
    return core_decomposition(graph)[1]


def degeneracy(graph: Graph) -> int:
    """The graph's degeneracy: the maximum core number."""
    cores = core_numbers(graph)
    return int(cores.max()) if len(cores) else 0


def degeneracy_arboricity_bounds(graph: Graph) -> tuple[float, float]:
    """``(lower, upper)`` bounds on arboricity from the degeneracy.

    ``ceil(d/2) <= arboricity <= d`` for any graph of degeneracy ``d``.
    """
    d = degeneracy(graph)
    return (float(np.ceil(d / 2.0)), float(d))
