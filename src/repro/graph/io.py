"""Graph serialization: edge lists, adjacency lists, binary CSR.

The text formats are the usual whitespace-separated ``u v`` edge list
(SNAP-style, ``#`` comments) and the ``u: v1 v2 ...`` adjacency format;
both transparently support gzip compression when the path ends in
``.gz``.  The binary format is a little-endian CSR dump with a magic
header, suitable for fast reloads of large generated graphs.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path
from typing import IO

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph

__all__ = [
    "read_adjacency",
    "read_binary",
    "read_edge_list",
    "write_adjacency",
    "write_binary",
    "write_edge_list",
]


def _open_text(path: Path, mode: str) -> IO[str]:
    """Open *path* as text, transparently gzipped for ``.gz`` suffixes."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")

_BINARY_MAGIC = b"OPTG"
_BINARY_VERSION = 1


def write_edge_list(graph: Graph, path: str | Path, *, header: bool = True) -> None:
    """Write *graph* as a text edge list (one ``u v`` line per edge)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        if header:
            handle.write(f"# undirected simple graph: {graph.num_vertices} "
                         f"vertices, {graph.num_edges} edges\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_edge_list(path: str | Path, *, num_vertices: int | None = None) -> Graph:
    """Parse a text edge list into a :class:`Graph`.

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped; self loops are dropped (raw web-graph dumps contain them).
    """
    path = Path(path)
    builder = GraphBuilder(num_vertices)
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer vertex id") from exc
            builder.add_edge(u, v)
    return builder.build()


def write_adjacency(graph: Graph, path: str | Path) -> None:
    """Write *graph* in the adjacency format: ``u: v1 v2 ...`` per line."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        handle.write(f"# adjacency: {graph.num_vertices} vertices\n")
        for u in range(graph.num_vertices):
            row = " ".join(str(int(v)) for v in graph.neighbors(u))
            handle.write(f"{u}: {row}\n")


def read_adjacency(path: str | Path) -> Graph:
    """Parse an adjacency-format file into a :class:`Graph`."""
    path = Path(path)
    builder = GraphBuilder()
    max_vertex = -1
    with _open_text(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            head, _, rest = line.partition(":")
            if not _:
                raise GraphFormatError(f"{path}:{lineno}: missing ':' separator")
            try:
                u = int(head)
                neighbors = [int(token) for token in rest.split()]
            except ValueError as exc:
                raise GraphFormatError(f"{path}:{lineno}: non-integer id") from exc
            max_vertex = max(max_vertex, u, *(neighbors or [u]))
            for v in neighbors:
                if u < v:  # the reverse direction appears on v's line
                    builder.add_edge(u, v)
    graph = builder.build()
    if graph.num_vertices < max_vertex + 1:
        # Preserve trailing isolated vertices.
        rebuilt = GraphBuilder(max_vertex + 1)
        rebuilt.add_edges(graph.edges())
        return rebuilt.build()
    return graph


def write_binary(graph: Graph, path: str | Path) -> None:
    """Write *graph* in the binary CSR format."""
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_BINARY_MAGIC)
        handle.write(struct.pack("<IQQ", _BINARY_VERSION,
                                 graph.num_vertices, len(graph.indices)))
        handle.write(graph.indptr.astype("<i8").tobytes())
        handle.write(graph.indices.astype("<i8").tobytes())


def read_binary(path: str | Path) -> Graph:
    """Load a graph written by :func:`write_binary`."""
    path = Path(path)
    with path.open("rb") as handle:
        magic = handle.read(4)
        if magic != _BINARY_MAGIC:
            raise GraphFormatError(f"{path}: bad magic {magic!r}")
        header = handle.read(struct.calcsize("<IQQ"))
        version, num_vertices, num_entries = struct.unpack("<IQQ", header)
        if version != _BINARY_VERSION:
            raise GraphFormatError(f"{path}: unsupported version {version}")
        indptr = np.frombuffer(handle.read((num_vertices + 1) * 8), dtype="<i8")
        indices = np.frombuffer(handle.read(num_entries * 8), dtype="<i8")
        if len(indptr) != num_vertices + 1 or len(indices) != num_entries:
            raise GraphFormatError(f"{path}: truncated file")
    return Graph(indptr.astype(np.int64), indices.astype(np.int64), validate=False)
