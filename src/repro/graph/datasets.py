"""Scaled-down stand-ins for the paper's five real-world datasets.

The paper evaluates on LJ, ORKUT, TWITTER, UK and YAHOO (Table 2), graphs
of up to 1.4 billion vertices that are neither redistributable here nor
tractable in pure Python.  Each stand-in preserves the property the
evaluation actually exercises:

* the degree-distribution *family* (power-law social / web graphs via
  Holme-Kim and R-MAT, a sparse low-triangle graph for YAHOO),
* the relative density ordering (YAHOO < LJ < TWITTER ~ UK < ORKUT in
  ``|E|/|V|``), and
* the clustering-coefficient range quoted in Section 5.8 (LJ 0.28,
  ORKUT 0.17).

Every generated graph is deterministic (fixed seed per dataset), and the
paper's original statistics are kept alongside for Table 2 reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.graph import Graph

__all__ = ["DATASETS", "DatasetSpec", "dataset_names", "load"]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset stand-in plus the paper's original statistics."""

    name: str
    description: str
    factory: Callable[[], Graph]
    paper_vertices: int
    paper_edges: int
    paper_triangles: int


def _lj() -> Graph:
    # LiveJournal: power-law social graph with |E|/|V| ~ 14 matching the
    # paper's 14.2.  Clustering ~0.15 — an order of magnitude above an
    # Erdős–Rényi graph of equal density, though below the real LJ's 0.28
    # (Holme-Kim saturates at this scale).
    return generators.holme_kim(2400, 14, 0.9, seed=41)


def _orkut() -> Graph:
    # Orkut: the densest of the five (|E|/|V| ~ 72); clustering ~0.17.
    return generators.holme_kim(1300, 32, 0.30, seed=42)


def _twitter() -> Graph:
    # Twitter: heavy-tailed follower graph; R-MAT's skew matches it well.
    return generators.rmat(3200, 3200 * 24, seed=43)


def _uk() -> Graph:
    # UK web graph: larger, locally clustered (hyperlink locality).
    return generators.holme_kim(4200, 18, 0.45, seed=44)


def _yahoo() -> Graph:
    # YAHOO: the billion-vertex web graph — by far the largest vertex
    # count of the suite, the sparsest (paper |E|/|V| ~ 4.7, here ~6 after
    # dedup), with a comparatively low triangles/edge ratio.  The skewed
    # R-MAT corner keeps enough hub structure for the CPU:I/O balance the
    # paper's YAHOO run exhibits (speed-up ~3 on 6 cores).
    return generators.rmat(12000, 12000 * 9, probabilities=(0.52, 0.14, 0.14, 0.20),
                           seed=45)


DATASETS: dict[str, DatasetSpec] = {
    "LJ": DatasetSpec(
        "LJ", "LiveJournal blogger network (stand-in)", _lj,
        paper_vertices=4_847_571,
        paper_edges=68_993_773,
        paper_triangles=285_730_264,
    ),
    "ORKUT": DatasetSpec(
        "ORKUT", "Orkut social network (stand-in)", _orkut,
        paper_vertices=3_072_627,
        paper_edges=223_534_301,
        paper_triangles=627_584_181,
    ),
    "TWITTER": DatasetSpec(
        "TWITTER", "Twitter follower network (stand-in)", _twitter,
        paper_vertices=41_652_230,
        paper_edges=1_468_365_182,
        paper_triangles=34_824_916_864,
    ),
    "UK": DatasetSpec(
        "UK", "UK web graph (stand-in)", _uk,
        paper_vertices=105_896_555,
        paper_edges=3_738_733_648,
        paper_triangles=286_701_284_103,
    ),
    "YAHOO": DatasetSpec(
        "YAHOO", "Yahoo billion-vertex web graph (stand-in)", _yahoo,
        paper_vertices=1_413_511_394,
        paper_edges=6_636_600_779,
        paper_triangles=85_782_928_684,
    ),
}


def dataset_names() -> list[str]:
    """Names of all available dataset stand-ins, in paper order."""
    return list(DATASETS)


@lru_cache(maxsize=None)
def _load_cached(name: str) -> Graph:
    return DATASETS[name].factory()


def load(name: str) -> Graph:
    """Generate (and cache) the stand-in graph for *name* (case-insensitive)."""
    key = name.upper()
    if key not in DATASETS:
        raise GraphError(
            f"unknown dataset {name!r}; available: {', '.join(DATASETS)}"
        )
    return _load_cached(key)
