"""Run traces: the workload record an engine hands to the scheduler.

The OPT engines execute the *real* algorithm against the page store and,
alongside the actual triangles, record what each iteration did: which
pages the internal fill read (and which were buffer hits — the paper's
``Δin``), the per-page CPU cost of the internal triangulation (Algorithm 5
parallelizes "on the basis of pages", so a page is the unit of
parallelism), and the ordered external read sequence with each page's
callback CPU cost.

A trace is engine-agnostic: the discrete-event scheduler replays it under
any core count / morphing / serial configuration, which is how one
algorithm run yields a whole speed-up curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExternalRead", "IterationTrace", "RunTrace"]


@dataclass
class ExternalRead:
    """One external-area page request, in issue order."""

    pid: int
    cpu_ops: int
    buffered: bool = False  # satisfied from the buffer pool, no device read
    #: Extra device seconds this read suffered beyond the nominal page
    #: latency: injected fault latency plus retry backoff (zero on clean
    #: runs).  The scheduler extends the read's service time by this.
    delay: float = 0.0

    def to_dict(self) -> dict:
        return {"pid": self.pid, "cpu_ops": self.cpu_ops,
                "buffered": self.buffered, "delay": self.delay}

    @classmethod
    def from_dict(cls, data: dict) -> "ExternalRead":
        return cls(pid=int(data["pid"]), cpu_ops=int(data["cpu_ops"]),
                   buffered=bool(data.get("buffered", False)),
                   delay=float(data.get("delay", 0.0)))


@dataclass
class IterationTrace:
    """Everything one OPT iteration did, in schedulable form."""

    fill_reads: int = 0
    fill_buffered: int = 0
    candidate_ops: int = 0
    internal_page_ops: list[int] = field(default_factory=list)
    external_reads: list[ExternalRead] = field(default_factory=list)
    output_pages: int = 0
    #: Extra device seconds charged to the internal fill by injected
    #: faults (latency spikes + retry backoff on fill reads).
    fill_delay: float = 0.0

    @property
    def internal_ops(self) -> int:
        return sum(self.internal_page_ops)

    @property
    def external_ops(self) -> int:
        return sum(read.cpu_ops for read in self.external_reads)

    @property
    def external_device_reads(self) -> int:
        return sum(1 for read in self.external_reads if not read.buffered)

    @property
    def external_buffered(self) -> int:
        return sum(1 for read in self.external_reads if read.buffered)

    @property
    def fault_delay(self) -> float:
        """Total injected device seconds across fill and external reads."""
        return self.fill_delay + sum(read.delay for read in self.external_reads)

    def to_dict(self) -> dict:
        """Checkpoint-serializable form (see :mod:`repro.core.result_store`)."""
        return {
            "fill_reads": self.fill_reads,
            "fill_buffered": self.fill_buffered,
            "candidate_ops": self.candidate_ops,
            "internal_page_ops": list(self.internal_page_ops),
            "external_reads": [read.to_dict() for read in self.external_reads],
            "output_pages": self.output_pages,
            "fill_delay": self.fill_delay,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationTrace":
        return cls(
            fill_reads=int(data.get("fill_reads", 0)),
            fill_buffered=int(data.get("fill_buffered", 0)),
            candidate_ops=int(data.get("candidate_ops", 0)),
            internal_page_ops=[int(v) for v in data.get("internal_page_ops", [])],
            external_reads=[ExternalRead.from_dict(r)
                            for r in data.get("external_reads", [])],
            output_pages=int(data.get("output_pages", 0)),
            fill_delay=float(data.get("fill_delay", 0.0)),
        )


@dataclass
class RunTrace:
    """The full workload of one disk-based triangulation run."""

    num_pages: int
    m_in: int
    m_ex: int
    iterations: list[IterationTrace] = field(default_factory=list)
    triangles: int = 0
    #: Synchronous external I/O (the MGT mode): the device still streams
    #: at full bandwidth, but CPU work never overlaps it.
    sync_external: bool = False

    @property
    def total_ops(self) -> int:
        """Total CPU operations (intersections only, the parallelizable part)."""
        return sum(it.internal_ops + it.external_ops for it in self.iterations)

    @property
    def total_candidate_ops(self) -> int:
        return sum(it.candidate_ops for it in self.iterations)

    @property
    def total_fill_reads(self) -> int:
        return sum(it.fill_reads for it in self.iterations)

    @property
    def total_fill_buffered(self) -> int:
        """The paper's ``Δin``: internal loads absorbed by buffered pages."""
        return sum(it.fill_buffered for it in self.iterations)

    @property
    def total_external_reads(self) -> int:
        return sum(it.external_device_reads for it in self.iterations)

    @property
    def total_device_reads(self) -> int:
        return self.total_fill_reads + self.total_external_reads

    @property
    def total_fault_delay(self) -> float:
        """Injected device seconds over the whole run (zero when clean)."""
        return sum(it.fault_delay for it in self.iterations)
