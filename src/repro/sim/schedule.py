"""Discrete-event replay of a run trace on simulated cores + FlashSSD.

Given a :class:`~repro.sim.trace.RunTrace` (the measured workload of a
real algorithm execution) and a :class:`~repro.sim.costmodel.CostModel`,
the scheduler reproduces the paper's execution structure:

* **iteration barriers** — Algorithm 3 waits for the internal fill
  (line 8) and for the external triangulation (line 11), so iterations
  are simulated independently and summed;
* **micro overlap** — external page reads are served by the Flash device
  (with ``channels`` internal parallelism) while workers process already
  arrived pages; at most ``m_ex`` requests are outstanding, and finishing
  one page's callback work issues the next request (Algorithm 9);
* **macro overlap** — with ``cores >= 2`` the internal page tasks and the
  external callbacks proceed concurrently on different workers;
* **thread morphing** — when enabled, a worker whose own queue is empty
  steals from the other queue; when disabled, roles are fixed (``cores-1``
  internal workers, one callback worker), reproducing Figure 4's idle
  phases;
* **serial mode** (``OPT_serial``) — one worker, macro overlap disabled
  (all internal work first), micro overlap retained.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.costmodel import CostModel
from repro.sim.trace import ExternalRead, IterationTrace, RunTrace

__all__ = ["IterationTiming", "SimResult", "simulate"]


@dataclass
class IterationTiming:
    """Timing of one simulated iteration."""

    fill_time: float
    elapsed: float
    internal_time: float  # span spent on internal work after the fill
    external_time: float  # span spent on external work after the fill
    internal_busy: float  # summed worker-seconds of internal CPU
    external_busy: float  # summed worker-seconds of external CPU
    device_reads: int


@dataclass
class SimResult:
    """Outcome of replaying a trace under one configuration."""

    elapsed: float
    cores: int
    morphing: bool
    serial: bool
    iterations: list[IterationTiming] = field(default_factory=list)
    cpu_time: float = 0.0  # parallelizable intersection CPU (worker-seconds)
    read_io_time: float = 0.0  # device-seconds spent reading

    @property
    def parallel_fraction(self) -> float:
        """Amdahl parallel fraction: intersection CPU over total elapsed.

        Meaningful when computed on a 1-core result (the paper's ``p``).
        """
        if self.elapsed <= 0:
            return 0.0
        return min(1.0, self.cpu_time / self.elapsed)


_ARRIVE = 0
_FREE = 1


def _stream_time(pages: int, cost: CostModel) -> float:
    """Pipelined bulk-read time: ceil(n / channels) read latencies.

    A single page still costs one full latency — the device's channel
    parallelism cannot split one request.
    """
    if pages <= 0:
        return 0.0
    return -(-pages // cost.channels) * cost.page_read_time


def _simulate_sync_iteration(
    iteration: IterationTrace, cost: CostModel, cores: int,
    tracer=None, t0: float = 0.0, index: int = 0,
) -> IterationTiming:
    """Synchronous external I/O: streamed reads, then CPU, no overlap."""
    fill_io = _stream_time(iteration.fill_reads, cost) + iteration.fill_delay
    candidate_cpu = cost.cpu(iteration.candidate_ops) * cost.candidate_op_factor
    t_fill = fill_io + candidate_cpu
    internal_cpu = cost.cpu(iteration.internal_ops)
    # Injected fault latency (and retry backoff) serializes on the
    # blocking read path: each affected read simply takes longer.
    external_io = _stream_time(iteration.external_device_reads, cost) + sum(
        read.delay for read in iteration.external_reads
    )
    external_cpu = cost.cpu(iteration.external_ops)
    elapsed = t_fill + internal_cpu + external_io + external_cpu
    if tracer is not None:
        if t_fill > 0:
            tracer.complete("fill", t0, t_fill, track="sim/core0")
        if internal_cpu > 0:
            tracer.complete("internal", t0 + t_fill, internal_cpu,
                            track="sim/core0")
        if external_io > 0:
            tracer.complete("read.service", t0 + t_fill + internal_cpu,
                            external_io, track="sim/flash0",
                            pages=iteration.external_device_reads)
        if external_cpu > 0:
            tracer.complete("external", t0 + t_fill + internal_cpu + external_io,
                            external_cpu, track="sim/core0")
        tracer.complete("iteration", t0, elapsed, track="sim/run", index=index)
    return IterationTiming(
        fill_time=t_fill,
        elapsed=elapsed,
        internal_time=internal_cpu,
        external_time=external_io + external_cpu,
        internal_busy=internal_cpu,
        external_busy=external_cpu,
        device_reads=iteration.fill_reads + iteration.external_device_reads,
    )


def _simulate_iteration(
    iteration: IterationTrace,
    m_ex: int,
    cost: CostModel,
    cores: int,
    morphing: bool,
    serial: bool,
    stats: dict | None = None,
    tracer=None,
    t0: float = 0.0,
    index: int = 0,
) -> IterationTiming:
    latency = cost.page_read_time
    fill_io = iteration.fill_reads * latency / cost.channels + iteration.fill_delay
    candidate_cpu = cost.cpu(iteration.candidate_ops) * cost.candidate_op_factor
    t_fill = max(fill_io, candidate_cpu)
    if tracer is not None and t_fill > 0:
        tracer.complete("fill", t0, t_fill, track="sim/core0",
                        reads=iteration.fill_reads,
                        buffered=iteration.fill_buffered)
        if iteration.fill_delay > 0:
            tracer.instant("fault.delay", ts=t0, track="sim/flash0",
                           phase="fill", delay=iteration.fill_delay)

    internal = deque(cost.cpu(ops) for ops in iteration.internal_page_ops)
    pending = deque(iteration.external_reads)
    ready: deque[ExternalRead] = deque()
    heap: list[tuple[float, int, int, object]] = []
    seq = 0
    channel_free = [t_fill] * cost.channels
    device_reads = iteration.fill_reads

    in_flight = 0

    def issue_next(now: float) -> None:
        nonlocal seq, device_reads, in_flight
        if not pending:
            return
        read = pending.popleft()
        in_flight += 1
        if read.buffered:
            if tracer is not None:
                tracer.instant("buffer.hit", ts=t0 + now, track="sim/buffer",
                               pid=read.pid)
            heapq.heappush(heap, (now, seq, _ARRIVE, read))
        else:
            device_reads += 1
            channel = min(range(cost.channels), key=channel_free.__getitem__)
            # read.delay extends the service time: injected fault latency
            # and retry backoff occupy the channel like a slow read would.
            start = max(channel_free[channel], now)
            done = start + latency + read.delay
            channel_free[channel] = done
            if tracer is not None:
                track = f"sim/flash{channel}"
                tracer.instant("read.submit", ts=t0 + now, track=track,
                               pid=read.pid, req=f"{index}:{seq}")
                tracer.complete("read.service", t0 + start, done - start,
                                track=track, pid=read.pid, req=f"{index}:{seq}")
                if read.delay > 0:
                    tracer.instant("fault.delay", ts=t0 + start, track=track,
                                   pid=read.pid, delay=read.delay)
            heapq.heappush(heap, (done, seq, _ARRIVE, read))
        seq += 1

    for _ in range(min(m_ex, len(pending))):
        issue_next(t_fill)

    # Worker roles: serial = one worker draining internal before external;
    # parallel = one callback worker, cores-1 internal workers.
    if serial or cores == 1:
        roles = ["serial"]
    else:
        roles = ["int"] * (cores - 1) + ["ext"]
    idle: list[int] = list(range(len(roles)))
    internal_busy = external_busy = 0.0
    internal_finish = external_finish = t_fill
    now = t_fill

    def morph(worker: int, to: str) -> None:
        if stats is not None:
            stats["morph_events"] = stats.get("morph_events", 0) + 1
        if tracer is not None:
            tracer.instant("morph", ts=t0 + now, track=f"sim/core{worker}",
                           to=to)

    def pick(worker: int) -> tuple[str, float, ExternalRead | None] | None:
        role = roles[worker]
        if role == "serial":
            if internal:
                return "int", internal.popleft(), None
            if ready:
                read = ready.popleft()
                return "ext", cost.cpu(read.cpu_ops), read
            return None
        if role == "int":
            if internal:
                return "int", internal.popleft(), None
            if morphing and ready:
                morph(worker, "ext")
                read = ready.popleft()
                return "ext", cost.cpu(read.cpu_ops), read
            return None
        if ready:
            read = ready.popleft()
            return "ext", cost.cpu(read.cpu_ops), read
        # The callback thread morphs into a main thread only when the
        # external stream has *terminated* (paper Section 3.4) — stealing
        # internal work while reads are in flight would stall the
        # issue-on-completion pipeline of Algorithm 9.
        if morphing and internal and not pending and in_flight == 0:
            morph(worker, "int")
            return "int", internal.popleft(), None
        return None

    guard = 0
    limit = 10 * (len(internal) + len(pending) + 4) + 1000
    while True:
        guard += 1
        if guard > limit and not heap:
            raise SimulationError("scheduler failed to converge")
        # Assign every idle worker a task available *now*.
        assigned = True
        while assigned and idle:
            assigned = False
            for worker in list(idle):
                task = pick(worker)
                if task is None:
                    continue
                kind, duration, read = task
                done = now + duration
                if kind == "int":
                    internal_busy += duration
                else:
                    external_busy += duration
                if tracer is not None and duration > 0:
                    if kind == "int":
                        tracer.complete("internal", t0 + now, duration,
                                        track=f"sim/core{worker}")
                    else:
                        tracer.complete("external", t0 + now, duration,
                                        track=f"sim/core{worker}",
                                        pid=read.pid)
                heapq.heappush(heap, (done, seq, _FREE, (worker, kind)))
                seq += 1
                idle.remove(worker)
                assigned = True
        if not heap:
            if internal or ready or pending:
                raise SimulationError(
                    "work remains but no event can make progress"
                )
            break
        now, _, event, payload = heapq.heappop(heap)
        if event == _ARRIVE:
            in_flight -= 1
            ready.append(payload)  # type: ignore[arg-type]
        else:
            worker, kind = payload  # type: ignore[misc]
            idle.append(worker)
            if kind == "int":
                internal_finish = max(internal_finish, now)
            else:
                external_finish = max(external_finish, now)
                issue_next(now)

    elapsed = max(internal_finish, external_finish, t_fill)
    # Asynchronous output writes overlap compute; they only extend the
    # iteration when the write device cannot keep up.
    if iteration.output_pages:
        write_time = t_fill + iteration.output_pages * cost.page_write_time
        elapsed = max(elapsed, write_time)
    if tracer is not None:
        tracer.complete("iteration", t0, elapsed, track="sim/run", index=index)
    return IterationTiming(
        fill_time=t_fill,
        elapsed=elapsed,
        internal_time=max(0.0, internal_finish - t_fill),
        external_time=max(0.0, external_finish - t_fill),
        internal_busy=internal_busy,
        external_busy=external_busy,
        device_reads=device_reads,
    )


def simulate(
    trace: RunTrace,
    cost: CostModel,
    *,
    cores: int = 1,
    morphing: bool = True,
    serial: bool = False,
    report=None,
    tracer=None,
) -> SimResult:
    """Replay *trace* under the given configuration.

    ``serial=True`` forces one core and disables macro overlap, yielding
    the paper's ``OPT_serial``.  Returns elapsed simulated seconds plus
    per-iteration timings (Figure 4's raw data).

    With a :class:`~repro.obs.RunReport` *report*, the simulated timeline
    is mapped into the report's span tree (one ``simulate`` span with
    per-iteration ``fill`` / ``internal`` / ``external`` children, all in
    simulated seconds) and the scheduler's counters — device reads and
    thread-morphing events — land in its registry.

    With an :class:`~repro.obs.EventTracer` *tracer* (use ``clock="sim"``),
    every scheduling decision lands on the event timeline: per-worker
    ``internal`` / ``external`` slices on ``sim/coreN`` tracks, device
    service on ``sim/flashN`` tracks, ``read.submit`` / ``buffer.hit`` /
    ``morph`` / ``fault.delay`` instants, and one ``iteration`` slice per
    barrier on ``sim/run``.  The event stream is a pure function of the
    trace and configuration — byte-identical across runs per seed.
    """
    if cores < 1:
        raise SimulationError("cores must be >= 1")
    if serial:
        cores = 1
    if tracer is not None and not tracer.enabled:
        tracer = None
    stats: dict = {}
    timings = []
    offset = 0.0
    for index, iteration in enumerate(trace.iterations):
        if trace.sync_external:
            timing = _simulate_sync_iteration(iteration, cost, cores,
                                              tracer, offset, index)
        else:
            timing = _simulate_iteration(iteration, trace.m_ex, cost, cores,
                                         morphing, serial, stats,
                                         tracer, offset, index)
        timings.append(timing)
        offset += timing.elapsed
    result = SimResult(
        elapsed=sum(t.elapsed for t in timings),
        cores=cores,
        morphing=morphing,
        serial=serial,
        iterations=timings,
        cpu_time=cost.cpu(trace.total_ops),
        read_io_time=cost.read_io(trace.total_device_reads),
    )
    if report is not None:
        _record(result, timings, stats, report)
        report.gauge("sim.fault_delay").set(trace.total_fault_delay)
    return result


def _record(result: SimResult, timings: list[IterationTiming], stats: dict,
            report) -> None:
    """Map one replay into *report*: simulated span tree plus counters."""
    parent = report.spans.add(
        "simulate", sim_elapsed=result.elapsed, cores=result.cores,
        morphing=result.morphing, serial=result.serial,
    )
    for index, timing in enumerate(timings):
        iteration = report.spans.add("iteration", parent=parent,
                                     sim_elapsed=timing.elapsed, index=index)
        report.spans.add("fill", parent=iteration,
                         sim_elapsed=timing.fill_time)
        report.spans.add("internal-triangulation", parent=iteration,
                         sim_elapsed=timing.internal_time)
        report.spans.add("external-triangulation", parent=iteration,
                         sim_elapsed=timing.external_time)
    report.counter("sim.device_reads").inc(
        sum(t.device_reads for t in timings)
    )
    report.counter("sim.morph.events").inc(stats.get("morph_events", 0))
    report.gauge("sim.elapsed").set(result.elapsed)
    report.gauge("sim.cpu_time").set(result.cpu_time)
    report.gauge("sim.read_io_time").set(result.read_io_time)
