"""Discrete-event simulation of multi-core CPU + FlashSSD execution."""

from repro.sim.costmodel import DEFAULT_COST_MODEL, CostModel
from repro.sim.schedule import IterationTiming, SimResult, simulate
from repro.sim.trace import ExternalRead, IterationTrace, RunTrace
from repro.sim.trace_io import load_trace, save_trace

__all__ = [
    "DEFAULT_COST_MODEL",
    "CostModel",
    "ExternalRead",
    "IterationTiming",
    "IterationTrace",
    "RunTrace",
    "SimResult",
    "simulate",
    "save_trace",
    "load_trace",
]
