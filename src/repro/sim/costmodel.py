"""Cost model unifying CPU and I/O in simulated seconds.

The paper's analysis (Section 3.3) expresses I/O in pages and CPU in
intersection operations, linked by the constant ``c`` = (cost of reading
one page) / (cost of one CPU operation).  The model below fixes both unit
costs; its defaults are calibrated so that triangulation is CPU bound
(CPU : I/O roughly 5:1 .. 25:1 across the stand-in datasets), matching the
regime the paper reports for a FlashSSD-equipped PC.

``channels`` models the FlashSSD's internal parallelism: the device can
serve that many outstanding page reads concurrently ("full parallelism of
FlashSSD I/O").
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Unit costs for the simulated execution.

    Attributes
    ----------
    page_read_time:
        Seconds to serve one page read (4 KiB random read on the Flash).
    page_write_time:
        Seconds to persist one page on the output device.
    op_time:
        Seconds per CPU operation (one intersection probe).
    channels:
        Number of page reads the Flash device serves concurrently.
    """

    page_read_time: float = 50e-6
    page_write_time: float = 60e-6
    op_time: float = 100e-9
    channels: int = 8
    #: Candidate identification scans records linearly; one scanned
    #: neighbor costs this fraction of a full intersection probe.
    candidate_op_factor: float = 0.2

    def __post_init__(self) -> None:
        if self.page_read_time <= 0 or self.op_time <= 0 or self.page_write_time <= 0:
            raise ConfigurationError("cost model times must be positive")
        if self.channels < 1:
            raise ConfigurationError("channels must be >= 1")
        if self.candidate_op_factor < 0:
            raise ConfigurationError("candidate_op_factor must be >= 0")

    @property
    def c(self) -> float:
        """The paper's constant ``c``: page-read cost in CPU operations."""
        return self.page_read_time / self.op_time

    @property
    def c_effective(self) -> float:
        """``c`` per page when the device streams on all channels.

        The analytic cost equations use this so they describe the same
        machine the discrete-event scheduler simulates.
        """
        return self.c / self.channels

    def cpu(self, ops: int) -> float:
        """Seconds of CPU time for *ops* operations."""
        return ops * self.op_time

    def read_io(self, pages: int) -> float:
        """Seconds of device time to read *pages* pages (single channel)."""
        return pages * self.page_read_time

    def with_(self, **overrides) -> "CostModel":
        """A copy of the model with *overrides* applied."""
        return replace(self, **overrides)


DEFAULT_COST_MODEL = CostModel()
