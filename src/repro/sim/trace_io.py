"""Run-trace serialization.

A :class:`~repro.sim.trace.RunTrace` captures everything needed to replay
a run under new machine configurations; persisting it decouples the
(expensive) algorithm execution from the (cheap) scheduling experiments —
e.g. sweep core counts tomorrow without re-triangulating today.

The format is plain JSON: stable, diffable, and small (traces hold
per-page op counts, not triangles).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import SimulationError
from repro.sim.trace import ExternalRead, IterationTrace, RunTrace

__all__ = ["load_trace", "save_trace", "trace_to_dict", "trace_from_dict"]

_FORMAT_VERSION = 1


def trace_to_dict(trace: RunTrace) -> dict:
    """Encode *trace* as JSON-serializable primitives."""
    return {
        "version": _FORMAT_VERSION,
        "num_pages": trace.num_pages,
        "m_in": trace.m_in,
        "m_ex": trace.m_ex,
        "sync_external": trace.sync_external,
        "triangles": trace.triangles,
        "iterations": [
            {
                "fill_reads": it.fill_reads,
                "fill_buffered": it.fill_buffered,
                "candidate_ops": it.candidate_ops,
                "internal_page_ops": list(it.internal_page_ops),
                "external_reads": [
                    [read.pid, read.cpu_ops, int(read.buffered)]
                    for read in it.external_reads
                ],
                "output_pages": it.output_pages,
            }
            for it in trace.iterations
        ],
    }


def trace_from_dict(payload: dict) -> RunTrace:
    """Decode a trace written by :func:`trace_to_dict`."""
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise SimulationError(f"unsupported trace format version {version!r}")
    try:
        iterations = [
            IterationTrace(
                fill_reads=entry["fill_reads"],
                fill_buffered=entry["fill_buffered"],
                candidate_ops=entry["candidate_ops"],
                internal_page_ops=list(entry["internal_page_ops"]),
                external_reads=[
                    ExternalRead(pid=pid, cpu_ops=ops, buffered=bool(buffered))
                    for pid, ops, buffered in entry["external_reads"]
                ],
                output_pages=entry.get("output_pages", 0),
            )
            for entry in payload["iterations"]
        ]
        return RunTrace(
            num_pages=payload["num_pages"],
            m_in=payload["m_in"],
            m_ex=payload["m_ex"],
            iterations=iterations,
            triangles=payload.get("triangles", 0),
            sync_external=payload.get("sync_external", False),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SimulationError(f"malformed trace payload: {exc}") from exc


def save_trace(trace: RunTrace, path: str | Path) -> None:
    """Write *trace* as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace)), encoding="utf-8")


def load_trace(path: str | Path) -> RunTrace:
    """Load a trace written by :func:`save_trace`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise SimulationError(f"{path}: not valid JSON") from exc
    return trace_from_dict(payload)
