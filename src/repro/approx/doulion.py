"""DOULION — triangle counting with a coin (Tsourakakis et al., KDD'09).

Keep each edge independently with probability *p*, count triangles
exactly on the sparsified graph, and scale by ``1 / p^3``.  The estimate
is unbiased; its variance shrinks as *p* grows, trading accuracy against
the (roughly ``p^2``-scaled) counting work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.builder import from_edges
from repro.graph.graph import Graph
from repro.memory.edge_iterator import edge_iterator

__all__ = ["DoulionEstimate", "doulion"]


@dataclass(frozen=True)
class DoulionEstimate:
    """A DOULION run: the estimate and the work it cost."""

    estimate: float
    sampled_triangles: int
    sampled_edges: int
    probability: float
    cpu_ops: int


def doulion(graph: Graph, probability: float, *, seed: int = 0) -> DoulionEstimate:
    """Estimate the triangle count of *graph* with edge sampling.

    Parameters
    ----------
    probability:
        Edge-retention probability ``p`` in (0, 1]; the estimator returns
        ``triangles(sparsified) / p^3``.
    """
    if not 0.0 < probability <= 1.0:
        raise ConfigurationError("retention probability must be in (0, 1]")
    edges = graph.edge_array()
    rng = np.random.default_rng(seed)
    keep = rng.random(len(edges)) < probability
    sampled = from_edges(
        (tuple(edge) for edge in edges[keep]), num_vertices=graph.num_vertices
    )
    result = edge_iterator(sampled)
    return DoulionEstimate(
        estimate=result.triangles / probability**3,
        sampled_triangles=result.triangles,
        sampled_edges=sampled.num_edges,
        probability=probability,
        cpu_ops=result.cpu_ops,
    )
