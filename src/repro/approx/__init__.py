"""Approximate triangle counting — the paper's Section 4 alternatives.

The paper positions exact disk-based triangulation against the earlier
approximation literature (Doulion's sparsification, streaming wedge
estimators), noting their applications are "significantly limited"
because they only estimate the *count*.  The implementations here make
that comparison concrete: both estimators run orders of magnitude less
work than exact listing, with quantified variance — and neither can name
a single triangle.
"""

from repro.approx.doulion import doulion
from repro.approx.wedge import wedge_sampling

__all__ = ["doulion", "wedge_sampling"]
