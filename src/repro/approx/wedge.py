"""Wedge-sampling triangle estimation (the streaming-literature approach).

The streaming estimators the paper cites ([1, 9, 13]) reduce triangle
counting to estimating the fraction of *closed wedges* (paths of length
two whose endpoints are adjacent): with ``W`` total wedges and closure
fraction ``kappa``, the triangle count is ``kappa * W / 3``.  Sampling
wedges uniformly — pick a center proportional to ``C(deg, 2)``, then a
random neighbor pair — gives an unbiased closure estimate from a tiny
number of adjacency probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import sqrt

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.graph import Graph

__all__ = ["WedgeEstimate", "wedge_sampling"]


@dataclass(frozen=True)
class WedgeEstimate:
    """A wedge-sampling run: estimate, closure rate, and standard error."""

    estimate: float
    closed_fraction: float
    total_wedges: int
    samples: int
    standard_error: float

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """~95% interval around the estimate (normal approximation)."""
        margin = 1.96 * self.standard_error
        return (max(0.0, self.estimate - margin), self.estimate + margin)


def wedge_sampling(graph: Graph, samples: int, *, seed: int = 0) -> WedgeEstimate:
    """Estimate the triangle count from *samples* uniform random wedges."""
    if samples < 1:
        raise ConfigurationError("need at least one wedge sample")
    degrees = graph.degrees().astype(np.int64)
    wedges_per_vertex = degrees * (degrees - 1) // 2
    total_wedges = int(wedges_per_vertex.sum())
    if total_wedges == 0:
        return WedgeEstimate(0.0, 0.0, 0, samples, 0.0)

    rng = np.random.default_rng(seed)
    cumulative = np.cumsum(wedges_per_vertex)
    picks = rng.integers(0, total_wedges, size=samples)
    centers = np.searchsorted(cumulative, picks, side="right")

    closed = 0
    for center in centers:
        row = graph.neighbors(int(center))
        i, j = rng.choice(len(row), size=2, replace=False)
        closed += int(graph.has_edge(int(row[i]), int(row[j])))

    fraction = closed / samples
    estimate = fraction * total_wedges / 3.0
    # Binomial standard error propagated through the scaling.
    se_fraction = sqrt(max(fraction * (1.0 - fraction), 1e-12) / samples)
    return WedgeEstimate(
        estimate=estimate,
        closed_fraction=fraction,
        total_wedges=total_wedges,
        samples=samples,
        standard_error=se_fraction * total_wedges / 3.0,
    )
