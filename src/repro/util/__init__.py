"""Shared utilities: intersection kernels, orderings, counters, formatting."""

from repro.util.intersect import (
    IntersectionKernel,
    gallop_intersect,
    hash_intersect,
    intersect_count_ops,
    intersect_sorted,
    merge_intersect,
    resolve_kernel,
)
from repro.util.opcount import OpCounter
from repro.util.tables import format_table

__all__ = [
    "IntersectionKernel",
    "OpCounter",
    "format_table",
    "gallop_intersect",
    "hash_intersect",
    "intersect_count_ops",
    "intersect_sorted",
    "merge_intersect",
    "resolve_kernel",
]
