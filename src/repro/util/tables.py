"""Plain-text table formatting for benchmark reports.

The benchmark harness reprints each paper table/figure as a fixed-width
text table; this helper keeps all of them visually consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render *rows* under *headers* as an aligned text table.

    Numeric cells are right-aligned and humanized; the first column is
    left-aligned (it usually names the method or dataset).
    """
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
