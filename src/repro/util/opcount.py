"""Operation counters shared by engines and the cost model.

Since the observability layer landed, :class:`OpCounter` is a thin facade
over a :class:`~repro.obs.MetricsRegistry`: every count lives in a
registry counter (``cpu.ops``, ``io.pages_read``, ``io.pages_buffered``,
``io.pages_written``, ``triangles.total``, and per-phase
``cpu.ops.phase{phase=...}``), so engines that already carry a registry
can hand it to the counter and have one export path.  The historical
attribute API (``counter.cpu_ops`` etc.) is preserved on top.
"""

from __future__ import annotations

from repro.obs import MetricsRegistry

__all__ = ["OpCounter"]

_CPU_OPS = "cpu.ops"
_CPU_OPS_PHASE = "cpu.ops.phase"
_PAGES_READ = "io.pages_read"
_PAGES_WRITTEN = "io.pages_written"
_PAGES_BUFFERED = "io.pages_buffered"
_TRIANGLES = "triangles.total"


class OpCounter:
    """Accumulates CPU operation and I/O page counts for one run.

    The unit of ``cpu_ops`` is one intersection probe / hash membership
    test, matching the paper's cost measure (Eq. 3).  I/O is counted in
    pages, separated into reads actually served by the device and reads
    absorbed by the buffer pool (the paper's saved I/O ``Δin``).
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()

    # -- recording ----------------------------------------------------------

    def add_ops(self, ops: int, phase: str | None = None) -> None:
        """Add *ops* CPU operations, optionally attributed to *phase*."""
        self.registry.counter(_CPU_OPS).inc(ops)
        if phase is not None:
            self.registry.counter(_CPU_OPS_PHASE, phase=phase).inc(ops)

    def add_read(self, pages: int = 1, buffered: bool = False) -> None:
        """Record a page-read request; *buffered* reads cost no device I/O."""
        if buffered:
            self.registry.counter(_PAGES_BUFFERED).inc(pages)
        else:
            self.registry.counter(_PAGES_READ).inc(pages)

    def add_write(self, pages: int = 1) -> None:
        """Record *pages* written to the device."""
        self.registry.counter(_PAGES_WRITTEN).inc(pages)

    def merge(self, other: "OpCounter") -> None:
        """Fold *other*'s counts into this counter."""
        self.registry.counter(_CPU_OPS).inc(other.cpu_ops)
        self.registry.counter(_PAGES_READ).inc(other.pages_read)
        self.registry.counter(_PAGES_WRITTEN).inc(other.pages_written)
        self.registry.counter(_PAGES_BUFFERED).inc(other.pages_buffered)
        self.registry.counter(_TRIANGLES).inc(other.triangles)
        for phase, ops in other.per_phase.items():
            self.registry.counter(_CPU_OPS_PHASE, phase=phase).inc(ops)

    # -- attribute API (backed by the registry) -----------------------------

    def _set(self, name: str, value: int) -> None:
        counter = self.registry.counter(name)
        counter.inc(value - counter.value)  # counters only grow

    @property
    def cpu_ops(self) -> int:
        return self.registry.counter(_CPU_OPS).value

    @cpu_ops.setter
    def cpu_ops(self, value: int) -> None:
        self._set(_CPU_OPS, value)

    @property
    def pages_read(self) -> int:
        return self.registry.counter(_PAGES_READ).value

    @pages_read.setter
    def pages_read(self, value: int) -> None:
        self._set(_PAGES_READ, value)

    @property
    def pages_written(self) -> int:
        return self.registry.counter(_PAGES_WRITTEN).value

    @pages_written.setter
    def pages_written(self, value: int) -> None:
        self._set(_PAGES_WRITTEN, value)

    @property
    def pages_buffered(self) -> int:
        return self.registry.counter(_PAGES_BUFFERED).value

    @pages_buffered.setter
    def pages_buffered(self, value: int) -> None:
        self._set(_PAGES_BUFFERED, value)

    @property
    def triangles(self) -> int:
        return self.registry.counter(_TRIANGLES).value

    @triangles.setter
    def triangles(self, value: int) -> None:
        self._set(_TRIANGLES, value)

    @property
    def per_phase(self) -> dict[str, int]:
        """Per-phase CPU ops as a plain dict (a copy, not a live view)."""
        out: dict[str, int] = {}
        for metric in self.registry.instruments():
            if metric.kind == "counter" and metric.name == _CPU_OPS_PHASE:
                out[metric.labels["phase"]] = metric.value
        return out

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the scalar counters."""
        return {
            "cpu_ops": self.cpu_ops,
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "pages_buffered": self.pages_buffered,
            "triangles": self.triangles,
        }
