"""Operation counters shared by engines and the cost model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounter:
    """Accumulates CPU operation and I/O page counts for one run.

    The unit of ``cpu_ops`` is one intersection probe / hash membership
    test, matching the paper's cost measure (Eq. 3).  I/O is counted in
    pages, separated into reads actually served by the device and reads
    absorbed by the buffer pool (the paper's saved I/O ``Δin``).
    """

    cpu_ops: int = 0
    pages_read: int = 0
    pages_written: int = 0
    pages_buffered: int = 0  # read requests satisfied from the buffer (Δin)
    triangles: int = 0
    per_phase: dict[str, int] = field(default_factory=dict)

    def add_ops(self, ops: int, phase: str | None = None) -> None:
        """Add *ops* CPU operations, optionally attributed to *phase*."""
        self.cpu_ops += ops
        if phase is not None:
            self.per_phase[phase] = self.per_phase.get(phase, 0) + ops

    def add_read(self, pages: int = 1, buffered: bool = False) -> None:
        """Record a page-read request; *buffered* reads cost no device I/O."""
        if buffered:
            self.pages_buffered += pages
        else:
            self.pages_read += pages

    def add_write(self, pages: int = 1) -> None:
        """Record *pages* written to the device."""
        self.pages_written += pages

    def merge(self, other: "OpCounter") -> None:
        """Fold *other*'s counts into this counter."""
        self.cpu_ops += other.cpu_ops
        self.pages_read += other.pages_read
        self.pages_written += other.pages_written
        self.pages_buffered += other.pages_buffered
        self.triangles += other.triangles
        for phase, ops in other.per_phase.items():
            self.per_phase[phase] = self.per_phase.get(phase, 0) + ops

    def snapshot(self) -> dict[str, int]:
        """Return a plain-dict copy of the scalar counters."""
        return {
            "cpu_ops": self.cpu_ops,
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "pages_buffered": self.pages_buffered,
            "triangles": self.triangles,
        }
