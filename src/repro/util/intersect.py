"""Sorted-list intersection kernels with operation accounting.

Triangulation cost in the paper is measured in adjacency-list intersection
operations: intersecting ``n_succ(u)`` with ``n_succ(v)`` using an O(1) hash
costs ``min(|n_succ(u)|, |n_succ(v)|)`` probes (Eq. 3 of the paper).  The
fast path used by the engines is :func:`intersect_sorted`, which delegates
to ``numpy.intersect1d`` and *charges* the analytic probe count via
:func:`intersect_count_ops` — this keeps the Python implementation fast
while the cost model matches the paper exactly.

Three reference kernels (merge, hash, gallop) are provided for the kernel
ablation benchmark and as executable specifications; they return their own
measured operation counts.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

import numpy as np

from repro.obs import MetricsRegistry

__all__ = [
    "ADAPTIVE_BITMAP_SKEW",
    "ADAPTIVE_GALLOP_SKEW",
    "IntersectionKernel",
    "adaptive_intersect",
    "adaptive_intersect_detail",
    "gallop_intersect",
    "hash_intersect",
    "intersect_count_ops",
    "intersect_sorted",
    "merge_intersect",
    "resolve_kernel",
]


#: Relative cost of one random hash membership probe versus one step of a
#: cache-friendly sorted intersection.  The vertex-iterator's edge checks
#: are random probes; charging them double reproduces the paper's
#: observation that VertexIterator≻ runs ~20% slower than EdgeIterator≻
#: despite equal asymptotic complexity (Section 5.3).
HASH_PROBE_COST = 2


class IntersectionKernel(str, Enum):
    """Selectable intersection strategies for the ablation study."""

    NUMPY = "numpy"
    MERGE = "merge"
    HASH = "hash"
    GALLOP = "gallop"
    ADAPTIVE = "adaptive"


def intersect_count_ops(len_a: int, len_b: int) -> int:
    """Analytic probe count for intersecting two sorted lists via hashing.

    This is the paper's cost measure ``min(|a|, |b|)`` (Eq. 3); both the
    cost analysis (Section 3.3) and the simulated engines charge this.
    """
    return min(len_a, len_b)


def intersect_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Intersect two sorted, duplicate-free integer arrays.

    Returns a sorted array of the common elements.  This is the hot path;
    it assumes (and does not validate) sortedness.
    """
    if len(a) == 0 or len(b) == 0:
        return np.empty(0, dtype=a.dtype if len(a) else b.dtype)
    return np.intersect1d(a, b, assume_unique=True)


def merge_intersect(a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
    """Textbook two-pointer merge intersection.

    Returns ``(result, ops)`` where ``ops`` counts element comparisons.
    """
    result: list[int] = []
    i = j = ops = 0
    len_a, len_b = len(a), len(b)
    while i < len_a and j < len_b:
        ops += 1
        if a[i] == b[j]:
            result.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return result, ops


def hash_intersect(a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
    """Hash-probe intersection: probe the shorter list into the longer set.

    Returns ``(result, ops)`` where ``ops`` counts hash probes — this is
    exactly ``min(|a|, |b|)``, the paper's cost measure.  The result is
    sorted (inputs are sorted, and we scan the shorter input in order).
    """
    if len(a) > len(b):
        a, b = b, a
    lookup = set(b)
    result = [x for x in a if x in lookup]
    return result, len(a)


def gallop_intersect(a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
    """Galloping (exponential search) intersection.

    Efficient when ``len(a) << len(b)``; used by the kernel ablation.
    Returns ``(result, ops)`` where ``ops`` counts comparisons.
    """
    if len(a) > len(b):
        a, b = b, a
    result: list[int] = []
    ops = 0
    lo = 0
    len_b = len(b)
    for x in a:
        # Gallop forward to bracket x, then binary search the bracket.
        step = 1
        hi = lo
        while hi < len_b and b[hi] < x:
            ops += 1
            lo = hi
            hi += step
            step *= 2
        hi = min(hi, len_b)
        while lo < hi:
            ops += 1
            mid = (lo + hi) // 2
            if b[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        if lo < len_b and b[lo] == x:
            result.append(x)
            lo += 1
        ops += 1
    return result, ops


#: Pruned ``|longer| / |shorter|`` skew at or above which per-element
#: binary probing (galloping) beats a linear pass over the longer list.
ADAPTIVE_GALLOP_SKEW = 16

#: Lower edge of the mid-skew band the dense-mask path handles; below
#: it the lists are comparable and the merge path wins.
ADAPTIVE_BITMAP_SKEW = 4

_EMPTY = np.empty(0, dtype=np.int64)


def adaptive_intersect_detail(
    a: np.ndarray,
    b: np.ndarray,
    mask: np.ndarray | None = None,
) -> tuple[np.ndarray, int, str]:
    """AOT-style adaptive intersection: ``(common, ops, branch)``.

    Both lists are first *range-pruned* — each restricted to the other's
    ``[min, max]`` span with two binary searches — and the pair is
    charged the Eq. 3 min over the **pruned** lists: ``min(|a'|, |b'|)``,
    or ``0`` when the spans are disjoint.  Pruning is why the adaptive
    kernel's bill is ≤ the hash kernel's ``min(|a|, |b|)`` on every pair
    and strictly below it whenever successor ranges only partially
    overlap (the common case under locality-aware orderings).

    The data path is then picked from the pruned skew ratio: ``gallop``
    (vectorized ``searchsorted``) at or above
    :data:`ADAPTIVE_GALLOP_SKEW`, the dense-mask ``bitmap`` path in the
    :data:`ADAPTIVE_BITMAP_SKEW` band, ``merge`` (``np.intersect1d``)
    for comparable lists; degenerate pairs short-circuit as ``empty`` /
    ``disjoint``.  The branch never affects the charge — only ops/sec —
    so op totals stay data-path independent.

    *mask* is an optional reusable boolean scratch array covering every
    vertex id (the engine binding owns one per graph); without it the
    bitmap band allocates a throwaway mask sized to the pruned span.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if len(a) == 0 or len(b) == 0:
        return _EMPTY, 0, "empty"
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    # Range-prune each side to the other's [min, max] span.
    lo = int(np.searchsorted(longer, shorter[0], side="left"))
    hi = int(np.searchsorted(longer, shorter[-1], side="right"))
    longer = longer[lo:hi]
    if len(longer) == 0:
        return _EMPTY, 0, "disjoint"
    lo = int(np.searchsorted(shorter, longer[0], side="left"))
    hi = int(np.searchsorted(shorter, longer[-1], side="right"))
    shorter = shorter[lo:hi]
    if len(shorter) == 0:
        return _EMPTY, 0, "disjoint"
    if len(shorter) > len(longer):
        shorter, longer = longer, shorter
    ops = len(shorter)  # Eq. 3 min-charge over the pruned pair
    ratio = len(longer) // len(shorter)
    if ratio >= ADAPTIVE_GALLOP_SKEW:
        positions = np.searchsorted(longer, shorter)
        positions = np.minimum(positions, len(longer) - 1)
        common = shorter[longer[positions] == shorter]
        return common, ops, "gallop"
    if ratio >= ADAPTIVE_BITMAP_SKEW:
        scratch = mask
        if scratch is None:
            scratch = np.zeros(int(longer[-1]) + 1, dtype=bool)
        scratch[longer] = True
        common = shorter[scratch[shorter]]
        scratch[longer] = False
        return common, ops, "bitmap"
    return np.intersect1d(shorter, longer, assume_unique=True), ops, "merge"


def adaptive_intersect(a: Sequence[int], b: Sequence[int]) -> tuple[list[int], int]:
    """Reference-kernel shape for the adaptive strategy: ``(result, ops)``."""
    common, ops, _branch = adaptive_intersect_detail(
        np.asarray(a, dtype=np.int64), np.asarray(b, dtype=np.int64))
    return common.tolist(), ops


_KERNELS = {
    IntersectionKernel.MERGE: merge_intersect,
    IntersectionKernel.HASH: hash_intersect,
    IntersectionKernel.GALLOP: gallop_intersect,
    IntersectionKernel.ADAPTIVE: adaptive_intersect,
}


def resolve_kernel(kernel: IntersectionKernel | str,
                   registry: MetricsRegistry | None = None):
    """Return the ``(result, ops)`` kernel callable for *kernel*.

    ``IntersectionKernel.NUMPY`` resolves to a wrapper around
    :func:`intersect_sorted` that charges the analytic op count.  With a
    *registry*, every call additionally folds its op count into the
    ``intersect.ops{kernel=...}`` counter (and bumps ``intersect.calls``),
    so kernel-level CPU cost shows up in run reports without any caller
    bookkeeping.
    """
    kernel = IntersectionKernel(kernel)
    if kernel is IntersectionKernel.NUMPY:

        def base(a, b):
            a_arr = np.asarray(a, dtype=np.int64)
            b_arr = np.asarray(b, dtype=np.int64)
            result = intersect_sorted(a_arr, b_arr)
            return list(result), intersect_count_ops(len(a_arr), len(b_arr))

    else:
        base = _KERNELS[kernel]
    if registry is None:
        return base
    ops_counter = registry.counter("intersect.ops", kernel=kernel.value)
    calls_counter = registry.counter("intersect.calls", kernel=kernel.value)

    def counted(a, b):
        result, ops = base(a, b)
        ops_counter.inc(ops)
        calls_counter.inc()
        return result, ops

    return counted
