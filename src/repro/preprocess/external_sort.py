"""External merge sort for edge streams.

Preparing a billion-edge graph for OPT (dedup, symmetrize, degree-order,
pack into pages) cannot hold the edge list in memory; the standard
database answer is an external merge sort: consume the input in bounded
chunks, sort each chunk into a *run file*, then k-way merge the runs.

Runs are flat little-endian ``u32`` pair files, so a run of ``n`` edges
is exactly ``8 n`` bytes and merging streams it sequentially.
"""

from __future__ import annotations

import heapq
import struct
from pathlib import Path
from typing import Iterable, Iterator

from repro.errors import StorageError

__all__ = ["external_sort_edges", "merge_runs", "read_run", "write_run"]

_PAIR = struct.Struct("<II")


def write_run(path: Path, edges: list[tuple[int, int]]) -> None:
    """Write one sorted run file."""
    with path.open("wb") as handle:
        for u, v in edges:
            handle.write(_PAIR.pack(u, v))


def read_run(path: Path, *, buffer_edges: int = 4096) -> Iterator[tuple[int, int]]:
    """Stream a run file back as ``(u, v)`` pairs."""
    with path.open("rb") as handle:
        while True:
            blob = handle.read(_PAIR.size * buffer_edges)
            if not blob:
                return
            if len(blob) % _PAIR.size:
                raise StorageError(f"{path}: truncated run file")
            for offset in range(0, len(blob), _PAIR.size):
                yield _PAIR.unpack_from(blob, offset)


def external_sort_edges(
    edges: Iterable[tuple[int, int]],
    work_dir: str | Path,
    *,
    chunk_edges: int = 65536,
) -> list[Path]:
    """Phase 1: split *edges* into sorted, deduplicated run files.

    Each run holds at most *chunk_edges* edges — the memory bound.  Edges
    are canonicalized to ``(min, max)`` and self loops dropped, so the
    merged output is a simple undirected edge list.
    """
    if chunk_edges < 1:
        raise StorageError("chunk_edges must be positive")
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    runs: list[Path] = []
    chunk: list[tuple[int, int]] = []

    def flush() -> None:
        if not chunk:
            return
        chunk.sort()
        deduped = [chunk[0]]
        for edge in chunk[1:]:
            if edge != deduped[-1]:
                deduped.append(edge)
        path = work_dir / f"run-{len(runs):05d}.edges"
        write_run(path, deduped)
        runs.append(path)
        chunk.clear()

    for u, v in edges:
        if u == v:
            continue
        chunk.append((u, v) if u < v else (v, u))
        if len(chunk) >= chunk_edges:
            flush()
    flush()
    return runs


def merge_runs(runs: list[Path]) -> Iterator[tuple[int, int]]:
    """Phase 2: k-way merge of sorted runs, deduplicating across runs."""
    streams = [read_run(path) for path in runs]
    previous: tuple[int, int] | None = None
    for edge in heapq.merge(*streams):
        if edge != previous:
            yield edge
            previous = edge
