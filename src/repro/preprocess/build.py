"""Bounded-memory construction of a degree-ordered page store.

``build_store_external`` turns an arbitrary edge stream (an iterable, or
a text edge-list file too big to slurp) into exactly the artifact OPT
runs on — a degree-ordered, deduplicated, slotted-page
:class:`~repro.storage.layout.GraphStore` — while holding only

* one sort chunk of edges,
* the per-vertex degree / mapping arrays (``O(|V|)``, the *semi-external*
  model all the paper's disk-based systems assume), and
* one adjacency list plus one open page

in memory at any time.  The pipeline is the classic DB shape:

1. external-sort the canonicalized edges into run files and merge-dedup;
2. pass A over the merged stream: count degrees;
3. compute the Schank-Wagner degree-order mapping;
4. pass B: rewrite both edge directions under the mapping and
   external-sort by source;
5. pass C: stream the sorted directed entries, grouping by source, into
   the streaming page packer.
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.preprocess.external_sort import external_sort_edges, merge_runs
from repro.storage.layout import GraphStore, PagePacker
from repro.storage.page import DEFAULT_PAGE_SIZE

__all__ = ["BuildStats", "build_store_external"]


@dataclass(frozen=True)
class BuildStats:
    """What the build pipeline processed."""

    num_vertices: int
    num_edges: int
    runs_phase1: int
    runs_phase2: int
    num_pages: int


def _edges_from_file(path: Path) -> Iterator[tuple[int, int]]:
    with path.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            yield int(parts[0]), int(parts[1])


def build_store_external(
    edges: Iterable[tuple[int, int]] | str | Path,
    work_dir: str | Path,
    *,
    num_vertices: int | None = None,
    page_size: int = DEFAULT_PAGE_SIZE,
    chunk_edges: int = 65536,
    degree_order: bool = True,
) -> tuple[GraphStore, np.ndarray, BuildStats]:
    """Build a (degree-ordered) page store from an edge stream.

    Returns ``(store, mapping, stats)`` where ``mapping[old_id]`` is the
    new id of each input vertex (identity when ``degree_order=False``).
    """
    work_dir = Path(work_dir)
    work_dir.mkdir(parents=True, exist_ok=True)
    if isinstance(edges, (str, Path)):
        edges = _edges_from_file(Path(edges))

    # Phase 1: canonical sorted runs + merged dedup stream.
    phase1_dir = work_dir / "phase1"
    runs1 = external_sort_edges(edges, phase1_dir, chunk_edges=chunk_edges)

    # Pass A: degrees (and the vertex-count bound).
    max_vertex = -1
    degree_map: dict[int, int] = {}
    edge_count = 0
    for u, v in merge_runs(runs1):
        edge_count += 1
        degree_map[u] = degree_map.get(u, 0) + 1
        degree_map[v] = degree_map.get(v, 0) + 1
        if v > max_vertex:
            max_vertex = v
        if u > max_vertex:
            max_vertex = u
    n = max(max_vertex + 1, num_vertices or 0)
    degrees = np.zeros(n, dtype=np.int64)
    for vertex, degree in degree_map.items():
        degrees[vertex] = degree

    # Degree-order mapping (ties broken by original id — deterministic).
    if degree_order:
        order = np.lexsort((np.arange(n), degrees))
        mapping = np.empty(n, dtype=np.int64)
        mapping[order] = np.arange(n, dtype=np.int64)
    else:
        mapping = np.arange(n, dtype=np.int64)

    # Pass B: directed entries under the new ids, externally sorted.
    def directed() -> Iterator[tuple[int, int]]:
        for u, v in merge_runs(runs1):
            mu, mv = int(mapping[u]), int(mapping[v])
            yield mu, mv
            yield mv, mu

    phase2_dir = work_dir / "phase2"
    # Reuse the sorter; "canonicalization" must not reorder directed
    # pairs here, so feed entries already as (src, dst) with src != dst
    # marked by sorting on the tuple directly.
    runs2 = _sort_directed(directed(), phase2_dir, chunk_edges=chunk_edges)

    # Pass C: stream into the packer, filling gaps for isolated vertices.
    packer = PagePacker(page_size)
    current_vertex = 0
    neighbors: list[int] = []
    for src, dst in merge_runs(runs2):
        while current_vertex < src:
            packer.add_vertex(current_vertex, np.asarray(neighbors, dtype=np.int64))
            neighbors = []
            current_vertex += 1
        neighbors.append(dst)
    while current_vertex < n:
        packer.add_vertex(current_vertex, np.asarray(neighbors, dtype=np.int64))
        neighbors = []
        current_vertex += 1
    store = packer.finish()

    shutil.rmtree(phase1_dir, ignore_errors=True)
    shutil.rmtree(phase2_dir, ignore_errors=True)
    stats = BuildStats(
        num_vertices=n,
        num_edges=edge_count,
        runs_phase1=len(runs1),
        runs_phase2=len(runs2),
        num_pages=store.num_pages,
    )
    return store, mapping, stats


def _sort_directed(
    entries: Iterator[tuple[int, int]],
    work_dir: Path,
    *,
    chunk_edges: int,
) -> list[Path]:
    """External sort of *directed* (src, dst) entries (no canonicalizing)."""
    from repro.preprocess.external_sort import write_run

    work_dir.mkdir(parents=True, exist_ok=True)
    runs: list[Path] = []
    chunk: list[tuple[int, int]] = []

    def flush() -> None:
        if not chunk:
            return
        chunk.sort()
        path = work_dir / f"run-{len(runs):05d}.edges"
        write_run(path, chunk)
        runs.append(path)
        chunk.clear()

    for entry in entries:
        chunk.append(entry)
        if len(chunk) >= chunk_edges:
            flush()
    flush()
    return runs
