"""Out-of-core graph preparation: external sort, degree remap, packing."""

from repro.preprocess.build import BuildStats, build_store_external
from repro.preprocess.external_sort import external_sort_edges, merge_runs

__all__ = [
    "BuildStats",
    "build_store_external",
    "external_sort_edges",
    "merge_runs",
]
