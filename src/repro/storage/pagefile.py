"""Raw page files: fixed-size pages addressed by page id.

A :class:`PageFile` is the on-disk body of a stored graph.  Page ids are
zero-based and dense; the file length is always ``num_pages * page_size``.
Reads use ``os.pread`` so concurrent readers (the ThreadedSSD pool) never
contend on a shared file offset.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

from repro.errors import StorageError

__all__ = ["PageFile"]

_MAGIC = b"OPTP"
_HEADER = struct.Struct("<4sIQ")  # magic, page_size, num_pages


class PageFile:
    """A file of fixed-size pages with a small self-describing header."""

    def __init__(self, path: str | Path, page_size: int, num_pages: int, fd: int):
        self.path = Path(path)
        self.page_size = page_size
        self.num_pages = num_pages
        self._fd = fd
        self._closed = False

    # -- lifecycle ----------------------------------------------------------

    @classmethod
    def create(cls, path: str | Path, pages: list[bytes], page_size: int) -> "PageFile":
        """Write *pages* (each exactly *page_size* bytes) to a new file."""
        path = Path(path)
        for index, page in enumerate(pages):
            if len(page) != page_size:
                raise StorageError(
                    f"page {index} is {len(page)} bytes, expected {page_size}"
                )
        with path.open("wb") as handle:
            handle.write(_HEADER.pack(_MAGIC, page_size, len(pages)))
            for page in pages:
                handle.write(page)
        return cls.open(path)

    @classmethod
    def open(cls, path: str | Path) -> "PageFile":
        """Open an existing page file for reading."""
        path = Path(path)
        fd = os.open(path, os.O_RDONLY)
        try:
            header = os.pread(fd, _HEADER.size, 0)
            try:
                magic, page_size, num_pages = _HEADER.unpack(header)
            except struct.error as exc:
                raise StorageError(
                    f"{path}: truncated header ({len(header)} of "
                    f"{_HEADER.size} bytes)"
                ) from exc
            if magic != _MAGIC:
                raise StorageError(f"{path}: not a page file (magic {magic!r})")
            expected = _HEADER.size + page_size * num_pages
            actual = os.fstat(fd).st_size
            if actual != expected:
                raise StorageError(
                    f"{path}: size {actual} != expected {expected} "
                    f"({num_pages} pages of {page_size} bytes)"
                )
        except (StorageError, OSError):
            os.close(fd)
            raise
        return cls(path, page_size, num_pages, fd)

    def close(self) -> None:
        """Release the file descriptor (idempotent)."""
        if not self._closed:
            os.close(self._fd)
            self._closed = True

    def __enter__(self) -> "PageFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except OSError:
            pass

    # -- access ---------------------------------------------------------------

    def read_page(self, pid: int) -> bytes:
        """Read page *pid*; thread-safe (uses ``pread``)."""
        if self._closed:
            raise StorageError("page file is closed")
        if not 0 <= pid < self.num_pages:
            raise StorageError(f"page id {pid} out of range [0, {self.num_pages})")
        offset = _HEADER.size + pid * self.page_size
        data = os.pread(self._fd, self.page_size, offset)
        if len(data) != self.page_size:
            raise StorageError(f"short read on page {pid}")
        return data
