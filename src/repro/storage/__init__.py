"""Storage substrate: slotted pages, page files, buffer manager, devices."""

from repro.storage.buffer import BufferManager, Frame
from repro.storage.faults import CorruptingPageFile, FlakyPageFile, corrupt_page_bytes
from repro.storage.layout import GraphStore
from repro.storage.page import DEFAULT_PAGE_SIZE, PageRecord, SlottedPage, record_capacity
from repro.storage.pagefile import PageFile
from repro.storage.ssd import SyncDevice, ThreadedSSD
from repro.storage.writer import AsyncFile

__all__ = [
    "AsyncFile",
    "DEFAULT_PAGE_SIZE",
    "BufferManager",
    "CorruptingPageFile",
    "FlakyPageFile",
    "Frame",
    "GraphStore",
    "PageFile",
    "PageRecord",
    "SlottedPage",
    "SyncDevice",
    "ThreadedSSD",
    "corrupt_page_bytes",
    "record_capacity",
]
