"""Storage substrate: slotted pages, page files, buffer manager, devices."""

from repro.storage.buffer import BufferManager, Frame
from repro.storage.faults import (
    FAULT_KINDS,
    CorruptingPageFile,
    FaultAction,
    FaultEventLog,
    FaultPlan,
    FaultSpec,
    FaultyPageFile,
    FlakyPageFile,
    RecoveringLoader,
    RetryPolicy,
    corrupt_page_bytes,
)
from repro.storage.layout import GraphStore
from repro.storage.page import DEFAULT_PAGE_SIZE, PageRecord, SlottedPage, record_capacity
from repro.storage.pagefile import PageFile
from repro.storage.ssd import SyncDevice, ThreadedSSD
from repro.storage.writer import AsyncFile

__all__ = [
    "AsyncFile",
    "DEFAULT_PAGE_SIZE",
    "FAULT_KINDS",
    "BufferManager",
    "CorruptingPageFile",
    "FaultAction",
    "FaultEventLog",
    "FaultPlan",
    "FaultSpec",
    "FaultyPageFile",
    "FlakyPageFile",
    "Frame",
    "GraphStore",
    "PageFile",
    "PageRecord",
    "RecoveringLoader",
    "RetryPolicy",
    "SlottedPage",
    "SyncDevice",
    "ThreadedSSD",
    "corrupt_page_bytes",
    "record_capacity",
]
