"""Slotted pages holding adjacency-list records.

The paper stores ``(v, n(v))`` pairs in the slotted page structure familiar
from database systems; adjacency lists larger than a page span a chain of
continuation records across consecutive pages (Section 3.2, "Graph
Representation in Disk").

Binary layout of one page (little endian, ``page_size`` bytes):

========  =====================================================
offset    content
========  =====================================================
0..1      ``u16`` record count
2..       records, packed consecutively
tail      slot directory: ``u16`` offset per record, growing
          backwards from the end of the page
========  =====================================================

Record layout: ``u32 vertex | u16 flags | u16 neighbor count | u32 * count
neighbors``.  Flag bit 0 marks the *last* chunk of a vertex's adjacency
list; a vertex whose list spans pages has every chunk except the final one
with the bit clear.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.errors import PageFormatError, PageFullError

__all__ = ["DEFAULT_PAGE_SIZE", "PageRecord", "SlottedPage", "record_capacity"]

DEFAULT_PAGE_SIZE = 4096

_HEADER = struct.Struct("<H")
_SLOT = struct.Struct("<H")
_RECORD_HEADER = struct.Struct("<IHH")
_FLAG_LAST = 0x1


@dataclass(frozen=True)
class PageRecord:
    """One adjacency-list chunk: ``vertex``'s neighbors, sorted ascending."""

    vertex: int
    neighbors: np.ndarray
    is_last: bool

    def __len__(self) -> int:
        return len(self.neighbors)


def record_capacity(page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Maximum neighbor count of a single record on an empty page."""
    usable = page_size - _HEADER.size - _SLOT.size - _RECORD_HEADER.size
    return usable // 4


class SlottedPage:
    """A mutable in-memory slotted page; freeze with :meth:`to_bytes`."""

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size < _HEADER.size + _SLOT.size + _RECORD_HEADER.size + 4:
            raise PageFormatError(f"page size {page_size} too small for any record")
        if page_size > 0xFFFF:
            raise PageFormatError("page size must fit u16 slot offsets")
        self.page_size = page_size
        self._records: list[PageRecord] = []
        self._used = _HEADER.size

    @property
    def free_space(self) -> int:
        """Bytes available for one more record (header + slot included)."""
        slots = (len(self._records) + 1) * _SLOT.size
        return self.page_size - self._used - slots

    @property
    def num_records(self) -> int:
        return len(self._records)

    def fits(self, neighbor_count: int) -> bool:
        """Whether a record with *neighbor_count* neighbors fits."""
        return self.free_space >= _RECORD_HEADER.size + 4 * neighbor_count

    def max_neighbors_fitting(self) -> int:
        """Largest neighbor count that still fits on this page (may be <= 0)."""
        return (self.free_space - _RECORD_HEADER.size) // 4

    def add_record(self, vertex: int, neighbors: np.ndarray, *, is_last: bool = True) -> None:
        """Append an adjacency-list chunk; raises :class:`PageFullError`."""
        neighbors = np.asarray(neighbors, dtype=np.int64)
        if len(neighbors) and (neighbors.min() < 0 or neighbors.max() > 0xFFFFFFFF):
            raise PageFormatError("neighbor ids must fit u32")
        if not self.fits(len(neighbors)):
            raise PageFullError(
                f"record of {len(neighbors)} neighbors does not fit "
                f"({self.free_space} bytes free)"
            )
        if len(neighbors) > 0xFFFF:
            raise PageFormatError("record chunk exceeds u16 neighbor count")
        self._records.append(PageRecord(int(vertex), neighbors, bool(is_last)))
        self._used += _RECORD_HEADER.size + 4 * len(neighbors)

    def records(self) -> list[PageRecord]:
        """All records in insertion (= vertex id) order."""
        return list(self._records)

    def to_bytes(self) -> bytes:
        """Serialize to exactly ``page_size`` bytes."""
        buffer = bytearray(self.page_size)
        _HEADER.pack_into(buffer, 0, len(self._records))
        offset = _HEADER.size
        for index, record in enumerate(self._records):
            _SLOT.pack_into(buffer, self.page_size - _SLOT.size * (index + 1), offset)
            flags = _FLAG_LAST if record.is_last else 0
            _RECORD_HEADER.pack_into(buffer, offset, record.vertex, flags,
                                     len(record.neighbors))
            offset += _RECORD_HEADER.size
            raw = record.neighbors.astype("<u4").tobytes()
            buffer[offset:offset + len(raw)] = raw
            offset += len(raw)
        return bytes(buffer)

    @classmethod
    def from_bytes(cls, data: bytes) -> "SlottedPage":
        """Decode a page previously produced by :meth:`to_bytes`."""
        page = cls(len(data))
        (count,) = _HEADER.unpack_from(data, 0)
        for index in range(count):
            slot_pos = len(data) - _SLOT.size * (index + 1)
            (offset,) = _SLOT.unpack_from(data, slot_pos)
            if offset + _RECORD_HEADER.size > len(data):
                raise PageFormatError(f"slot {index} points past page end")
            vertex, flags, n_count = _RECORD_HEADER.unpack_from(data, offset)
            start = offset + _RECORD_HEADER.size
            end = start + 4 * n_count
            if end > len(data):
                raise PageFormatError(f"record {index} truncated")
            neighbors = np.frombuffer(data, dtype="<u4", count=n_count,
                                      offset=start).astype(np.int64)
            page.add_record(vertex, neighbors, is_last=bool(flags & _FLAG_LAST))
        return page
