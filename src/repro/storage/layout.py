"""Packing a graph into slotted pages, plus the vertex -> page index.

``GraphStore`` is the unit every disk-based method operates on: the
ordered sequence of slotted pages holding ``(v, n(v))`` records in vertex-
id order, together with index arrays locating each vertex's record chain.

A vertex whose adjacency list exceeds one page spans a *contiguous* run of
pages via continuation records (``is_last`` clear on all but the final
chunk).  ``align_chunk_end`` implements the design rule that an OPT
internal chunk never splits a vertex's record chain (see DESIGN.md §2).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import StorageError
from repro.graph.graph import Graph
from repro.storage.page import DEFAULT_PAGE_SIZE, PageRecord, SlottedPage
from repro.storage.pagefile import PageFile

__all__ = ["GraphStore", "PagePacker"]

#: Do not start a new chunk on a page with room for fewer neighbors.
_MIN_CHUNK_NEIGHBORS = 8


class PagePacker:
    """Streaming packer: feed vertices in id order, get a GraphStore.

    Shared by :meth:`GraphStore.from_graph` (in-memory graphs) and the
    out-of-core build pipeline (:mod:`repro.preprocess`), which streams
    adjacency lists from externally sorted runs.  Only the current page
    and one adjacency list are ever held in memory.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        self.page_size = page_size
        self._pages: list[bytes] = []
        self._first_page: list[int] = []
        self._last_page: list[int] = []
        self._succ_first_page: list[int] = []
        self._page_first: list[int] = []
        self._page_last: list[int] = []
        self._page_complete: list[bool] = []
        self._current = SlottedPage(page_size)
        self._next_vertex = 0

    def _flush(self) -> None:
        records = self._current.records()
        if not records:
            return
        self._pages.append(self._current.to_bytes())
        self._page_first.append(records[0].vertex)
        self._page_last.append(records[-1].vertex)
        self._page_complete.append(records[-1].is_last)
        self._current = SlottedPage(self.page_size)

    def add_vertex(self, v: int, neighbors: np.ndarray) -> None:
        """Append vertex *v*'s sorted adjacency list (ids must be dense
        and fed in increasing order)."""
        if v != self._next_vertex:
            raise StorageError(
                f"vertices must be added densely in order; expected "
                f"{self._next_vertex}, got {v}"
            )
        self._next_vertex += 1
        remaining = np.asarray(neighbors, dtype=np.int64)
        self._first_page.append(len(self._pages))
        self._succ_first_page.append(-1)
        placed_any = False
        while True:
            capacity = self._current.max_neighbors_fitting()
            need_flush = (
                self._current.num_records > 0
                and capacity < len(remaining)
                and capacity < _MIN_CHUNK_NEIGHBORS
            )
            if capacity < 0 or (len(remaining) > 0 and capacity == 0) or need_flush:
                if self._current.num_records == 0:
                    raise StorageError(
                        f"page size {self.page_size} cannot hold any chunk"
                    )
                self._flush()
                if not placed_any:
                    self._first_page[v] = len(self._pages)
                continue
            if len(remaining) <= capacity:
                self._current.add_record(v, remaining, is_last=True)
                placed_any = True
                if (len(remaining) and remaining[-1] > v
                        and self._succ_first_page[v] < 0):
                    self._succ_first_page[v] = len(self._pages)
                break
            chunk = remaining[:capacity]
            self._current.add_record(v, chunk, is_last=False)
            placed_any = True
            if len(chunk) and chunk[-1] > v and self._succ_first_page[v] < 0:
                self._succ_first_page[v] = len(self._pages)
            remaining = remaining[capacity:]
        self._last_page.append(len(self._pages))  # page being filled

    def finish(self) -> "GraphStore":
        """Flush the final page and assemble the store."""
        self._flush()
        n = self._next_vertex
        first_page = np.asarray(self._first_page, dtype=np.int64)
        last_page = np.asarray(self._last_page, dtype=np.int64)
        succ_first_page = np.asarray(self._succ_first_page, dtype=np.int64)
        if self._pages:
            limit = len(self._pages) - 1
            first_page = np.minimum(first_page, limit)
            last_page = np.minimum(last_page, limit)
            succ_first_page = np.minimum(succ_first_page, limit)
        return GraphStore(
            self._pages,
            self.page_size,
            n,
            first_page,
            last_page,
            np.asarray(self._page_first, dtype=np.int64),
            np.asarray(self._page_last, dtype=np.int64),
            np.asarray(self._page_complete, dtype=bool),
            succ_first_page,
        )


class GraphStore:
    """A graph packed into slotted pages with a vertex location index.

    Attributes
    ----------
    pages:
        Serialized page images, ``pages[pid]`` is exactly ``page_size``
        bytes.
    first_page / last_page:
        For each vertex, the inclusive page-id range holding its record
        chain (``first_page[v] == last_page[v]`` for single-page lists).
    page_first_vertex / page_last_vertex:
        Lowest / highest vertex with a record on each page.
    page_ends_complete:
        True when the final record on the page is an ``is_last`` chunk,
        i.e. the page boundary coincides with a vertex boundary.
    """

    def __init__(
        self,
        pages: list[bytes],
        page_size: int,
        num_vertices: int,
        first_page: np.ndarray,
        last_page: np.ndarray,
        page_first_vertex: np.ndarray,
        page_last_vertex: np.ndarray,
        page_ends_complete: np.ndarray,
        succ_first_page: np.ndarray | None = None,
    ):
        self.pages = pages
        self.page_size = page_size
        self.num_vertices = num_vertices
        self.first_page = first_page
        self.last_page = last_page
        self.page_first_vertex = page_first_vertex
        self.page_last_vertex = page_last_vertex
        self.page_ends_complete = page_ends_complete
        if succ_first_page is None:
            succ_first_page = first_page.copy() if len(first_page) else first_page
        self.succ_first_page = succ_first_page

    # -- construction --------------------------------------------------------

    @classmethod
    def from_graph(cls, graph: Graph, page_size: int = DEFAULT_PAGE_SIZE) -> "GraphStore":
        """Pack *graph* into pages in vertex-id order."""
        packer = PagePacker(page_size)
        for v in range(graph.num_vertices):
            packer.add_vertex(v, graph.neighbors(v))
        return packer.finish()

    # -- basic accessors -------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """``P(G)``: the number of pages of the stored graph."""
        return len(self.pages)

    def decode_page(self, pid: int) -> list[PageRecord]:
        """Decode page *pid* into its records."""
        return SlottedPage.from_bytes(self.pages[pid]).records()

    def pages_of_vertex(self, v: int) -> range:
        """Inclusive page-id range holding vertex *v*'s record chain."""
        return range(int(self.first_page[v]), int(self.last_page[v]) + 1)

    def pages_of_candidate(self, v: int) -> range:
        """Pages an external candidate *v* actually needs.

        External processing only consumes ``n_succ(v)``; adjacency lists
        are sorted, so the successors occupy a *suffix* of the record
        chain.  For a high-id hub (huge list, tiny ``n_succ``) this is one
        page instead of the whole chain — the reason OPT's external read
        volume stays close to the candidates' useful data.  Empty when
        *v* has no successors.
        """
        start = int(self.succ_first_page[v])
        if start < 0:
            return range(0)
        return range(start, int(self.last_page[v]) + 1)

    def align_chunk_end(self, start_pid: int, m_in: int) -> int:
        """Last page of an internal chunk starting at *start_pid*.

        Returns the largest ``end <= start_pid + m_in - 1`` whose page
        boundary coincides with a vertex boundary; when even the first page
        splits a vertex (an adjacency list longer than ``m_in`` pages), the
        chunk *extends* until that vertex's chain completes, mirroring the
        paper's requirement that the internal area hold at least one full
        adjacency list.
        """
        if not 0 <= start_pid < self.num_pages:
            raise StorageError(f"start page {start_pid} out of range")
        end = min(start_pid + m_in - 1, self.num_pages - 1)
        while end > start_pid and not self.page_ends_complete[end]:
            end -= 1
        while not self.page_ends_complete[end]:
            end += 1  # single giant vertex: extend to its final chunk
        return int(end)

    def chunk_vertex_range(self, start_pid: int, end_pid: int) -> tuple[int, int]:
        """Inclusive vertex-id range fully contained in pages [start, end]."""
        return int(self.page_first_vertex[start_pid]), int(self.page_last_vertex[end_pid])

    # -- persistence ------------------------------------------------------------

    def save(self, directory: str | Path, name: str = "graph") -> tuple[Path, Path]:
        """Write the page file and index sidecar; returns their paths."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        pages_path = directory / f"{name}.pages"
        index_path = directory / f"{name}.idx.npz"
        PageFile.create(pages_path, self.pages, self.page_size).close()
        np.savez(
            index_path,
            page_size=self.page_size,
            num_vertices=self.num_vertices,
            first_page=self.first_page,
            last_page=self.last_page,
            page_first_vertex=self.page_first_vertex,
            page_last_vertex=self.page_last_vertex,
            page_ends_complete=self.page_ends_complete,
            succ_first_page=self.succ_first_page,
        )
        return pages_path, index_path

    @classmethod
    def load(cls, directory: str | Path, name: str = "graph") -> "GraphStore":
        """Load a store previously written by :meth:`save`."""
        directory = Path(directory)
        index = np.load(directory / f"{name}.idx.npz")
        with PageFile.open(directory / f"{name}.pages") as page_file:
            pages = [page_file.read_page(pid) for pid in range(page_file.num_pages)]
            page_size = page_file.page_size
        return cls(
            pages,
            int(page_size),
            int(index["num_vertices"]),
            index["first_page"],
            index["last_page"],
            index["page_first_vertex"],
            index["page_last_vertex"],
            index["page_ends_complete"],
            index["succ_first_page"] if "succ_first_page" in index else None,
        )

    def open_page_file(self, directory: str | Path, name: str = "graph") -> PageFile:
        """Materialize the pages as an on-disk :class:`PageFile` and open it."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.pages"
        PageFile.create(path, self.pages, self.page_size).close()
        return PageFile.open(path)
