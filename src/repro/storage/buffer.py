"""Buffer manager: fixed frame budget, pin counts, LRU replacement.

OPT splits its memory budget of ``m`` pages into an internal area (``m_in``
frames, pinned for the duration of an iteration) and an external area
(``m_ex`` frames cycling through candidate pages).  Both areas share one
:class:`BufferManager`: the OPT driver pins internal pages, and the page
loading order (Algorithm 4, descending page ids) makes the external pages
needed by the *next* internal chunk the most recently used — so LRU keeps
them resident and the next iteration's loads become buffer hits (the
paper's saved I/O ``Δin``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import BufferError_
from repro.obs import EventTracer, MetricsRegistry
from repro.storage.page import PageRecord

__all__ = ["BufferManager", "Frame"]


@dataclass
class Frame:
    """One buffer frame holding a decoded page."""

    pid: int
    records: list[PageRecord]
    pin_count: int = 0
    dirty: bool = False
    stats: dict = field(default_factory=dict)


class BufferManager:
    """A page buffer with *capacity* frames and LRU replacement.

    ``loader(pid)`` must return the decoded records of page *pid*; it is
    invoked exactly once per miss.  Hits, misses, and evictions count
    through the ``buffer.*`` counters of *registry* (a private registry
    when none is given) so the engines can report the paper's ``Δin``
    (reads absorbed by buffering); the historical ``hits`` / ``misses`` /
    ``evictions`` attributes remain available as properties.
    """

    def __init__(self, capacity: int, loader: Callable[[int], list[PageRecord]],
                 *, registry: MetricsRegistry | None = None,
                 tracer: EventTracer | None = None):
        if capacity < 1:
            raise BufferError_("buffer capacity must be at least one frame")
        self.capacity = capacity
        self._loader = loader
        self._frames: OrderedDict[int, Frame] = OrderedDict()
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._hits = self.registry.counter("buffer.hits")
        self._misses = self.registry.counter("buffer.misses")
        self._evictions = self.registry.counter("buffer.evictions")
        # Live occupancy for the telemetry pipeline; kept in step with
        # every resident-set mutation.
        self._resident = self.registry.gauge("buffer.resident")

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    # -- queries -----------------------------------------------------------

    def __contains__(self, pid: int) -> bool:
        return pid in self._frames

    @property
    def num_resident(self) -> int:
        return len(self._frames)

    @property
    def num_pinned(self) -> int:
        return sum(1 for frame in self._frames.values() if frame.pin_count > 0)

    def resident_pages(self) -> list[int]:
        """Page ids currently buffered, least recently used first."""
        return list(self._frames)

    # -- core operations ------------------------------------------------------

    def get(self, pid: int, *, pin: bool = False) -> Frame:
        """Return the frame for *pid*, loading it on a miss.

        Marks the frame most-recently-used.  With ``pin=True`` the frame's
        pin count is incremented and the page becomes ineligible for
        eviction until unpinned the same number of times.
        """
        frame = self._frames.get(pid)
        if frame is not None:
            self._hits.inc()
            if self._tracer is not None:
                self._tracer.instant("buffer.hit", pid=pid)
            self._frames.move_to_end(pid)
        else:
            self._misses.inc()
            self._ensure_free_frame()
            frame = Frame(pid, self._loader(pid))
            self._frames[pid] = frame
            self._resident.set(len(self._frames))
        if pin:
            frame.pin_count += 1
        return frame

    def install(self, pid: int, records: list[PageRecord], *, pin: bool = False) -> Frame:
        """Install an externally loaded page (async-read completion path)."""
        frame = self._frames.get(pid)
        if frame is None:
            self._ensure_free_frame()
            frame = Frame(pid, records)
            self._frames[pid] = frame
            self._resident.set(len(self._frames))
        else:
            self._frames.move_to_end(pid)
        if pin:
            frame.pin_count += 1
        return frame

    def pin(self, pid: int) -> None:
        """Increment the pin count of a resident page."""
        try:
            self._frames[pid].pin_count += 1
        except KeyError:
            raise BufferError_(f"cannot pin non-resident page {pid}") from None

    def unpin(self, pid: int) -> None:
        """Decrement the pin count; raises on over-unpin."""
        try:
            frame = self._frames[pid]
        except KeyError:
            raise BufferError_(f"cannot unpin non-resident page {pid}") from None
        if frame.pin_count <= 0:
            raise BufferError_(f"page {pid} is not pinned")
        frame.pin_count -= 1

    def flush(self) -> None:
        """Drop every unpinned frame (used between independent runs)."""
        for pid in [p for p, f in self._frames.items() if f.pin_count == 0]:
            del self._frames[pid]
        self._resident.set(len(self._frames))

    # -- internals ------------------------------------------------------------

    def _ensure_free_frame(self) -> None:
        if len(self._frames) < self.capacity:
            return
        for pid, frame in self._frames.items():  # LRU order
            if frame.pin_count == 0:
                del self._frames[pid]
                self._evictions.inc()
                self._resident.set(len(self._frames))
                if self._tracer is not None:
                    self._tracer.instant("buffer.evict", pid=pid)
                return
        raise BufferError_(
            f"all {self.capacity} frames pinned; cannot load another page"
        )
