"""FlashSSD access layers.

Two device models implement the paper's ``AsyncRead(pid, Callback, Args)``
primitive:

* :class:`ThreadedSSD` — *real* asynchronous reads against an on-disk
  :class:`~repro.storage.pagefile.PageFile`.  A pool of reader threads
  issues ``os.pread`` calls (which release the GIL, so they genuinely
  overlap with the main thread's CPU work) and a dedicated *callback
  thread* runs completion callbacks in order — the same main-thread /
  callback-thread split the paper describes.
* :class:`SyncDevice` — synchronous reads with statistics; the substrate
  for MGT-style methods that use blocking I/O, and the loader behind the
  buffer manager.

Both devices host the *recovery* half of the fault subsystem
(:mod:`repro.storage.faults`): given a :class:`~repro.storage.faults.RetryPolicy`
they retry failed or torn reads with exponential backoff, and the
threaded device additionally arms a **per-read deadline** — a request
whose completion never arrives (dropped callback, device stall) is
reclaimed at the next ``wait_idle`` barrier and degraded to a
*synchronous re-read* on the waiting thread, with the callback still
executed on the serialized callback thread.  When a fault outlasts the
retry budget the typed terminal
:class:`~repro.errors.FaultExhaustedError` surfaces — never a silently
wrong result.  Retries, timeouts, and fallbacks count into the metrics
registry (``recovery.*``), so an instrumented run's
:class:`~repro.obs.RunReport` shows exactly what the storage layer
survived.

The *timing* model of the Flash device (latency, channel parallelism) is
independent of these classes and lives in :mod:`repro.sim.device`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Sequence

from repro.errors import (
    ConfigurationError,
    DeviceError,
    FaultExhaustedError,
    PageFormatError,
)
from repro.obs import EventTracer, MetricsRegistry, get_logger
from repro.storage.faults import (
    FALLBACKS_METRIC,
    GIVEUPS_METRIC,
    INJECTED_METRIC,
    RETRIES_METRIC,
    TIMEOUTS_METRIC,
    FaultPlan,
    RetryPolicy,
)
from repro.storage.page import PageRecord, SlottedPage
from repro.storage.pagefile import PageFile

__all__ = ["SyncDevice", "ThreadedSSD"]

#: Both device models account device reads through this registry counter,
#: so a run report shows one ``ssd.pages_read`` regardless of which
#: access layer served the workload.
PAGES_READ_METRIC = "ssd.pages_read"

logger = get_logger(__name__)


def _read_records_with_retry(
    page_file,
    pid: int,
    policy: RetryPolicy | None,
    plan: FaultPlan | None,
    retries_counter,
    giveups_counter,
    *,
    sleep: Callable[[float], None] = time.sleep,
) -> list[PageRecord]:
    """Read + decode page *pid*, retrying recoverable faults per *policy*.

    Recoverable means :class:`DeviceError` (the device refused the read)
    or :class:`PageFormatError` (the bytes arrived torn); anything else
    propagates untouched.  With no policy this is a single attempt — the
    historical fail-fast behavior.
    """
    failures = 0
    while True:
        try:
            raw = page_file.read_page(pid)
            return SlottedPage.from_bytes(raw).records()
        except (DeviceError, PageFormatError) as exc:
            if policy is None:
                raise
            if failures >= policy.max_retries:
                giveups_counter.inc()
                if plan is not None:
                    plan.log.record("giveup", "terminal", pid, failures)
                raise FaultExhaustedError(
                    f"page {pid} still failing after {policy.max_retries} "
                    f"retries: {exc}",
                    pid=pid, attempts=failures + 1,
                ) from exc
            retries_counter.inc()
            if plan is not None:
                plan.log.record("retry", "retry", pid, failures)
            sleep(policy.backoff(pid, failures))
            failures += 1


class SyncDevice:
    """Blocking page reader over a page file, with read accounting.

    Reads count through the ``ssd.pages_read`` counter of *registry* (a
    private registry when none is given); the historical ``pages_read``
    attribute remains available as a property.  With a
    :class:`~repro.storage.faults.RetryPolicy`, recoverable read faults
    (device errors, torn pages) are retried with deterministic backoff
    before the typed terminal error surfaces.
    """

    def __init__(self, page_file: PageFile, *,
                 registry: MetricsRegistry | None = None,
                 retry_policy: RetryPolicy | None = None,
                 tracer: EventTracer | None = None):
        self._page_file = page_file
        self.registry = registry if registry is not None else MetricsRegistry()
        self._pages_read = self.registry.counter(PAGES_READ_METRIC)
        self._retry_policy = retry_policy
        self._plan: FaultPlan | None = getattr(page_file, "plan", None)
        self._retries = self.registry.counter(RETRIES_METRIC)
        self._giveups = self.registry.counter(GIVEUPS_METRIC)
        self._tracer = tracer if tracer is not None and tracer.enabled else None

    @property
    def num_pages(self) -> int:
        return self._page_file.num_pages

    @property
    def pages_read(self) -> int:
        return self._pages_read.value

    def read_page(self, pid: int) -> list[PageRecord]:
        """Read and decode page *pid* synchronously (with retries)."""
        start = self._tracer.now() if self._tracer is not None else 0.0
        records = _read_records_with_retry(
            self._page_file, pid, self._retry_policy, self._plan,
            self._retries, self._giveups,
        )
        self._pages_read.inc()
        if self._tracer is not None:
            self._tracer.complete("read.service", start,
                                  self._tracer.now() - start, pid=pid)
        return records


class ThreadedSSD:
    """Asynchronous page reads with completion callbacks.

    ``async_read(pid, callback, args)`` submits the read to a pool of
    *io_workers* reader threads; on completion, ``callback(records, *args)``
    runs on the single callback thread.  ``wait_idle()`` blocks until every
    issued request has been read *and* its callback has returned — the
    "wait until ... executions are finished" barriers of Algorithm 3.

    Recovery: with a :class:`~repro.storage.faults.RetryPolicy`, reader
    threads retry recoverable faults with backoff, and ``policy.timeout``
    arms a per-read deadline.  A request that misses its deadline — its
    callback was dropped, or the device stalled — is reclaimed by the
    thread blocked in ``wait_idle`` and served by a synchronous re-read
    there (counted as ``recovery.timeouts`` + ``recovery.fallbacks``);
    its callback still runs on the callback thread, preserving callback
    serialization.  Because the engine's internal triangulation happens
    *before* the barrier, a timed-out external read degrades without
    ever stalling internal work.
    """

    _SHUTDOWN = object()

    def __init__(self, page_file: PageFile, *, io_workers: int = 4,
                 registry: MetricsRegistry | None = None,
                 retry_policy: RetryPolicy | None = None,
                 tracer: EventTracer | None = None):
        if io_workers < 1:
            raise DeviceError("io_workers must be >= 1")
        self._page_file = page_file
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._pages_read = self.registry.counter(PAGES_READ_METRIC)
        self._async_reads = self.registry.counter("ssd.async_reads")
        self._queue_depth = self.registry.histogram("ssd.queue.depth")
        # Live outstanding-request count for the telemetry pipeline
        # (the histogram above keeps the distribution; the gauge is the
        # instantaneous value a sampler tick reads).
        self._inflight_gauge = self.registry.gauge("ssd.inflight")
        self._callback_latency = self.registry.histogram("ssd.callback.latency")
        self._retry_policy = retry_policy
        self._plan: FaultPlan | None = getattr(page_file, "plan", None)
        if (self._plan is not None and self._plan.needs_timeout
                and (retry_policy is None or retry_policy.timeout is None)):
            raise ConfigurationError(
                "the fault plan drops callbacks or stalls the device; "
                "recovery needs a RetryPolicy with a per-read timeout"
            )
        self._retries = self.registry.counter(RETRIES_METRIC)
        self._timeouts = self.registry.counter(TIMEOUTS_METRIC)
        self._fallbacks = self.registry.counter(FALLBACKS_METRIC)
        self._giveups = self.registry.counter(GIVEUPS_METRIC)
        self._dropped = self.registry.counter(INJECTED_METRIC,
                                              kind="dropped_callback")
        self._timeout = retry_policy.timeout if retry_policy else None
        self._read_queue: queue.Queue = queue.Queue()
        self._callback_queue: queue.Queue = queue.Queue()
        self._outstanding = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._failure: BaseException | None = None
        self._closed = False
        self._next_request = 0
        #: request id -> (pid, callback, args, deadline); tracked only
        #: when a per-read timeout is armed.
        self._inflight: dict[int, tuple[int, Callable, tuple, float]] = {}
        #: completed reads per page, the attempt basis for drop faults.
        self._completions: dict[int, int] = {}
        self._readers = [
            threading.Thread(target=self._reader_loop, name=f"ssd-reader-{i}",
                             daemon=True)
            for i in range(io_workers)
        ]
        self._callback_thread = threading.Thread(
            target=self._callback_loop, name="ssd-callback", daemon=True
        )
        for thread in self._readers:
            thread.start()
        self._callback_thread.start()

    @property
    def num_pages(self) -> int:
        return self._page_file.num_pages

    @property
    def pages_read(self) -> int:
        return self._pages_read.value

    # -- public API ---------------------------------------------------------

    def async_read(
        self,
        pid: int,
        callback: Callable[..., None],
        args: Sequence = (),
    ) -> None:
        """Issue an asynchronous read of page *pid*.

        On completion ``callback(records, *args)`` runs on the callback
        thread.  Reads may complete out of submission order (the Flash
        device serves its queue in parallel); callbacks are serialized.
        """
        if self._closed:
            raise DeviceError("device is closed")
        args = tuple(args)
        with self._lock:
            self._outstanding += 1
            depth = self._outstanding
            request = self._next_request
            self._next_request += 1
            if self._timeout is not None:
                self._inflight[request] = (
                    pid, callback, args, time.monotonic() + self._timeout
                )
                # A thread blocked in wait_idle may have found _inflight
                # empty and gone into an untimed sleep; wake it so it
                # picks up this request's deadline (callbacks issue new
                # reads while the barrier is waiting).
                self._idle.notify_all()
        self._async_reads.inc()
        self._queue_depth.observe(depth)
        self._inflight_gauge.set(depth)
        if self._tracer is not None:
            self._tracer.instant("read.submit", pid=pid, req=request,
                                 depth=depth)
        self._read_queue.put((request, pid, callback, args))

    def wait_idle(self) -> None:
        """Block until all issued reads and their callbacks are finished.

        This barrier doubles as the recovery point: requests whose
        deadline has passed are reclaimed here and served by synchronous
        re-reads on the calling thread.
        """
        while True:
            expired: list[tuple[int, Callable, tuple]] = []
            with self._idle:
                if self._failure is not None:
                    failure, self._failure = self._failure, None
                    if isinstance(failure, DeviceError):
                        raise failure
                    raise DeviceError("asynchronous read failed") from failure
                if self._outstanding <= 0:
                    return
                if self._timeout is not None and self._inflight:
                    now = time.monotonic()
                    for request, entry in list(self._inflight.items()):
                        pid, callback, args, deadline = entry
                        if now >= deadline:
                            del self._inflight[request]
                            expired.append((pid, callback, args))
                    if not expired:
                        next_deadline = min(
                            deadline
                            for _, _, _, deadline in self._inflight.values()
                        )
                        self._idle.wait(max(1e-4, next_deadline - now))
                        continue
                else:
                    self._idle.wait()
                    continue
            for pid, callback, args in expired:
                self._recover_timeout(pid, callback, args)

    def close(self) -> None:
        """Stop worker threads (idempotent); pending work is drained first."""
        if self._closed:
            return
        self.wait_idle()
        self._closed = True
        for _ in self._readers:
            self._read_queue.put(self._SHUTDOWN)
        self._callback_queue.put(self._SHUTDOWN)
        for thread in self._readers:
            thread.join(timeout=5)
        self._callback_thread.join(timeout=5)

    def __enter__(self) -> "ThreadedSSD":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recovery ----------------------------------------------------------

    def _claim(self, request: int) -> bool:
        """Take ownership of *request*'s completion (False = already taken)."""
        if self._timeout is None:
            return True
        with self._lock:
            return self._inflight.pop(request, None) is not None

    def _recover_timeout(self, pid: int, callback: Callable, args: tuple) -> None:
        """Serve a timed-out request with a synchronous re-read.

        Runs on the thread blocked in ``wait_idle`` (the engine's main
        thread, which by this point has finished its internal
        triangulation — the morph-aware degradation).  The callback is
        still posted to the callback thread, keeping callbacks serial.
        """
        self._timeouts.inc()
        attempt = 0
        if hasattr(self._page_file, "attempts_of"):
            attempt = self._page_file.attempts_of(pid)
        if self._plan is not None:
            self._plan.log.record("timeout", "timeout", pid, attempt)
        if self._tracer is not None:
            self._tracer.instant("recovery.timeout", pid=pid)
        logger.debug("read of page %d timed out; synchronous fallback", pid)
        start = self._tracer.now() if self._tracer is not None else 0.0
        try:
            records = _read_records_with_retry(
                self._page_file, pid, self._retry_policy, self._plan,
                self._retries, self._giveups,
            )
        # Recovery must capture anything the re-read raises so wait_idle
        # can surface it instead of deadlocking.  # lint: ignore[error-types]
        except BaseException as exc:
            self._fail(exc)
            return
        self._pages_read.inc()
        self._fallbacks.inc()
        if self._plan is not None:
            self._plan.log.record("fallback", "sync_reread", pid, attempt)
        if self._tracer is not None:
            self._tracer.complete("read.service", start,
                                  self._tracer.now() - start, pid=pid)
            self._tracer.instant("recovery.fallback", pid=pid)
        self._callback_queue.put((callback, records, args,
                                  time.perf_counter(), pid))

    def _should_drop(self, pid: int) -> bool:
        """Consult the fault plan: lose this read's completion?"""
        if self._plan is None:
            return False
        with self._lock:
            completion = self._completions.get(pid, 0)
            self._completions[pid] = completion + 1
        for action in self._plan.actions(pid, completion):
            if action.kind == "dropped_callback":
                self._plan.log.record("inject", "dropped_callback", pid,
                                      completion)
                self._dropped.inc()
                return True
        return False

    # -- worker loops ------------------------------------------------------------

    def _reader_loop(self) -> None:
        while True:
            item = self._read_queue.get()
            if item is self._SHUTDOWN:
                return
            request, pid, callback, args = item
            start = self._tracer.now() if self._tracer is not None else 0.0
            try:
                records = _read_records_with_retry(
                    self._page_file, pid, self._retry_policy, self._plan,
                    self._retries, self._giveups,
                )
            # Worker loops may not die: every failure is parked for
            # wait_idle to re-raise.  # lint: ignore[error-types]
            except BaseException as exc:
                if self._claim(request):
                    self._fail(exc)
                continue
            self._pages_read.inc()
            if self._tracer is not None:
                self._tracer.complete("read.service", start,
                                      self._tracer.now() - start,
                                      pid=pid, req=request)
            if self._should_drop(pid):
                # The read happened but its completion is lost; the
                # request stays in flight until the deadline reclaims it.
                continue
            if self._claim(request):
                self._callback_queue.put((callback, records, args,
                                          time.perf_counter(), pid))

    def _callback_loop(self) -> None:
        while True:
            item = self._callback_queue.get()
            if item is self._SHUTDOWN:
                return
            callback, records, args, completed_at, pid = item
            start = self._tracer.now() if self._tracer is not None else 0.0
            try:
                callback(records, *args)
            # A raising callback must not kill the callback thread; the
            # failure surfaces at wait_idle.  # lint: ignore[error-types]
            except BaseException as exc:
                self._fail(exc)
                continue
            if self._tracer is not None:
                self._tracer.complete("read.callback", start,
                                      self._tracer.now() - start, pid=pid)
            # Queue wait + callback execution: the latency between a read
            # completing and its triangulation work being done.
            self._callback_latency.observe(time.perf_counter() - completed_at)
            self._finish_one()

    def _finish_one(self) -> None:
        with self._idle:
            self._outstanding -= 1
            remaining = self._outstanding
            if remaining <= 0:
                self._idle.notify_all()
        self._inflight_gauge.set(max(0, remaining))

    def _fail(self, exc: BaseException) -> None:
        logger.debug("asynchronous read failed: %r", exc)
        with self._idle:
            self._failure = exc
            self._outstanding -= 1
            remaining = self._outstanding
            self._idle.notify_all()
        self._inflight_gauge.set(max(0, remaining))
