"""FlashSSD access layers.

Two device models implement the paper's ``AsyncRead(pid, Callback, Args)``
primitive:

* :class:`ThreadedSSD` — *real* asynchronous reads against an on-disk
  :class:`~repro.storage.pagefile.PageFile`.  A pool of reader threads
  issues ``os.pread`` calls (which release the GIL, so they genuinely
  overlap with the main thread's CPU work) and a dedicated *callback
  thread* runs completion callbacks in order — the same main-thread /
  callback-thread split the paper describes.
* :class:`SyncDevice` — synchronous reads with statistics; the substrate
  for MGT-style methods that use blocking I/O, and the loader behind the
  buffer manager.

The *timing* model of the Flash device (latency, channel parallelism) is
independent of these classes and lives in :mod:`repro.sim.device`.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Sequence

from repro.errors import DeviceError
from repro.obs import MetricsRegistry, get_logger
from repro.storage.page import PageRecord, SlottedPage
from repro.storage.pagefile import PageFile

__all__ = ["SyncDevice", "ThreadedSSD"]

#: Both device models account device reads through this registry counter,
#: so a run report shows one ``ssd.pages_read`` regardless of which
#: access layer served the workload.
PAGES_READ_METRIC = "ssd.pages_read"

logger = get_logger(__name__)


class SyncDevice:
    """Blocking page reader over a page file, with read accounting.

    Reads count through the ``ssd.pages_read`` counter of *registry* (a
    private registry when none is given); the historical ``pages_read``
    attribute remains available as a property.
    """

    def __init__(self, page_file: PageFile, *,
                 registry: MetricsRegistry | None = None):
        self._page_file = page_file
        self.registry = registry if registry is not None else MetricsRegistry()
        self._pages_read = self.registry.counter(PAGES_READ_METRIC)

    @property
    def num_pages(self) -> int:
        return self._page_file.num_pages

    @property
    def pages_read(self) -> int:
        return self._pages_read.value

    def read_page(self, pid: int) -> list[PageRecord]:
        """Read and decode page *pid* synchronously."""
        self._pages_read.inc()
        return SlottedPage.from_bytes(self._page_file.read_page(pid)).records()


class ThreadedSSD:
    """Asynchronous page reads with completion callbacks.

    ``async_read(pid, callback, args)`` submits the read to a pool of
    *io_workers* reader threads; on completion, ``callback(records, *args)``
    runs on the single callback thread.  ``wait_idle()`` blocks until every
    issued request has been read *and* its callback has returned — the
    "wait until ... executions are finished" barriers of Algorithm 3.
    """

    _SHUTDOWN = object()

    def __init__(self, page_file: PageFile, *, io_workers: int = 4,
                 registry: MetricsRegistry | None = None):
        if io_workers < 1:
            raise DeviceError("io_workers must be >= 1")
        self._page_file = page_file
        self.registry = registry if registry is not None else MetricsRegistry()
        self._pages_read = self.registry.counter(PAGES_READ_METRIC)
        self._async_reads = self.registry.counter("ssd.async_reads")
        self._queue_depth = self.registry.histogram("ssd.queue.depth")
        self._callback_latency = self.registry.histogram("ssd.callback.latency")
        self._read_queue: queue.Queue = queue.Queue()
        self._callback_queue: queue.Queue = queue.Queue()
        self._outstanding = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._failure: BaseException | None = None
        self._closed = False
        self._readers = [
            threading.Thread(target=self._reader_loop, name=f"ssd-reader-{i}",
                             daemon=True)
            for i in range(io_workers)
        ]
        self._callback_thread = threading.Thread(
            target=self._callback_loop, name="ssd-callback", daemon=True
        )
        for thread in self._readers:
            thread.start()
        self._callback_thread.start()

    @property
    def num_pages(self) -> int:
        return self._page_file.num_pages

    @property
    def pages_read(self) -> int:
        return self._pages_read.value

    # -- public API ---------------------------------------------------------

    def async_read(
        self,
        pid: int,
        callback: Callable[..., None],
        args: Sequence = (),
    ) -> None:
        """Issue an asynchronous read of page *pid*.

        On completion ``callback(records, *args)`` runs on the callback
        thread.  Reads may complete out of submission order (the Flash
        device serves its queue in parallel); callbacks are serialized.
        """
        if self._closed:
            raise DeviceError("device is closed")
        with self._lock:
            self._outstanding += 1
            depth = self._outstanding
        self._async_reads.inc()
        self._queue_depth.observe(depth)
        self._read_queue.put((pid, callback, tuple(args)))

    def wait_idle(self) -> None:
        """Block until all issued reads and their callbacks are finished."""
        with self._idle:
            while self._outstanding > 0 and self._failure is None:
                self._idle.wait()
            if self._failure is not None:
                failure, self._failure = self._failure, None
                raise DeviceError("asynchronous read failed") from failure

    def close(self) -> None:
        """Stop worker threads (idempotent); pending work is drained first."""
        if self._closed:
            return
        self.wait_idle()
        self._closed = True
        for _ in self._readers:
            self._read_queue.put(self._SHUTDOWN)
        self._callback_queue.put(self._SHUTDOWN)
        for thread in self._readers:
            thread.join(timeout=5)
        self._callback_thread.join(timeout=5)

    def __enter__(self) -> "ThreadedSSD":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker loops ------------------------------------------------------------

    def _reader_loop(self) -> None:
        while True:
            item = self._read_queue.get()
            if item is self._SHUTDOWN:
                return
            pid, callback, args = item
            try:
                raw = self._page_file.read_page(pid)
                records = SlottedPage.from_bytes(raw).records()
            except BaseException as exc:  # surface on wait_idle
                self._fail(exc)
                continue
            self._pages_read.inc()
            self._callback_queue.put((callback, records, args,
                                      time.perf_counter()))

    def _callback_loop(self) -> None:
        while True:
            item = self._callback_queue.get()
            if item is self._SHUTDOWN:
                return
            callback, records, args, completed_at = item
            try:
                callback(records, *args)
            except BaseException as exc:
                self._fail(exc)
                continue
            # Queue wait + callback execution: the latency between a read
            # completing and its triangulation work being done.
            self._callback_latency.observe(time.perf_counter() - completed_at)
            self._finish_one()

    def _finish_one(self) -> None:
        with self._idle:
            self._outstanding -= 1
            if self._outstanding <= 0:
                self._idle.notify_all()

    def _fail(self, exc: BaseException) -> None:
        logger.debug("asynchronous read failed: %r", exc)
        with self._idle:
            self._failure = exc
            self._outstanding -= 1
            self._idle.notify_all()
