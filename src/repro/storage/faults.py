"""Fault injection for the storage layer.

Production storage code must fail loudly and recoverably; these wrappers
let the test suite exercise exactly that: transient read errors (a retry
should succeed), permanent errors (a run must abort with
:class:`~repro.errors.DeviceError`), and silent page corruption (the
slotted-page decoder must detect it rather than return garbage).
"""

from __future__ import annotations

import random
from typing import Callable

from repro.errors import DeviceError
from repro.storage.pagefile import PageFile

__all__ = ["CorruptingPageFile", "FlakyPageFile", "corrupt_page_bytes"]


def corrupt_page_bytes(data: bytes, *, seed: int = 0) -> bytes:
    """Return *data* with its slot directory scrambled.

    Overwrites the tail (where the slot offsets live) with out-of-range
    values, which :meth:`SlottedPage.from_bytes` must reject.
    """
    rng = random.Random(seed)
    corrupted = bytearray(data)
    for index in range(1, min(9, len(corrupted)), 2):
        corrupted[-index] = rng.randrange(200, 256)
    return bytes(corrupted)


class FlakyPageFile:
    """A page file whose reads fail according to *should_fail*.

    ``should_fail(pid, attempt)`` is consulted on every read; returning
    true raises :class:`DeviceError`.  ``attempts`` counts reads per page
    so tests can model transient faults ("fail the first two tries").
    """

    def __init__(self, inner: PageFile, should_fail: Callable[[int, int], bool]):
        self._inner = inner
        self._should_fail = should_fail
        self.attempts: dict[int, int] = {}

    @property
    def page_size(self) -> int:
        return self._inner.page_size

    @property
    def num_pages(self) -> int:
        return self._inner.num_pages

    def read_page(self, pid: int) -> bytes:
        attempt = self.attempts.get(pid, 0)
        self.attempts[pid] = attempt + 1
        if self._should_fail(pid, attempt):
            raise DeviceError(f"injected read fault on page {pid} "
                              f"(attempt {attempt})")
        return self._inner.read_page(pid)


class CorruptingPageFile:
    """A page file that silently corrupts the pages in *bad_pages*.

    Models bit rot / torn writes: the read *succeeds* but the payload is
    damaged, so detection is the decoder's job.
    """

    def __init__(self, inner: PageFile, bad_pages: set[int], *, seed: int = 0):
        self._inner = inner
        self._bad_pages = set(bad_pages)
        self._seed = seed

    @property
    def page_size(self) -> int:
        return self._inner.page_size

    @property
    def num_pages(self) -> int:
        return self._inner.num_pages

    def read_page(self, pid: int) -> bytes:
        data = self._inner.read_page(pid)
        if pid in self._bad_pages:
            return corrupt_page_bytes(data, seed=self._seed + pid)
        return data
