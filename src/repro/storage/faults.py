"""Fault injection for the storage layer.

Production storage code must fail loudly and recoverably.  This module
provides two generations of tooling for exercising exactly that:

* the original ad-hoc wrappers — :class:`FlakyPageFile` (reads fail per a
  predicate) and :class:`CorruptingPageFile` (reads silently return
  damaged bytes) — still used by targeted unit tests;
* a declarative, **seeded** fault subsystem built around
  :class:`FaultPlan`: a reproducible description of *which* page reads
  misbehave and *how* (latency spikes, transient read errors, torn
  pages, dropped completion callbacks, device stalls).  One plan drives
  both execution paths — :class:`FaultyPageFile` injects real faults
  (sleeps, raised errors, corrupted bytes) under the threaded engine,
  while :class:`RecoveringLoader` replays the *same* decisions in
  virtual time for the simulated engine, so differential tests can pit
  the two against each other under identical adversity.

Determinism is the design center: every decision is a pure function of
``(seed, kind, pid, attempt)``, never of shared RNG state, so thread
interleaving cannot change what faults fire, and the canonical event
trace (:meth:`FaultEventLog.trace`) is byte-identical across runs with
the same plan.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import ConfigurationError, DeviceError, FaultExhaustedError, PageFormatError
from repro.storage.page import PageRecord
from repro.storage.pagefile import PageFile

__all__ = [
    "FAULT_KINDS",
    "CorruptingPageFile",
    "FaultAction",
    "FaultEventLog",
    "FaultPlan",
    "FaultSpec",
    "FaultyPageFile",
    "FlakyPageFile",
    "RecoveringLoader",
    "RetryPolicy",
    "corrupt_page_bytes",
]

#: Recognized fault kinds, in injection order when several fire at once.
#:
#: ``latency``          — the read succeeds after an extra delay;
#: ``transient``        — the read raises :class:`DeviceError`;
#: ``torn``             — the read returns corrupted page bytes (the
#:                        slotted-page decoder must detect them);
#: ``dropped_callback`` — an async read completes but its completion
#:                        callback is lost (ThreadedSSD path only);
#: ``stall``            — the device stops responding for ``delay``
#:                        seconds (long enough to trip a read timeout).
FAULT_KINDS = ("latency", "transient", "torn", "dropped_callback", "stall")

#: Metric names shared by every injector / recovery layer, so the same
#: counters appear in a RunReport regardless of which engine ran.
INJECTED_METRIC = "faults.injected"
RETRIES_METRIC = "recovery.retries"
TIMEOUTS_METRIC = "recovery.timeouts"
FALLBACKS_METRIC = "recovery.fallbacks"
GIVEUPS_METRIC = "recovery.giveups"


def corrupt_page_bytes(data: bytes, *, seed: int = 0) -> bytes:
    """Return *data* with its slot directory scrambled.

    Overwrites the tail (where the slot offsets live) with out-of-range
    values, which :meth:`SlottedPage.from_bytes` must reject.
    """
    rng = random.Random(seed)
    corrupted = bytearray(data)
    for index in range(1, min(9, len(corrupted)), 2):
        corrupted[-index] = rng.randrange(200, 256)
    return bytes(corrupted)


# ---------------------------------------------------------------------------
# Declarative fault plans
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault rule inside a :class:`FaultPlan`.

    A rule targets either an explicit frozen set of *pages* or, when
    ``pages`` is ``None``, every page independently with probability
    *rate* (decided deterministically from the plan seed).  An affected
    page misbehaves on its first *times* read attempts and then heals —
    ``times`` larger than any retry budget models a permanent fault.
    *delay* is the injected latency in seconds for the ``latency`` and
    ``stall`` kinds.
    """

    kind: str
    rate: float = 0.0
    pages: frozenset[int] | None = None
    times: int = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(FAULT_KINDS)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError("fault rate must be in [0, 1]")
        if self.times < 1:
            raise ConfigurationError("fault times must be >= 1")
        if self.delay < 0:
            raise ConfigurationError("fault delay must be >= 0")
        if self.kind in ("latency", "stall") and self.delay == 0:
            raise ConfigurationError(f"{self.kind} faults need a positive delay")
        if self.pages is not None:
            object.__setattr__(self, "pages", frozenset(int(p) for p in self.pages))


@dataclass(frozen=True)
class FaultAction:
    """One concrete fault to apply to one read attempt."""

    kind: str
    delay: float = 0.0


class FaultEventLog:
    """Thread-safe record of injected faults and recovery actions.

    Events are appended from whichever thread observes them (the SSD
    reader pool, the callback thread, the main thread's fallback path),
    so arrival order is nondeterministic; :meth:`trace` therefore
    canonicalizes by sorting, making the exported trace a pure function
    of the fault plan — byte-identical across runs with the same seed.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[tuple] = []

    def record(self, event: str, kind: str, pid: int, attempt: int) -> None:
        with self._lock:
            self._events.append((event, kind, int(pid), int(attempt)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def trace(self) -> tuple[tuple, ...]:
        """The canonical (sorted) event trace."""
        with self._lock:
            return tuple(sorted(self._events))

    def counts(self) -> dict[str, int]:
        """``{"inject:transient": n, "retry": m, ...}`` aggregate counts."""
        out: dict[str, int] = {}
        for event, kind, _pid, _attempt in self.trace():
            key = f"{event}:{kind}" if event == "inject" else event
            out[key] = out.get(key, 0) + 1
        return out


class FaultPlan:
    """A seeded, declarative schedule of storage faults.

    The plan never mutates: :meth:`actions` is a pure function of
    ``(pid, attempt)``, so the sync loader, the threaded SSD's reader
    pool, and a timed-out read's fallback path all see one consistent
    adversary.  The plan's :attr:`log` accumulates every injection and
    recovery event for the determinism tests and the CLI summary.
    """

    def __init__(self, specs: Iterable[FaultSpec], *, seed: int = 0):
        self.specs = tuple(specs)
        self.seed = int(seed)
        self.log = FaultEventLog()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = ",".join(spec.kind for spec in self.specs)
        return f"FaultPlan(seed={self.seed}, specs=[{kinds}])"

    # -- deterministic decisions ---------------------------------------------

    def _fires_on_page(self, spec: FaultSpec, pid: int) -> bool:
        if spec.pages is not None:
            return pid in spec.pages
        if spec.rate <= 0.0:
            return False
        # Hash-style decision: independent of call order and thread
        # interleaving, reproducible from (seed, kind, pid) alone.
        return random.Random(f"{self.seed}:{spec.kind}:{pid}").random() < spec.rate

    def actions(self, pid: int, attempt: int) -> tuple[FaultAction, ...]:
        """The faults that fire on read *attempt* of page *pid*."""
        fired = [
            FaultAction(spec.kind, spec.delay)
            for spec in self.specs
            if attempt < spec.times and self._fires_on_page(spec, pid)
        ]
        fired.sort(key=lambda action: FAULT_KINDS.index(action.kind))
        return tuple(fired)

    def affected_pages(self, kind: str, num_pages: int) -> frozenset[int]:
        """Every page id below *num_pages* that *kind* faults will hit."""
        return frozenset(
            pid
            for pid in range(num_pages)
            for spec in self.specs
            if spec.kind == kind and self._fires_on_page(spec, pid)
        )

    def kinds(self) -> frozenset[str]:
        return frozenset(spec.kind for spec in self.specs)

    @property
    def needs_timeout(self) -> bool:
        """True when the plan loses completions (drop / stall faults)."""
        return bool(self.kinds() & {"dropped_callback", "stall"})


@dataclass(frozen=True)
class RetryPolicy:
    """Retry, backoff, and timeout knobs of the recovery layer.

    ``backoff(pid, attempt)`` is deterministic — the jitter fraction is
    hashed from ``(seed, pid, attempt)`` rather than drawn from shared
    RNG state — so recovery timing (and therefore every simulated-time
    figure) reproduces exactly under a fixed plan.
    """

    max_retries: int = 3
    backoff_base: float = 0.0005
    backoff_factor: float = 2.0
    jitter: float = 0.5
    timeout: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base < 0 or self.backoff_factor < 1.0:
            raise ConfigurationError("backoff must be non-negative and non-shrinking")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError("jitter must be in [0, 1]")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("timeout must be positive")

    def backoff(self, pid: int, attempt: int) -> float:
        """Deterministic exponential backoff with jitter, in seconds."""
        base = self.backoff_base * (self.backoff_factor ** attempt)
        if self.jitter == 0.0:
            return base
        u = random.Random(f"{self.seed}:backoff:{pid}:{attempt}").random()
        return base * (1.0 + self.jitter * u)


# ---------------------------------------------------------------------------
# Real-path injector (on-disk page files, the threaded engine)
# ---------------------------------------------------------------------------


class FaultyPageFile:
    """A page file whose reads misbehave per a :class:`FaultPlan`.

    Handles the *synchronous* fault kinds: ``latency`` / ``stall`` sleep
    for real, ``transient`` raises :class:`DeviceError`, ``torn``
    returns corrupted bytes.  ``dropped_callback`` faults are the
    asynchronous device's concern (:class:`~repro.storage.ssd.ThreadedSSD`
    consults the same plan); this wrapper ignores them.

    Per-page attempt counts persist across readers, so a retry (from any
    thread) observes the next attempt number and a ``times``-bounded
    fault eventually heals.
    """

    def __init__(self, inner: PageFile, plan: FaultPlan, *,
                 sleep: Callable[[float], None] = time.sleep,
                 tracer=None):
        self._inner = inner
        self.plan = plan
        self._sleep = sleep
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self._lock = threading.Lock()
        self._attempts: dict[int, int] = {}

    @property
    def page_size(self) -> int:
        return self._inner.page_size

    @property
    def num_pages(self) -> int:
        return self._inner.num_pages

    def attempts_of(self, pid: int) -> int:
        with self._lock:
            return self._attempts.get(pid, 0)

    def read_page(self, pid: int) -> bytes:
        with self._lock:
            attempt = self._attempts.get(pid, 0)
            self._attempts[pid] = attempt + 1
        torn = False
        for action in self.plan.actions(pid, attempt):
            if self._tracer is not None:
                self._tracer.instant("fault.inject", kind=action.kind,
                                     pid=pid, attempt=attempt)
            if action.kind in ("latency", "stall"):
                self.plan.log.record("inject", action.kind, pid, attempt)
                self._sleep(action.delay)
            elif action.kind == "transient":
                self.plan.log.record("inject", "transient", pid, attempt)
                raise DeviceError(
                    f"injected transient fault on page {pid} (attempt {attempt})"
                )
            elif action.kind == "torn":
                self.plan.log.record("inject", "torn", pid, attempt)
                torn = True
        data = self._inner.read_page(pid)
        if torn:
            return corrupt_page_bytes(data, seed=self.plan.seed + pid)
        return data


# ---------------------------------------------------------------------------
# Virtual-path injector + recovery (the simulated engine's page loader)
# ---------------------------------------------------------------------------


class RecoveringLoader:
    """Fault injection and recovery in *virtual* time, for the simulator.

    Wraps a page-decoding function (``decode(pid) -> records``, e.g.
    :meth:`GraphStore.decode_page`).  Each load replays the plan's
    decisions for consecutive attempts, retrying per *policy* without
    sleeping: injected latency and backoff pauses are *accumulated*
    instead, and the OPT driver charges them to the run trace so the
    discrete-event scheduler extends the simulated timeline exactly as a
    real device would have.  When a page stays faulty past the retry
    budget the loader raises :class:`FaultExhaustedError` — the typed
    terminal error, never a silent wrong answer.
    """

    def __init__(
        self,
        decode: Callable[[int], list[PageRecord]],
        plan: FaultPlan,
        policy: RetryPolicy | None = None,
        *,
        registry=None,
        tracer=None,
    ):
        from repro.obs import MetricsRegistry

        self._decode = decode
        self.plan = plan
        self.policy = policy if policy is not None else RetryPolicy()
        self._tracer = tracer if tracer is not None and tracer.enabled else None
        self.registry = registry if registry is not None else MetricsRegistry()
        self._retries = self.registry.counter(RETRIES_METRIC)
        self._giveups = self.registry.counter(GIVEUPS_METRIC)
        self._attempts: dict[int, int] = {}
        self._pending_delay = 0.0

    def take_delay(self) -> float:
        """Drain the virtual seconds accumulated since the last call."""
        delay, self._pending_delay = self._pending_delay, 0.0
        return delay

    def _attempt_once(self, pid: int, attempt: int) -> list[PageRecord]:
        """One read attempt: apply the plan's actions, then decode."""
        torn = False
        for action in self.plan.actions(pid, attempt):
            if self._tracer is not None and action.kind != "dropped_callback":
                # Wall-clocked marker: a sim-mode tracer drops it (the
                # deterministic ``fault.delay`` events come from the
                # scheduler's replay of the charged virtual delay).
                self._tracer.instant("fault.inject", kind=action.kind,
                                     pid=pid, attempt=attempt)
            if action.kind in ("latency", "stall"):
                self.plan.log.record("inject", action.kind, pid, attempt)
                self._pending_delay += action.delay
            elif action.kind == "transient":
                self.plan.log.record("inject", "transient", pid, attempt)
                raise DeviceError(
                    f"injected transient fault on page {pid} (attempt {attempt})"
                )
            elif action.kind == "torn":
                self.plan.log.record("inject", "torn", pid, attempt)
                torn = True
            # dropped_callback has no synchronous-read meaning: skip.
        records = self._decode(pid)
        if torn:
            raise PageFormatError(
                f"injected torn page {pid} (attempt {attempt})"
            )
        return records

    def __call__(self, pid: int) -> list[PageRecord]:
        """Load page *pid* with retry + backoff; BufferManager's loader."""
        failures = 0
        while True:
            attempt = self._attempts.get(pid, 0)
            self._attempts[pid] = attempt + 1
            try:
                return self._attempt_once(pid, attempt)
            except (DeviceError, PageFormatError) as exc:
                failures += 1
                if failures > self.policy.max_retries:
                    self._giveups.inc()
                    self.plan.log.record("giveup", "terminal", pid, attempt)
                    raise FaultExhaustedError(
                        f"page {pid} still failing after "
                        f"{self.policy.max_retries} retries: {exc}",
                        pid=pid, attempts=failures,
                    ) from exc
                self._retries.inc()
                self.plan.log.record("retry", "retry", pid, attempt)
                self._pending_delay += self.policy.backoff(pid, failures - 1)


# ---------------------------------------------------------------------------
# Legacy ad-hoc wrappers (kept for targeted unit tests)
# ---------------------------------------------------------------------------


class FlakyPageFile:
    """A page file whose reads fail according to *should_fail*.

    ``should_fail(pid, attempt)`` is consulted on every read; returning
    true raises :class:`DeviceError`.  ``attempts`` counts reads per page
    so tests can model transient faults ("fail the first two tries").
    """

    def __init__(self, inner: PageFile, should_fail: Callable[[int, int], bool]):
        self._inner = inner
        self._should_fail = should_fail
        self.attempts: dict[int, int] = {}

    @property
    def page_size(self) -> int:
        return self._inner.page_size

    @property
    def num_pages(self) -> int:
        return self._inner.num_pages

    def read_page(self, pid: int) -> bytes:
        attempt = self.attempts.get(pid, 0)
        self.attempts[pid] = attempt + 1
        if self._should_fail(pid, attempt):
            raise DeviceError(f"injected read fault on page {pid} "
                              f"(attempt {attempt})")
        return self._inner.read_page(pid)


class CorruptingPageFile:
    """A page file that silently corrupts the pages in *bad_pages*.

    Models bit rot / torn writes: the read *succeeds* but the payload is
    damaged, so detection is the decoder's job.
    """

    def __init__(self, inner: PageFile, bad_pages: set[int], *, seed: int = 0):
        self._inner = inner
        self._bad_pages = set(bad_pages)
        self._seed = seed

    @property
    def page_size(self) -> int:
        return self._inner.page_size

    @property
    def num_pages(self) -> int:
        return self._inner.num_pages

    def read_page(self, pid: int) -> bytes:
        data = self._inner.read_page(pid)
        if pid in self._bad_pages:
            return corrupt_page_bytes(data, seed=self._seed + pid)
        return data
