"""Asynchronous file writing.

Table 3 of the paper credits OPT's low output-writing time to overlapping
write I/O with CPU processing; :class:`AsyncFile` realizes that: a
file-like object whose ``write`` enqueues the buffer and returns
immediately, while a background thread drains the queue to disk
(``write`` calls release the GIL, so the overlap is real).  Errors on the
writer thread surface on the next ``write``/``close``.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path

from repro.errors import DeviceError

__all__ = ["AsyncFile"]


class AsyncFile:
    """A write-only file object with a background writer thread."""

    _SHUTDOWN = object()

    def __init__(self, path: str | Path, *, max_queued: int = 64):
        self._handle = open(path, "wb")
        self._queue: queue.Queue = queue.Queue(maxsize=max_queued)
        self._failure_lock = threading.Lock()
        self._failure: BaseException | None = None
        self._closed = False
        self.bytes_written = 0
        self.chunks_written = 0
        self._thread = threading.Thread(target=self._drain, name="async-writer",
                                        daemon=True)
        self._thread.start()

    # -- file-like API -------------------------------------------------------

    def write(self, data: bytes) -> int:
        """Enqueue *data* for the writer thread; returns ``len(data)``."""
        self._check()
        if self._closed:
            raise DeviceError("write after close")
        self._queue.put(bytes(data))
        return len(data)

    def flush(self) -> None:
        """Block until everything queued so far has reached the file."""
        self._check()
        self._queue.join()
        self._check()
        try:
            self._handle.flush()
        except (OSError, ValueError) as exc:
            raise DeviceError("flush failed") from exc

    def close(self) -> None:
        """Drain the queue, stop the thread, close the file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(self._SHUTDOWN)
        self._thread.join(timeout=10)
        self._handle.close()
        self._check()

    def __enter__(self) -> "AsyncFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals -------------------------------------------------------------

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is self._SHUTDOWN:
                    return
                try:
                    self._handle.write(item)
                    self.bytes_written += len(item)
                    self.chunks_written += 1
                # The drain loop must never die silently: anything the
                # write raises is parked for the next _check() on the
                # main thread.  # lint: ignore[error-types]
                except BaseException as exc:
                    with self._failure_lock:
                        self._failure = exc
            finally:
                self._queue.task_done()

    def _check(self) -> None:
        with self._failure_lock:
            failure, self._failure = self._failure, None
        if failure is not None:
            raise DeviceError("asynchronous write failed") from failure
