"""The Executor × Kernel × Source composition layer.

Every triangulation path in this repository is, structurally, the same
computation: enumerate edges ``(u, v)`` with ``u`` preceding ``v``,
intersect the successor lists, emit the completions.  What actually
varies is three independent axes (the factorization the paper itself
uses — iterator model × internal/external split × buffer policy, and
the per-pair kernel choice AOT argues for):

* **Source** — where successor lists come from: an in-memory CSR, a
  shared-memory CSR attachable across processes, or a paged disk store
  read through a buffer manager (:mod:`repro.exec.sources`);
* **Kernel** — how two sorted lists are intersected and how the Eq. 3
  operation count is charged: analytic hash probes, two-pointer merge,
  galloping search, a dense bitmap, or the range-pruned adaptive
  selector over all three data paths (:mod:`repro.exec.kernels`);
* **Executor** — who drives the vertex ranges: a serial loop, a thread
  pool, or a forked process pool over shared memory
  (:mod:`repro.exec.executors`).

:func:`compose` assembles one cell of that cube into an
:class:`Engine`; :mod:`repro.exec.registry` names every axis member,
declares which cells are valid (and why the rest are not), and feeds
both the generated scenario-matrix test grid
(``tests/test_scenario_matrix.py``) and ``repro verify``.  The
``engine-composition`` lint rule closes the loop: a triangulation entry
point that is not registered here fails static analysis, so no engine
can silently escape the differential harness.
"""

from repro.exec.engine import Engine, EngineOutcome, compose, run_range, split_ranges
from repro.exec.executors import ProcessExecutor, SerialExecutor, ThreadedExecutor
from repro.exec.kernels import (
    AdaptiveKernel,
    BitmapKernel,
    GallopKernel,
    HashKernel,
    Kernel,
    MergeKernel,
)
from repro.exec.protocols import Executor, Source, SourceHandle
from repro.exec.registry import (
    EXECUTORS,
    KERNELS,
    REGISTERED_ENTRY_POINTS,
    SOURCES,
    CellSpec,
    cell_validity,
    iter_cells,
    make_executor,
    make_kernel,
    make_source,
    valid_cells,
)
from repro.exec.sources import DiskSource, MemorySource, SharedMemorySource

__all__ = [
    "AdaptiveKernel",
    "BitmapKernel",
    "CellSpec",
    "DiskSource",
    "EXECUTORS",
    "Engine",
    "EngineOutcome",
    "Executor",
    "GallopKernel",
    "HashKernel",
    "KERNELS",
    "Kernel",
    "MemorySource",
    "MergeKernel",
    "ProcessExecutor",
    "REGISTERED_ENTRY_POINTS",
    "SOURCES",
    "SerialExecutor",
    "SharedMemorySource",
    "Source",
    "SourceHandle",
    "ThreadedExecutor",
    "cell_validity",
    "compose",
    "iter_cells",
    "make_executor",
    "make_kernel",
    "make_source",
    "run_range",
    "split_ranges",
    "valid_cells",
]
