"""Intersection kernels: the Kernel axis of the composition layer.

Four strategies, all operating on sorted duplicate-free id arrays and
all returning ``(common, ops)``:

* ``hash`` — the canonical Eq. 3 kernel: the fast numpy intersection
  with the analytic hash-probe charge ``min(|a|, |b|)``.  This is
  byte-for-byte the accounting of the historical
  :func:`repro.memory.edge_iterator.edge_iterator` numpy path, which is
  now a façade over this kernel.
* ``merge`` — two-pointer merge; charges measured element comparisons.
* ``gallop`` — exponential search; efficient under degree skew, the
  AOT-style alternative for ``|a| ≪ |b|``.
* ``bitmap`` — dense boolean mask over the vertex space, the
  matrix/bitmap strategy: mark the longer list, probe the shorter.
  Charges the same analytic ``min(|a|, |b|)`` as ``hash`` (one probe
  per shorter-side member), so bitmap cells cross-check the Eq. 3
  conservation property through a completely different data path.

Kernels are stateless and picklable by *name* (the process executor
re-resolves them in workers via :mod:`repro.exec.registry`); per-graph
scratch state lives in the binding returned by ``bind()``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.intersect import (
    gallop_intersect,
    intersect_count_ops,
    intersect_sorted,
    merge_intersect,
)

__all__ = ["BitmapKernel", "GallopKernel", "HashKernel", "Kernel", "MergeKernel"]


class Kernel:
    """Base: a named intersection strategy.

    Subclasses override :meth:`bind` (stateful kernels) or
    :meth:`_intersect` (stateless ones).
    """

    name = "abstract"

    def bind(self, num_vertices: int) -> "KernelBinding":
        return KernelBinding(self)

    def _intersect(self, a, b: np.ndarray) -> tuple[Sequence[int], int]:
        raise NotImplementedError

    def _prep(self, row: np.ndarray):
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name}>"


class KernelBinding:
    """Default binding: delegate straight to the kernel's methods.

    Bindings carry their kernel's ``name`` so attribution scopes can be
    labelled from whichever object a caller holds.
    """

    def __init__(self, kernel: Kernel):
        self._kernel = kernel
        self.name = kernel.name

    def prep(self, row: np.ndarray):
        return self._kernel._prep(row)

    def intersect(self, prepped, row: np.ndarray) -> tuple[Sequence[int], int]:
        return self._kernel._intersect(prepped, row)


class HashKernel(Kernel):
    """Numpy intersection charged with the analytic Eq. 3 probe count."""

    name = "hash"

    def _intersect(self, a: np.ndarray, b: np.ndarray) -> tuple[Sequence[int], int]:
        common = intersect_sorted(a, b)
        return common, intersect_count_ops(len(a), len(b))


class MergeKernel(Kernel):
    """Two-pointer merge over python lists; measured comparison count."""

    name = "merge"

    def _prep(self, row: np.ndarray) -> list[int]:
        return row.tolist()

    def _intersect(self, a: list[int], b: np.ndarray) -> tuple[Sequence[int], int]:
        return merge_intersect(a, b.tolist())


class GallopKernel(Kernel):
    """Galloping/exponential search; measured comparison count."""

    name = "gallop"

    def _prep(self, row: np.ndarray) -> list[int]:
        return row.tolist()

    def _intersect(self, a: list[int], b: np.ndarray) -> tuple[Sequence[int], int]:
        return gallop_intersect(a, b.tolist())


class BitmapKernel(Kernel):
    """Dense bitmap probe with the analytic Eq. 3 charge.

    The binding owns one boolean scratch array sized to the graph; each
    pair marks the longer list, probes the shorter against the mask,
    and unmarks — O(|a| + |b|) work but only ``min(|a|, |b|)`` charged
    probes, mirroring how the paper charges its O(1)-membership model
    regardless of the structure backing it.
    """

    name = "bitmap"

    def bind(self, num_vertices: int) -> "KernelBinding":
        return _BitmapBinding(num_vertices)


class _BitmapBinding:
    name = "bitmap"

    def __init__(self, num_vertices: int):
        self._mask = np.zeros(num_vertices, dtype=bool)

    def prep(self, row: np.ndarray) -> np.ndarray:
        return row

    def intersect(self, a: np.ndarray, b: np.ndarray) -> tuple[Sequence[int], int]:
        if len(a) == 0 or len(b) == 0:
            return (), min(len(a), len(b))
        shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
        mask = self._mask
        mask[longer] = True
        common = shorter[mask[shorter]]
        mask[longer] = False
        return common, len(shorter)
