"""Intersection kernels: the Kernel axis of the composition layer.

Five strategies, all operating on sorted duplicate-free id arrays and
all returning ``(common, ops)``:

* ``hash`` — the canonical Eq. 3 kernel: the fast numpy intersection
  with the analytic hash-probe charge ``min(|a|, |b|)``.  This is
  byte-for-byte the accounting of the historical
  :func:`repro.memory.edge_iterator.edge_iterator` numpy path, which is
  now a façade over this kernel.
* ``merge`` — two-pointer merge; charges measured element comparisons.
* ``gallop`` — exponential search; efficient under degree skew, the
  AOT-style alternative for ``|a| ≪ |b|``.
* ``bitmap`` — dense boolean mask over the vertex space, the
  matrix/bitmap strategy: mark the longer list, probe the shorter.
  Charges the same analytic ``min(|a|, |b|)`` as ``hash`` (one probe
  per shorter-side member), so bitmap cells cross-check the Eq. 3
  conservation property through a completely different data path.
* ``adaptive`` — AOT-style per-pair selection: range-prune both lists,
  charge the Eq. 3 min over the *pruned* lists (≤ every fixed kernel's
  charge, strictly below on partial range overlap), then route the pair
  to the merge / gallop / bitmap data path by pruned skew ratio.  See
  ``docs/kernels.md`` for the selection rule and thresholds.

Kernels are stateless and picklable by *name* (the process executor
re-resolves them in workers via :mod:`repro.exec.registry`); per-graph
scratch state lives in the binding returned by ``bind()``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.intersect import (
    adaptive_intersect_detail,
    gallop_intersect,
    intersect_count_ops,
    intersect_sorted,
    merge_intersect,
)

__all__ = ["AdaptiveKernel", "BitmapKernel", "GallopKernel", "HashKernel",
           "Kernel", "MergeKernel"]


class Kernel:
    """Base: a named intersection strategy.

    Subclasses override :meth:`bind` (stateful kernels) or
    :meth:`_intersect` (stateless ones).
    """

    name = "abstract"

    def bind(self, num_vertices: int) -> "KernelBinding":
        return KernelBinding(self)

    def _intersect(self, a, b: np.ndarray) -> tuple[Sequence[int], int]:
        raise NotImplementedError

    def _prep(self, row: np.ndarray):
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name}>"


class KernelBinding:
    """Default binding: delegate straight to the kernel's methods.

    Bindings carry their kernel's ``name`` so attribution scopes can be
    labelled from whichever object a caller holds.
    """

    def __init__(self, kernel: Kernel):
        self._kernel = kernel
        self.name = kernel.name

    def prep(self, row: np.ndarray):
        return self._kernel._prep(row)

    def intersect(self, prepped, row: np.ndarray) -> tuple[Sequence[int], int]:
        return self._kernel._intersect(prepped, row)

    def stats(self) -> dict[str, list[int]]:
        """Per-branch ``{branch: [pairs, ops]}`` — empty for fixed-path
        kernels; the adaptive binding reports its selector's decisions."""
        return {}


class HashKernel(Kernel):
    """Numpy intersection charged with the analytic Eq. 3 probe count."""

    name = "hash"

    def _intersect(self, a: np.ndarray, b: np.ndarray) -> tuple[Sequence[int], int]:
        common = intersect_sorted(a, b)
        return common, intersect_count_ops(len(a), len(b))


class MergeKernel(Kernel):
    """Two-pointer merge over python lists; measured comparison count."""

    name = "merge"

    def _prep(self, row: np.ndarray) -> list[int]:
        return row.tolist()

    def _intersect(self, a: list[int], b: np.ndarray) -> tuple[Sequence[int], int]:
        return merge_intersect(a, b.tolist())


class GallopKernel(Kernel):
    """Galloping/exponential search; measured comparison count."""

    name = "gallop"

    def _prep(self, row: np.ndarray) -> list[int]:
        return row.tolist()

    def _intersect(self, a: list[int], b: np.ndarray) -> tuple[Sequence[int], int]:
        return gallop_intersect(a, b.tolist())


class BitmapKernel(Kernel):
    """Dense bitmap probe with the analytic Eq. 3 charge.

    The binding owns one boolean scratch array sized to the graph; each
    pair marks the longer list, probes the shorter against the mask,
    and unmarks — O(|a| + |b|) work but only ``min(|a|, |b|)`` charged
    probes, mirroring how the paper charges its O(1)-membership model
    regardless of the structure backing it.
    """

    name = "bitmap"

    def bind(self, num_vertices: int) -> "KernelBinding":
        return _BitmapBinding(num_vertices)


class _BitmapBinding:
    name = "bitmap"

    def __init__(self, num_vertices: int):
        self._mask = np.zeros(num_vertices, dtype=bool)

    def prep(self, row: np.ndarray) -> np.ndarray:
        return row

    def intersect(self, a: np.ndarray, b: np.ndarray) -> tuple[Sequence[int], int]:
        if len(a) == 0 or len(b) == 0:
            return (), min(len(a), len(b))
        shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
        mask = self._mask
        mask[longer] = True
        common = shorter[mask[shorter]]
        mask[longer] = False
        return common, len(shorter)

    def stats(self) -> dict[str, list[int]]:
        return {}


class AdaptiveKernel(Kernel):
    """Range-pruned per-pair strategy selection (AOT-style).

    Every pair is first range-pruned (each list restricted to the
    other's ``[min, max]`` span) and charged the Eq. 3 min over the
    *pruned* lists — ≤ the hash kernel's ``min(|a|, |b|)`` always,
    strictly below it whenever successor ranges only partially overlap.
    The pruned skew ratio then routes the pair to merge / gallop /
    bitmap data paths (see
    :func:`repro.util.intersect.adaptive_intersect_detail`); the binding
    owns the graph-sized bitmap scratch mask and tallies pairs and ops
    per branch, which the engine surfaces as the labelled
    ``exec.branch.*`` counters.
    """

    name = "adaptive"

    def bind(self, num_vertices: int) -> "KernelBinding":
        return _AdaptiveBinding(num_vertices)


class _AdaptiveBinding:
    name = "adaptive"

    def __init__(self, num_vertices: int):
        self._mask = np.zeros(num_vertices, dtype=bool)
        self._branches: dict[str, list[int]] = {}

    def prep(self, row: np.ndarray) -> np.ndarray:
        return row

    def intersect(self, a: np.ndarray, b: np.ndarray) -> tuple[Sequence[int], int]:
        common, ops, branch = adaptive_intersect_detail(a, b, self._mask)
        cell = self._branches.get(branch)
        if cell is None:
            cell = self._branches[branch] = [0, 0]
        cell[0] += 1
        cell[1] += ops
        return common, ops

    def stats(self) -> dict[str, list[int]]:
        return {branch: list(cell) for branch, cell in self._branches.items()}
