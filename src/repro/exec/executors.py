"""Execution strategies: the Executor axis of the composition layer.

All three executors run the same :func:`repro.exec.engine.run_range`
loop and merge chunk results in range order, so triangles, op counts,
and emitted groups are identical across the axis — only wall time and
I/O locality differ.  That invariance is what the scenario matrix's
conservation checks pin down.

* :class:`SerialExecutor` — one range, one loop; the reference cell.
* :class:`ThreadedExecutor` — a thread pool over oversubscribed vertex
  ranges.  Under CPython this overlaps I/O (the disk source's page
  reads) rather than CPU, mirroring the paper's threaded OPT; each task
  reads through ``fork_local()`` so stateful read paths stay
  single-threaded internally.
* :class:`ProcessExecutor` — a forked pool attaching the source's
  shared-memory CSR per task.  Requires a shareable source; the
  registry marks other combinations invalid rather than pickling whole
  graphs across the boundary.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

from repro.errors import ConfigurationError
from repro.exec.engine import EngineOutcome, run_range, split_ranges
from repro.exec.protocols import Kernel, Source

__all__ = ["OVERSUBSCRIPTION", "ProcessExecutor", "SerialExecutor",
           "ThreadedExecutor"]

#: Chunks per worker — same 4x morphing sweet spot as
#: :mod:`repro.parallel.chunks`.
OVERSUBSCRIPTION = 4


def _merge_io(totals: dict[str, int], stats: dict[str, int]) -> None:
    for key, value in stats.items():
        totals[key] = totals.get(key, 0) + int(value)


def _merge_branches(totals: dict[str, list[int]],
                    stats: dict[str, list[int]]) -> None:
    """Fold one binding's ``{branch: [pairs, ops]}`` tally into *totals*.

    Integer sums, so the merged tally is independent of chunking and
    scheduling — the same invariance the op-conservation checks pin.
    """
    for branch, (pairs, ops) in stats.items():
        cell = totals.get(branch)
        if cell is None:
            totals[branch] = [int(pairs), int(ops)]
        else:
            cell[0] += int(pairs)
            cell[1] += int(ops)


def _scope_for(attribution, source: Source, kernel: Kernel):
    """The ``(exec, kernel, source)`` charging scope, or ``None``.

    Every executor charges the same coordinate, so the merged table is
    identical across the executor axis — the attribution analogue of the
    triangles/ops invariance the scenario matrix pins.
    """
    if attribution is None:
        return None
    return attribution.scope(phase="exec", kernel=kernel.name,
                             source=source.name)


class SerialExecutor:
    """The whole vertex range in one in-process loop."""

    name = "serial"
    requires_shareable = False

    def execute(self, source: Source, kernel: Kernel, *,
                collect: bool, attribution=None) -> EngineOutcome:
        with source.open() as handle:
            binding = kernel.bind(handle.num_vertices)
            triangles, ops, groups = run_range(
                handle, binding, 0, handle.num_vertices, collect,
                scope=_scope_for(attribution, source, kernel))
            return EngineOutcome(triangles=triangles, cpu_ops=ops,
                                 groups=groups, chunks=1,
                                 io=dict(handle.io_stats()),
                                 branches=binding.stats())


class ThreadedExecutor:
    """A thread pool over oversubscribed contiguous vertex ranges."""

    name = "threaded"
    requires_shareable = False

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers

    def execute(self, source: Source, kernel: Kernel, *,
                collect: bool, attribution=None) -> EngineOutcome:
        from repro.obs.attribution import Attribution

        with source.open() as handle:
            ranges = split_ranges(handle.num_vertices,
                                  self.workers * OVERSUBSCRIPTION)
            if not ranges:
                return EngineOutcome(io=dict(handle.io_stats()))
            num_vertices = handle.num_vertices

            def job(bounds: tuple[int, int]):
                lo, hi = bounds
                local = handle.fork_local()
                binding = kernel.bind(num_vertices)
                # Each task charges its own table; the parent folds them
                # in range order — integer cells sum, so the merged
                # table is independent of scheduling and worker count.
                table = Attribution() if attribution is not None else None
                triangles, ops, groups = run_range(
                    local, binding, lo, hi, collect,
                    scope=_scope_for(table, source, kernel))
                return (triangles, ops, groups, local.io_stats(), table,
                        binding.stats())

            outcome = EngineOutcome(chunks=len(ranges))
            with ThreadPoolExecutor(max_workers=self.workers) as pool:
                for (triangles, ops, groups, stats, table,
                     branches) in pool.map(job, ranges):
                    outcome.triangles += triangles
                    outcome.cpu_ops += ops
                    outcome.groups.extend(groups)
                    _merge_io(outcome.io, stats)
                    _merge_branches(outcome.branches, branches)
                    if table is not None:
                        attribution.merge(table)
            return outcome


def _process_job(args) -> tuple[int, int, list, dict | None, dict]:
    """Forked worker body: attach, run one range, detach.

    *attr_source* is the source name to attribute under, or ``None``
    when the parent did not ask for attribution; the worker's table
    crosses the process boundary as a plain-dict snapshot, and the
    binding's per-branch tally as a plain dict.
    """
    csr_handle, kernel_name, lo, hi, collect, attr_source = args
    from repro.exec import registry
    from repro.obs.attribution import Attribution
    from repro.parallel.shm import SharedCSR

    shared = SharedCSR.attach(csr_handle)
    graph = None
    try:
        graph = shared.graph()
        kernel = registry.make_kernel(kernel_name)
        binding = kernel.bind(graph.num_vertices)
        table = Attribution() if attr_source is not None else None
        scope = (table.scope(phase="exec", kernel=kernel_name,
                             source=attr_source)
                 if table is not None else None)
        triangles, ops, groups = run_range(_AttachedHandle(graph), binding,
                                           lo, hi, collect, scope=scope)
        snapshot = table.snapshot() if table is not None else None
        return triangles, ops, groups, snapshot, binding.stats()
    finally:
        # Views into the shared buffers must die before close().
        graph = None
        shared.close()


class _AttachedHandle:
    """Minimal handle over a worker-side attached Graph."""

    def __init__(self, graph):
        self._graph = graph

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    def succ(self, u: int):
        return self._graph.n_succ(u)


class ProcessExecutor:
    """A forked process pool over a shareable (shared-memory) source."""

    name = "process"
    requires_shareable = True

    def __init__(self, workers: int = 2):
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self.workers = workers

    def execute(self, source: Source, kernel: Kernel, *,
                collect: bool, attribution=None) -> EngineOutcome:
        import multiprocessing as mp

        with source.open() as handle:
            csr_handle = handle.csr_handle()
            if csr_handle is None:
                raise ConfigurationError(
                    f"source {source.name!r} is not attachable across "
                    "processes; use the shared-memory source"
                )
            ranges = split_ranges(handle.num_vertices,
                                  self.workers * OVERSUBSCRIPTION)
            if not ranges:
                return EngineOutcome(io=dict(handle.io_stats()))
            attr_source = source.name if attribution is not None else None
            jobs = [(csr_handle, kernel.name, lo, hi, collect, attr_source)
                    for lo, hi in ranges]
            ctx = mp.get_context("fork")
            outcome = EngineOutcome(chunks=len(ranges))
            with ctx.Pool(processes=min(self.workers, len(jobs))) as pool:
                for (triangles, ops, groups, snapshot,
                     branches) in pool.map(_process_job, jobs):
                    outcome.triangles += triangles
                    outcome.cpu_ops += ops
                    outcome.groups.extend(groups)
                    _merge_branches(outcome.branches, branches)
                    if snapshot is not None:
                        attribution.merge_snapshot(snapshot)
            outcome.io = dict(handle.io_stats())
            return outcome
