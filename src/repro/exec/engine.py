"""The composed engine: one edge-iterator loop, three pluggable axes.

:func:`run_range` is the single triangle-listing loop every composition
executes — EdgeIterator≻ (Algorithm 2) over a half-open vertex range,
reading successor lists from a :class:`~repro.exec.protocols.SourceHandle`
and intersecting through a kernel binding.  Because every triangle is
listed at its minimum vertex, any partition of ``[0, n)`` enumerates
disjoint triangle sets, chunk results merge by concatenation in range
order, and the per-pair op charges are identical no matter who executes
which range — the conservation property the scenario matrix asserts.

:func:`compose` assembles ``(source, kernel, executor)`` — instances or
registry names — into an :class:`Engine` after validating the cell
against :func:`repro.exec.registry.cell_validity`, so an impossible
combination fails loudly with the same reason string the test grid
reports as a skip.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError
from repro.memory.base import TriangleSink, TriangulationResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec.protocols import Executor, Kernel, Source, SourceHandle

__all__ = ["Engine", "EngineOutcome", "compose", "run_range", "split_ranges"]

#: One emitted triangle group ``(u, v, (w, ...))`` — same shape as the
#: process-parallel engine's merge unit.
Group = tuple[int, int, tuple[int, ...]]


@dataclass
class EngineOutcome:
    """What an executor hands back to :meth:`Engine.run`."""

    triangles: int = 0
    cpu_ops: int = 0
    groups: list[Group] = field(default_factory=list)
    chunks: int = 0
    io: dict[str, int] = field(default_factory=dict)
    #: Per-branch ``{branch: [pairs, ops]}`` from the kernel bindings'
    #: ``stats()`` — empty for fixed-path kernels, populated by the
    #: adaptive kernel's selector.  Integer cells, so chunk results
    #: merge by summation regardless of executor.
    branches: dict[str, list[int]] = field(default_factory=dict)


def split_ranges(num_vertices: int, parts: int) -> list[tuple[int, int]]:
    """Split ``[0, num_vertices)`` into ≤ *parts* contiguous ranges.

    Plain equal-width vertex split: executor-agnostic, deterministic,
    and independent of the source (a disk handle cannot cheaply provide
    degree mass).  Work balance is the executor's concern — the chunk
    count oversubscribes the pool so fast workers absorb skew.
    """
    if parts < 1:
        raise ConfigurationError("parts must be >= 1")
    if num_vertices <= 0:
        return []
    parts = min(parts, num_vertices)
    bounds = [round(i * num_vertices / parts) for i in range(parts + 1)]
    return [(lo, hi) for lo, hi in zip(bounds, bounds[1:]) if hi > lo]


def run_range(
    handle: "SourceHandle",
    binding,
    lo: int,
    hi: int,
    collect: bool,
    scope=None,
) -> tuple[int, int, list[Group]]:
    """EdgeIterator≻ over ``[lo, hi)`` through one kernel binding.

    Charges exactly what the historical serial edge iterator charges for
    the same vertices: one kernel invocation per edge ``(u, v)`` with
    ``u`` in range, including pairs with empty intersections.

    *scope* is an optional
    :class:`~repro.obs.attribution.AttributionScope`; when given, every
    pair's op charge additionally lands in the degree bucket of
    ``min(|n_succ(u)|, |n_succ(v)|)`` — the probed side, the quantity
    Eq. 3 charges — so the attribution table's per-bucket sums conserve
    the returned ``ops`` exactly.
    """
    triangles = 0
    ops = 0
    groups: list[Group] = []
    # Per-bucket accumulator (bit_length -> [pairs, ops, triangles]):
    # plain dict updates in the pair loop, one bulk charge at the end —
    # a method call per pair would dominate the attributed run.
    counts: dict[int, list[int]] = {}
    for u in range(lo, hi):
        succ_u = handle.succ(u)
        deg_u = len(succ_u)
        if deg_u == 0:
            continue
        prepped = binding.prep(succ_u)
        if scope is None:
            for v in succ_u:
                v = int(v)
                common, pair_ops = binding.intersect(prepped, handle.succ(v))
                ops += pair_ops
                if len(common):
                    triangles += len(common)
                    if collect:
                        groups.append(
                            (u, v, tuple(int(w) for w in common)))
        else:
            for v in succ_u:
                v = int(v)
                succ_v = handle.succ(v)
                common, pair_ops = binding.intersect(prepped, succ_v)
                ops += pair_ops
                found = len(common)
                length = min(deg_u, len(succ_v)).bit_length()
                cell = counts.get(length)
                if cell is None:
                    cell = counts[length] = [0, 0, 0]
                cell[0] += 1
                cell[1] += pair_ops
                cell[2] += found
                if found:
                    triangles += found
                    if collect:
                        groups.append(
                            (u, v, tuple(int(w) for w in common)))
    if scope is not None and counts:
        scope.charge_lengths(counts)
    return triangles, ops, groups


@dataclass(frozen=True)
class Engine:
    """One cell of the Source × Kernel × Executor cube, ready to run."""

    source: "Source"
    kernel: "Kernel"
    executor: "Executor"

    @property
    def cell(self) -> tuple[str, str, str]:
        """The registry coordinates ``(source, kernel, executor)``."""
        return (self.source.name, self.kernel.name, self.executor.name)

    def describe(self) -> str:
        return "+".join(self.cell)

    def run(self, sink: TriangleSink | None = None, *,
            report=None, attribution=None) -> TriangulationResult:
        """Execute the composition; list to *sink* when given.

        With a :class:`~repro.obs.RunReport`, per-axis labelled counters
        (``exec.triangles`` / ``exec.ops`` / ``exec.chunks``) land in its
        registry so cross-cell comparisons can slice by any axis.  With
        an :class:`~repro.obs.attribution.Attribution`, every pair's op
        charge lands in its ``(exec, kernel, source, degree-bucket)``
        cell and the engine's wall time is attributed to the same
        coordinate — per-bucket ops sum exactly to ``exec.ops``.
        """
        collect = sink is not None
        started = time.perf_counter()
        outcome = self.executor.execute(self.source, self.kernel,
                                        collect=collect,
                                        attribution=attribution)
        elapsed = time.perf_counter() - started
        if attribution is not None:
            attribution.scope(phase="exec", kernel=self.kernel.name,
                              source=self.source.name).charge_time(elapsed)
        if sink is not None:
            for u, v, ws in outcome.groups:
                sink.emit(u, v, list(ws))
        source_name, kernel_name, executor_name = self.cell
        extra = {
            "cell": self.describe(),
            "source": source_name,
            "kernel": kernel_name,
            "executor": executor_name,
            "chunks": outcome.chunks,
        }
        if outcome.branches:
            extra["branches"] = {branch: list(cell) for branch, cell
                                 in outcome.branches.items()}
        if report is not None:
            labels = dict(source=source_name, kernel=kernel_name,
                          executor=executor_name)
            # Namespaced meta keys: the CLI already uses "source" for
            # the input path.
            report.meta.update({"engine": "exec.compose",
                                "exec.cell": self.describe()})
            report.counter("exec.triangles", **labels).inc(outcome.triangles)
            report.counter("exec.ops", **labels).inc(outcome.cpu_ops)
            report.counter("exec.chunks", **labels).inc(outcome.chunks)
            # Adaptive-selector decisions, sliceable like any other axis
            # label; per-branch ops sum exactly to the cell's exec.ops.
            for branch, (pairs, branch_ops) in sorted(outcome.branches.items()):
                report.counter("exec.branch.pairs", branch=branch,
                               **labels).inc(pairs)
                report.counter("exec.branch.ops", branch=branch,
                               **labels).inc(branch_ops)
            report.gauge("run.elapsed_wall").set(elapsed)
            extra["report"] = report
        return TriangulationResult(
            triangles=outcome.triangles,
            cpu_ops=outcome.cpu_ops,
            pages_read=outcome.io.get("pages_read", 0),
            pages_buffered=outcome.io.get("pages_buffered", 0),
            elapsed=elapsed,
            extra=extra,
        )


def compose(
    source,
    kernel,
    executor,
    *,
    graph=None,
    workers: int = 2,
    page_size: int | None = None,
    buffer_pages: int = 8,
) -> Engine:
    """Assemble an :class:`Engine` from axis instances or registry names.

    String axes resolve through :mod:`repro.exec.registry` (``graph`` is
    required to instantiate a named source).  Invalid cells raise
    :class:`~repro.errors.ConfigurationError` carrying the same reason
    string the scenario matrix records for the skipped cell.
    """
    from repro.exec import registry

    if isinstance(source, str):
        source = registry.make_source(source, graph, page_size=page_size,
                                      buffer_pages=buffer_pages)
    if isinstance(kernel, str):
        kernel = registry.make_kernel(kernel)
    if isinstance(executor, str):
        executor = registry.make_executor(executor, workers=workers)
    reason = registry.composition_conflict(source, executor)
    if reason is not None:
        raise ConfigurationError(
            f"invalid composition {source.name}+{kernel.name}+{executor.name}: "
            f"{reason}"
        )
    return Engine(source=source, kernel=kernel, executor=executor)
