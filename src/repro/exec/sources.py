"""Data sources: the Source axis of the composition layer.

Three residencies for the same logical graph:

* :class:`MemorySource` — the plain heap CSR (:class:`repro.graph.graph.Graph`).
  Fastest reads, but a forked worker would have to pickle the whole
  graph, so it is **not shareable** — the registry marks process-pool
  cells over it invalid rather than silently paying the copy.
* :class:`SharedMemorySource` — the CSR published into POSIX shared
  memory (:class:`repro.parallel.shm.SharedCSR`).  Reads are the same
  zero-copy numpy views, and the handle pickles into a tiny
  :class:`~repro.parallel.shm.CSRHandle` any forked worker can attach.
* :class:`DiskSource` — the slotted-page store
  (:class:`repro.storage.layout.GraphStore`) read through an LRU
  :class:`~repro.storage.buffer.BufferManager`.  Successor lists come
  from the candidate-page suffix of each record chain, exactly the read
  pattern OPT's external area performs; page hits/misses surface in the
  engine result's I/O fields.  The page cache is per-process and the
  buffer is not thread-safe, so ``fork_local()`` hands each worker
  thread its own buffer over the same immutable page images, and the
  source is not shareable across processes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.graph.graph import Graph
from repro.storage.buffer import BufferManager
from repro.storage.layout import GraphStore
from repro.storage.page import DEFAULT_PAGE_SIZE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.shm import CSRHandle

__all__ = ["DiskSource", "MemorySource", "SharedMemorySource"]

_EMPTY = np.empty(0, dtype=np.int64)


class _GraphHandle:
    """Successor reads straight off an in-memory CSR."""

    def __init__(self, graph: Graph):
        self._graph = graph

    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    def succ(self, u: int) -> np.ndarray:
        return self._graph.n_succ(u)

    def fork_local(self) -> "_GraphHandle":
        return self  # immutable numpy views: thread-safe as-is

    def csr_handle(self) -> "CSRHandle | None":
        return None

    def io_stats(self) -> dict[str, int]:
        return {}


class MemorySource:
    """The heap CSR as a source."""

    name = "memory"
    shareable = False

    def __init__(self, graph: Graph):
        self._graph = graph

    @contextmanager
    def open(self) -> Iterator[_GraphHandle]:
        yield _GraphHandle(self._graph)


class _SharedHandle(_GraphHandle):
    """Reads off the parent-side attachment of a published CSR."""

    def __init__(self, graph: Graph, handle: "CSRHandle"):
        super().__init__(graph)
        self._handle = handle

    def csr_handle(self) -> "CSRHandle":
        return self._handle


class SharedMemorySource:
    """The CSR published into POSIX shared memory for the run's duration.

    ``open()`` owns the segment lifecycle: publish on enter, close +
    unlink on exit, however the run ends.
    """

    name = "shm"
    shareable = True

    def __init__(self, graph: Graph):
        self._graph = graph

    @contextmanager
    def open(self) -> Iterator[_SharedHandle]:
        from repro.parallel.shm import SharedCSR

        shared = SharedCSR.publish(self._graph)
        handle = _SharedHandle(shared.graph(), shared.handle)
        try:
            yield handle
        finally:
            # The handle's Graph wraps the shared buffers; its views must
            # die before close() or the mmap refuses to unmap.
            handle._graph = None  # type: ignore[assignment]
            shared.close()
            shared.unlink()


class _DiskHandle:
    """Successor reads through a private LRU page buffer."""

    def __init__(self, store: GraphStore, buffer_pages: int):
        self._store = store
        self._buffer_pages = buffer_pages
        self._buffer = BufferManager(buffer_pages, store.decode_page)

    @property
    def num_vertices(self) -> int:
        return self._store.num_vertices

    def succ(self, u: int) -> np.ndarray:
        store = self._store
        parts: list[np.ndarray] = []
        for pid in store.pages_of_candidate(u):
            for record in self._buffer.get(pid).records:
                if record.vertex == u and len(record.neighbors):
                    parts.append(record.neighbors)
        if not parts:
            return _EMPTY
        row = parts[0] if len(parts) == 1 else np.concatenate(parts)
        # Successors are the suffix strictly above u in the sorted list.
        return row[np.searchsorted(row, u, side="right"):]

    def fork_local(self) -> "_DiskHandle":
        # The page images are immutable bytes; only the buffer is
        # stateful, so each worker thread gets its own.
        return _DiskHandle(self._store, self._buffer_pages)

    def csr_handle(self) -> None:
        return None

    def io_stats(self) -> dict[str, int]:
        return {
            "pages_read": self._buffer.misses,
            "pages_buffered": self._buffer.hits,
        }


class DiskSource:
    """The paged store as a source; packs the graph on first open."""

    name = "disk"
    shareable = False

    def __init__(self, graph: Graph | None = None, *,
                 store: GraphStore | None = None,
                 page_size: int = DEFAULT_PAGE_SIZE,
                 buffer_pages: int = 8):
        if store is None:
            if graph is None:
                raise ValueError("DiskSource needs a graph or a prepared store")
            store = GraphStore.from_graph(graph, page_size)
        self._store = store
        self._buffer_pages = buffer_pages

    @contextmanager
    def open(self) -> Iterator[_DiskHandle]:
        yield _DiskHandle(self._store, self._buffer_pages)
