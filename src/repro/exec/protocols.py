"""The three protocols composed by :func:`repro.exec.compose`.

Each protocol is deliberately tiny — the composition layer only needs
the operations the edge-iterator loop actually performs — so existing
subsystems (:class:`repro.graph.graph.Graph`,
:class:`repro.parallel.shm.SharedCSR`,
:class:`repro.storage.layout.GraphStore`) adapt to them with a few
lines rather than a rewrite.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Protocol, Sequence, runtime_checkable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.shm import CSRHandle

__all__ = ["Executor", "IntersectFn", "Kernel", "Source", "SourceHandle"]


#: A bound intersection function: ``(prepped_a, b) -> (common, ops)``.
#: ``common`` is a sequence of vertex ids in ascending order; ``ops`` is
#: the operation count the kernel charges for this pair (Eq. 3 for the
#: analytic kernels, measured comparisons for the reference kernels).
IntersectFn = Callable[[object, np.ndarray], tuple[Sequence[int], int]]


@runtime_checkable
class SourceHandle(Protocol):
    """An open source: successor-list reads plus worker/process hooks."""

    @property
    def num_vertices(self) -> int: ...

    def succ(self, u: int) -> np.ndarray:
        """Sorted successor ids of *u* (``id(w) > id(u)``)."""
        ...

    def fork_local(self) -> "SourceHandle":
        """A handle safe for an additional worker thread.

        Sources whose read path is thread-safe (immutable numpy views)
        return ``self``; the paged-disk source returns a fresh reader
        with its own buffer over the same immutable page sequence.
        """
        ...

    def csr_handle(self) -> "CSRHandle | None":
        """Picklable cross-process descriptor, or ``None``.

        Only shareable sources (the shared-memory CSR) return one; the
        process executor refuses sources that return ``None``.
        """
        ...

    def io_stats(self) -> dict[str, int]:
        """Page-level I/O counters accumulated by this handle."""
        ...


@runtime_checkable
class Source(Protocol):
    """A graph residence: opens into a :class:`SourceHandle`."""

    name: str
    #: Whether a forked worker process can attach the data zero-copy.
    shareable: bool

    def open(self) -> "SourceContext": ...


class SourceContext(Protocol):
    """Context manager yielded by :meth:`Source.open`."""

    def __enter__(self) -> SourceHandle: ...

    def __exit__(self, *exc_info: object) -> object: ...


@runtime_checkable
class Kernel(Protocol):
    """A per-pair intersection strategy with op accounting."""

    name: str

    def bind(self, num_vertices: int) -> "KernelBinding":
        """Scratch state (e.g. a bitmap) sized for one graph."""
        ...


class KernelBinding(Protocol):
    """Kernel state bound to one graph; drives the inner loop."""

    name: str

    def prep(self, row: np.ndarray) -> object:
        """Per-``u`` preparation of the outer successor list."""
        ...

    def intersect(self, prepped: object, row: np.ndarray) -> tuple[Sequence[int], int]:
        """``(common, ops)`` for one ``n_succ(u) ∩ n_succ(v)`` pair."""
        ...

    def stats(self) -> dict[str, list[int]]:
        """Per-branch ``{branch: [pairs, ops]}`` tally (``{}`` for
        fixed-path kernels; the adaptive kernel reports its selector)."""
        ...


@runtime_checkable
class Executor(Protocol):
    """An execution strategy over vertex ranges of a source."""

    name: str
    #: ``True`` when the executor forks and therefore needs a source
    #: whose handle exposes a picklable :meth:`SourceHandle.csr_handle`.
    requires_shareable: bool

    def execute(self, source: Source, kernel: Kernel, *, collect: bool,
                attribution: object | None = None) -> "EngineOutcome":  # noqa: F821
        ...
