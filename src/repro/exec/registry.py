"""The single registry of engine axes, valid cells, and entry points.

Everything that enumerates engines reads this module:

* ``tests/test_scenario_matrix.py`` generates its differential grid
  from :func:`iter_cells` — every ``(source, kernel, executor)``
  combination appears exactly once, valid cells as executable tests and
  invalid cells as explicit skips carrying :func:`cell_validity`'s
  reason;
* :func:`repro.verify.verify_methods` runs :func:`verification_methods`
  — the thirteen historical engines plus composed exec cells — instead
  of a hand-maintained list;
* the ``engine-composition`` lint rule checks every
  ``TriangulationResult``-returning entry point in the engine packages
  against :data:`REGISTERED_ENTRY_POINTS`, so a new engine cannot land
  without either composing through :func:`repro.exec.compose` or
  registering here (and thereby joining the verification sweep);
* the CLI's ``triangulate --source/--kernel/--executor`` flags take
  their choices from the three axis tables.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.errors import ConfigurationError
from repro.exec.executors import ProcessExecutor, SerialExecutor, ThreadedExecutor
from repro.exec.kernels import (
    AdaptiveKernel,
    BitmapKernel,
    GallopKernel,
    HashKernel,
    MergeKernel,
)
from repro.exec.sources import DiskSource, MemorySource, SharedMemorySource

__all__ = [
    "EXECUTORS",
    "KERNELS",
    "REGISTERED_ENTRY_POINTS",
    "SOURCES",
    "CellSpec",
    "VerifyEnv",
    "cell_validity",
    "composition_conflict",
    "iter_cells",
    "make_executor",
    "make_kernel",
    "make_source",
    "valid_cells",
    "verification_methods",
]

# ---------------------------------------------------------------------------
# The three axes
# ---------------------------------------------------------------------------

#: Source name -> class.  Instantiation goes through :func:`make_source`.
SOURCES = {
    "memory": MemorySource,
    "shm": SharedMemorySource,
    "disk": DiskSource,
}

#: Kernel name -> class (stateless; instantiated per call).
KERNELS = {
    "hash": HashKernel,
    "merge": MergeKernel,
    "gallop": GallopKernel,
    "bitmap": BitmapKernel,
    "adaptive": AdaptiveKernel,
}

#: Executor name -> class.  Instantiation goes through :func:`make_executor`.
EXECUTORS = {
    "serial": SerialExecutor,
    "threaded": ThreadedExecutor,
    "process": ProcessExecutor,
}


def make_source(name: str, graph, *, page_size: int | None = None,
                buffer_pages: int = 8):
    """Instantiate the named source over *graph*."""
    try:
        cls = SOURCES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown source {name!r}; available: {', '.join(SOURCES)}"
        ) from None
    if graph is None:
        raise ConfigurationError(f"source {name!r} needs a graph")
    if cls is DiskSource:
        kwargs = {"buffer_pages": buffer_pages}
        if page_size is not None:
            kwargs["page_size"] = page_size
        return DiskSource(graph, **kwargs)
    return cls(graph)


def make_kernel(name: str):
    """Instantiate the named kernel."""
    try:
        return KERNELS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {name!r}; available: {', '.join(KERNELS)}"
        ) from None


def make_executor(name: str, *, workers: int = 2):
    """Instantiate the named executor."""
    try:
        cls = EXECUTORS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown executor {name!r}; available: {', '.join(EXECUTORS)}"
        ) from None
    if cls is SerialExecutor:
        return cls()
    return cls(workers=workers)


# ---------------------------------------------------------------------------
# Cell validity
# ---------------------------------------------------------------------------


def composition_conflict(source, executor) -> str | None:
    """Why *source* cannot run under *executor*, or ``None`` if it can.

    The one structural constraint of the cube: a forking executor needs
    a source whose data a worker process can attach zero-copy.
    """
    if getattr(executor, "requires_shareable", False) \
            and not getattr(source, "shareable", False):
        return (f"executor {executor.name!r} forks worker processes, but "
                f"source {source.name!r} is not attachable across process "
                "boundaries (publish to 'shm' instead)")
    return None


def cell_validity(source: str, kernel: str, executor: str) -> tuple[bool, str | None]:
    """``(valid, reason)`` for one named cell of the cube."""
    for name, table, axis in ((source, SOURCES, "source"),
                              (kernel, KERNELS, "kernel"),
                              (executor, EXECUTORS, "executor")):
        if name not in table:
            return False, f"unknown {axis} {name!r}"
    reason = composition_conflict(SOURCES[source], EXECUTORS[executor])
    return (reason is None), reason


@dataclass(frozen=True)
class CellSpec:
    """One cell of the cube with its validity verdict."""

    source: str
    kernel: str
    executor: str
    valid: bool
    reason: str | None = None

    @property
    def id(self) -> str:
        return f"{self.source}+{self.kernel}+{self.executor}"


def iter_cells() -> Iterator[CellSpec]:
    """Every cell of the cube, valid or not, in deterministic order."""
    for source in SOURCES:
        for kernel in KERNELS:
            for executor in EXECUTORS:
                valid, reason = cell_validity(source, kernel, executor)
                yield CellSpec(source, kernel, executor, valid, reason)


def valid_cells() -> list[CellSpec]:
    """The runnable cells only."""
    return [cell for cell in iter_cells() if cell.valid]


# ---------------------------------------------------------------------------
# Entry-point registration (read by the engine-composition lint rule)
# ---------------------------------------------------------------------------

#: Every sanctioned triangulation entry point outside :mod:`repro.exec`,
#: keyed ``<package path>::<function>``.  The ``engine-composition``
#: lint rule flags any public ``TriangulationResult``-returning function
#: in the engine packages that is missing from this set; each entry here
#: is expected to appear in :func:`verification_methods` (directly or
#: through a composed equivalent) so it stays differentially tested.
REGISTERED_ENTRY_POINTS = frozenset({
    "memory/edge_iterator.py::edge_iterator",
    "memory/vertex_iterator.py::vertex_iterator",
    "memory/forward.py::forward",
    "memory/compact_forward.py::compact_forward",
    "memory/matrix.py::matrix_count",
    "memory/cliques.py::count_cliques",
    "memory/parallel.py::parallel_edge_iterator",
    "core/engine.py::triangulate_disk",
    "core/engine.py::replay",
    "core/threaded.py::triangulate_threaded",
    "parallel/engine.py::triangulate_parallel",
    "baselines/chu_cheng.py::cc_seq",
    "baselines/chu_cheng.py::cc_ds",
    "baselines/graphchi.py::graphchi_tri",
    "baselines/mgt.py::mgt",
    "distributed/methods.py::sv_mapreduce",
    "distributed/methods.py::akm",
    "distributed/methods.py::powergraph",
})


# ---------------------------------------------------------------------------
# The verification sweep (consumed by repro.verify.verify_methods)
# ---------------------------------------------------------------------------


@dataclass
class VerifyEnv:
    """Shared run parameters + memoized store for one verification sweep."""

    page_size: int
    buffer_pages: int
    cost: object
    _store: object = field(default=None, repr=False)

    def store(self, graph):
        if self._store is None:
            from repro.core import make_store

            self._store = make_store(graph, self.page_size)
        return self._store


def _memory_methods() -> list[tuple[str, Callable]]:
    def run(fn):
        return lambda graph, env: fn(graph).triangles

    from repro.memory import (
        compact_forward,
        edge_iterator,
        forward,
        matrix_count,
        vertex_iterator,
    )

    return [
        ("edge-iterator", run(edge_iterator)),
        ("vertex-iterator", run(vertex_iterator)),
        ("forward", run(forward)),
        ("compact-forward", run(compact_forward)),
        ("matrix", run(matrix_count)),
    ]


def _parallel_methods() -> list[tuple[str, Callable]]:
    from repro.parallel import triangulate_parallel

    return [
        ("opt-parallel:w2",
         lambda graph, env: triangulate_parallel(graph, workers=2).triangles),
    ]


def _disk_methods() -> list[tuple[str, Callable]]:
    from repro.core import triangulate_disk

    def run(plugin):
        return lambda graph, env: triangulate_disk(
            env.store(graph), plugin=plugin, buffer_pages=env.buffer_pages,
            cost=env.cost,
        ).triangles

    return [(f"opt:{plugin}", run(plugin))
            for plugin in ("edge-iterator", "vertex-iterator", "mgt")]


def _baseline_methods() -> list[tuple[str, Callable]]:
    from repro.baselines import cc_ds, cc_seq, graphchi_tri

    def run(fn):
        return lambda graph, env: fn(
            graph, buffer_pages=env.buffer_pages, page_size=env.page_size,
            cost=env.cost,
        ).triangles

    return [
        ("cc-seq", run(cc_seq)),
        ("cc-ds", run(cc_ds)),
        ("graphchi", run(graphchi_tri)),
    ]


def _threaded_methods() -> list[tuple[str, Callable]]:
    from repro.core import triangulate_threaded

    def run(graph, env):
        with tempfile.TemporaryDirectory() as directory:
            return triangulate_threaded(
                env.store(graph), directory, buffer_pages=env.buffer_pages,
            ).triangles

    return [("opt:threaded", run)]


def _composed_methods() -> list[tuple[str, Callable]]:
    """A slice of composed exec cells, one per axis member.

    The full cube runs in the scenario matrix; the verification sweep
    carries one witness per source, kernel, and executor so ``repro
    verify`` exercises the composition layer end to end without
    re-running all of it.
    """
    from repro.exec.engine import compose

    witnesses = [
        ("memory", "merge", "serial"),
        ("memory", "gallop", "threaded"),
        ("memory", "adaptive", "serial"),
        ("disk", "bitmap", "serial"),
        ("shm", "hash", "process"),
    ]

    def run(cell):
        source, kernel, executor = cell
        return lambda graph, env: compose(
            source, kernel, executor, graph=graph, workers=2,
            page_size=env.page_size, buffer_pages=env.buffer_pages,
        ).run().triangles

    return [(f"exec:{'+'.join(cell)}", run(cell)) for cell in witnesses]


def verification_methods(
    *, include_threaded: bool = True,
) -> list[tuple[str, Callable]]:
    """``(name, runner)`` for every method the verifier cross-checks.

    Each runner has signature ``runner(graph, env) -> int`` (triangle
    count) with *env* a :class:`VerifyEnv`.  Order is stable; names are
    the historical ``verify_methods`` keys, extended with the composed
    ``exec:*`` witnesses.
    """
    methods: list[tuple[str, Callable]] = []
    methods.extend(_memory_methods())
    methods.extend(_parallel_methods())
    methods.extend(_disk_methods())
    methods.extend(_baseline_methods())
    if include_threaded:
        methods.extend(_threaded_methods())
    methods.extend(_composed_methods())
    return methods
