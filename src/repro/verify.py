"""Cross-method verification: every engine must list the same triangles.

The strongest correctness statement this library makes is that all of its
triangulation paths — four in-memory methods, three OPT plugins across
buffer configurations, the real-thread engine, and the three disk
baselines — agree exactly.  :func:`verify_methods` runs them all on one
graph and reports the counts; the CLI exposes it as ``opt-repro verify``.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field

from repro.baselines import cc_ds, cc_seq, graphchi_tri, mgt
from repro.core import make_store, triangulate_disk, triangulate_threaded
from repro.graph.graph import Graph
from repro.memory import (
    compact_forward,
    edge_iterator,
    forward,
    matrix_count,
    vertex_iterator,
)
from repro.parallel import triangulate_parallel
from repro.sim import DEFAULT_COST_MODEL, CostModel
from repro.storage.page import DEFAULT_PAGE_SIZE

__all__ = ["VerificationReport", "verify_methods"]


@dataclass
class VerificationReport:
    """Triangle counts per method plus the agreement verdict."""

    counts: dict[str, int] = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return len(set(self.counts.values())) <= 1

    @property
    def expected(self) -> int:
        return next(iter(self.counts.values()), 0)

    def disagreements(self) -> dict[str, int]:
        """Methods whose count differs from the majority."""
        if self.consistent or not self.counts:
            return {}
        values = list(self.counts.values())
        majority = max(set(values), key=values.count)
        return {name: count for name, count in self.counts.items()
                if count != majority}


def verify_methods(
    graph: Graph,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
    buffer_pages: int = 8,
    cost: CostModel = DEFAULT_COST_MODEL,
    include_threaded: bool = True,
) -> VerificationReport:
    """Run every triangulation path on *graph* and compare counts."""
    report = VerificationReport()
    report.counts["edge-iterator"] = edge_iterator(graph).triangles
    report.counts["vertex-iterator"] = vertex_iterator(graph).triangles
    report.counts["forward"] = forward(graph).triangles
    report.counts["compact-forward"] = compact_forward(graph).triangles
    report.counts["matrix"] = matrix_count(graph).triangles
    report.counts["opt-parallel:w2"] = triangulate_parallel(
        graph, workers=2
    ).triangles

    store = make_store(graph, page_size)
    for plugin in ("edge-iterator", "vertex-iterator", "mgt"):
        result = triangulate_disk(store, plugin=plugin,
                                  buffer_pages=buffer_pages, cost=cost)
        report.counts[f"opt:{plugin}"] = result.triangles

    report.counts["cc-seq"] = cc_seq(
        graph, buffer_pages=buffer_pages, page_size=page_size, cost=cost
    ).triangles
    report.counts["cc-ds"] = cc_ds(
        graph, buffer_pages=buffer_pages, page_size=page_size, cost=cost
    ).triangles
    report.counts["graphchi"] = graphchi_tri(
        graph, buffer_pages=buffer_pages, page_size=page_size, cost=cost
    ).triangles

    if include_threaded:
        with tempfile.TemporaryDirectory() as directory:
            result = triangulate_threaded(store, directory,
                                          buffer_pages=buffer_pages)
        report.counts["opt:threaded"] = result.triangles
    return report
