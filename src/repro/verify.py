"""Cross-method verification: every engine must list the same triangles.

The strongest correctness statement this library makes is that all of
its triangulation paths agree exactly.  The method list is no longer
hand-maintained here: :func:`verify_methods` iterates
:func:`repro.exec.registry.verification_methods` — the in-memory
methods, the OPT plugins, the disk baselines, the threaded and
process-parallel engines, and one composed ``exec:*`` witness per
registry axis — so any engine registered with the composition layer is
cross-checked automatically.  An independent pure-python brute-force
oracle anchors the comparison and breaks majority ties
deterministically.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.graph.graph import Graph
from repro.sim import DEFAULT_COST_MODEL, CostModel
from repro.storage.page import DEFAULT_PAGE_SIZE

__all__ = ["VerificationReport", "oracle_count", "oracle_triangles",
           "verify_methods"]

#: The counts key under which the brute-force oracle is recorded.
ORACLE = "oracle"


def oracle_triangles(graph: Graph) -> list[tuple[int, int, int]]:
    """Brute-force triangle listing via python sets — the test oracle.

    Deliberately shares nothing with the engines (no numpy, no CSR
    successor logic): adjacency sets and three nested comparisons.  The
    scenario matrix compares every cell's listing against this.
    """
    adjacency = [set(map(int, graph.neighbors(u)))
                 for u in range(graph.num_vertices)]
    triangles = []
    for u in range(graph.num_vertices):
        for v in adjacency[u]:
            if v <= u:
                continue
            for w in adjacency[u] & adjacency[v]:
                if w > v:
                    triangles.append((u, v, w))
    triangles.sort()
    return triangles


def oracle_count(graph: Graph) -> int:
    """Triangle count by the brute-force oracle."""
    return len(oracle_triangles(graph))


@dataclass
class VerificationReport:
    """Triangle counts per method plus the agreement verdict."""

    counts: dict[str, int] = field(default_factory=dict)
    #: Method whose count wins majority ties in :meth:`disagreements`
    #: (the brute-force oracle when the report came from
    #: :func:`verify_methods`).
    oracle: str | None = None

    @property
    def consistent(self) -> bool:
        return len(set(self.counts.values())) <= 1

    @property
    def expected(self) -> int:
        return next(iter(self.counts.values()), 0)

    def disagreements(self) -> dict[str, int]:
        """Methods whose count differs from the majority.

        The majority is deterministic: the most common count wins; when
        several counts tie, the oracle's count wins if it is among the
        tied values, else the smallest tied value.  (The historical
        ``max(set(values), key=values.count)`` broke ties by hash order,
        so an even split could blame either side from run to run.)
        """
        if self.consistent or not self.counts:
            return {}
        tally = Counter(self.counts.values())
        best = max(tally.values())
        tied = sorted(value for value, times in tally.items() if times == best)
        majority = tied[0]
        if len(tied) > 1 and self.oracle is not None \
                and self.oracle in self.counts \
                and self.counts[self.oracle] in tied:
            majority = self.counts[self.oracle]
        return {name: count for name, count in self.counts.items()
                if count != majority}


def verify_methods(
    graph: Graph,
    *,
    page_size: int = DEFAULT_PAGE_SIZE,
    buffer_pages: int = 8,
    cost: CostModel = DEFAULT_COST_MODEL,
    include_threaded: bool = True,
) -> VerificationReport:
    """Run every registered triangulation path on *graph*; compare counts."""
    from repro.exec.registry import VerifyEnv, verification_methods

    env = VerifyEnv(page_size=page_size, buffer_pages=buffer_pages, cost=cost)
    report = VerificationReport(oracle=ORACLE)
    report.counts[ORACLE] = oracle_count(graph)
    for name, runner in verification_methods(include_threaded=include_threaded):
        report.counts[name] = runner(graph, env)
    return report
